"""Adaptive multilevel Monte-Carlo estimator for circuit delay statistics.

The estimator telescopes the quantity of interest (worst path delay)
across a :class:`~repro.mlmc.hierarchy.LevelHierarchy`,

    E[Q_L] = E[Q_0] + Σ_{l=1..L} E[Q_l − Q_{l−1}],

sampling each correction with prefix-coupled draws
(:class:`~repro.mlmc.sampler.CoupledLevelSampler`).  Per-level cost
``C_l`` and variance ``V_l`` are measured *online*; the classic Giles
allocation ``N_l ∝ sqrt(V_l / C_l)`` is re-solved after every round until
the estimator variance ``Σ V_l / N_l`` drops below the target ``ε²``.

Second moments telescope the same way (``Y2_l = Q_l² − Q_{l−1}²``), which
recovers ``Var(Q_L)`` and hence σ without ever holding the sample
population; smoothed quantiles come from per-level P² estimators combined
through the same telescoping heuristic.

A degenerate single-level hierarchy reproduces plain
:meth:`repro.timing.ssta.MonteCarloSSTA.run_kle` sampling bit for bit
under the same integer seed — the regression anchor for the coupling.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.mlmc.diagnostics import (
    ConvergenceRates,
    MLMCLevelStats,
    TelescopingCheck,
    fit_convergence_rates,
    format_mlmc_report,
    telescoping_check,
)
from repro.mlmc.hierarchy import LevelHierarchy, LevelModel
from repro.mlmc.sampler import CoupledDraw, CoupledLevelSampler
from repro.circuit.netlist import Netlist
from repro.mlmc.surrogate import LinearDelaySurrogate
from repro.place.placer import Placement
from repro.timing.library import CellLibrary
from repro.timing.sta import STAEngine
from repro.utils.rng import SeedLike, spawn_seed_sequences
from repro.utils.streaming import P2Quantile, RunningMoments

#: Additive per-level seed shift, mirroring ``_shift_seed`` in repro.timing.
_LEVEL_SEED_SHIFT = 0x9E3779B9

#: Floor on measured per-sample cost (seconds) to keep allocations finite.
_MIN_COST_SECONDS = 1e-9


def optimal_allocation(
    eps: float,
    variances: Sequence[float],
    costs: Sequence[float],
) -> np.ndarray:
    """Giles' optimal per-level sample counts for tolerance ``eps``.

    Minimizes total cost ``Σ N_l C_l`` subject to ``Σ V_l / N_l ≤ eps²``:
    ``N_l = ceil(eps⁻² · sqrt(V_l / C_l) · Σ_k sqrt(V_k C_k))``, clamped
    to at least 2 samples per level so variances stay estimable.
    """
    if eps <= 0.0:
        raise ValueError(f"eps must be positive, got {eps}")
    v = np.maximum(np.asarray(variances, dtype=float), 0.0)
    c = np.maximum(np.asarray(costs, dtype=float), _MIN_COST_SECONDS)
    if v.shape != c.shape or v.ndim != 1:
        raise ValueError("variances and costs must be equal-length 1-D")
    weight = float(np.sum(np.sqrt(v * c)))
    counts = np.ceil(eps ** -2 * np.sqrt(v / c) * weight)
    return np.maximum(counts, 2.0).astype(int)


class _LevelState:
    """Mutable accumulators for one level during a run."""

    def __init__(
        self,
        stream: SeedLike,
        has_coarse: bool,
        quantiles: Sequence[float],
        keep_samples: bool,
    ):
        self.stream = stream
        self.num_samples = 0
        self.generate_seconds = 0.0
        self.evaluate_seconds = 0.0
        self.y = RunningMoments()
        self.y2 = RunningMoments()
        self.fine = RunningMoments()
        self.coarse = RunningMoments() if has_coarse else None
        self.fine_q: Dict[float, P2Quantile] = {
            float(q): P2Quantile(float(q)) for q in quantiles
        }
        self.coarse_q: Dict[float, P2Quantile] = (
            {float(q): P2Quantile(float(q)) for q in quantiles}
            if has_coarse
            else {}
        )
        self.kept: Optional[List[np.ndarray]] = [] if keep_samples else None

    @property
    def cost_per_sample(self) -> float:
        """Measured wall-clock seconds per coupled sample."""
        if self.num_samples == 0:
            return _MIN_COST_SECONDS
        total = self.generate_seconds + self.evaluate_seconds
        return max(total / self.num_samples, _MIN_COST_SECONDS)


@dataclass(frozen=True)
class MLMCResult:
    """Outcome of one multilevel run.

    ``mean``/``std`` are the telescoped estimates of the finest level's
    delay statistics; ``estimator_sem`` is the standard error of ``mean``
    (``sqrt(Σ V_l / N_l)``) and ``sigma_sem`` a delta-method standard
    error for ``std``.  ``quantiles`` maps probability → telescoped P²
    estimate (empty unless requested).  ``level_worst_delays`` retains
    the raw fine-stream samples per level when ``keep_samples`` was set.
    """

    levels: Tuple[MLMCLevelStats, ...]
    mean: float
    std: float
    estimator_sem: float
    sigma_sem: float
    quantiles: Dict[float, float]
    consistency: TelescopingCheck
    rates: ConvergenceRates
    total_samples: int
    total_seconds: float
    setup_seconds: float
    hierarchy: str
    eps: Optional[float] = None
    level_worst_delays: Optional[Tuple[np.ndarray, ...]] = field(
        default=None, repr=False
    )

    @property
    def achieved_variance(self) -> float:
        """Realized estimator variance ``Σ V_l / N_l``."""
        return sum(
            s.variance / s.num_samples
            for s in self.levels
            if s.num_samples > 0
        )

    @property
    def target_met(self) -> bool:
        """Whether the adaptive run reached ``Σ V_l/N_l ≤ eps²``
        (vacuously true for fixed-allocation runs)."""
        if self.eps is None:
            return True
        return self.achieved_variance <= self.eps ** 2

    def format_report(self) -> str:
        """Human-readable multi-line diagnostics report."""
        return format_mlmc_report(self)

    def to_dict(self) -> dict:
        """Machine-readable (JSON-serializable) report."""
        return {
            "hierarchy": self.hierarchy,
            "mean_ps": self.mean,
            "std_ps": self.std,
            "estimator_sem_ps": self.estimator_sem,
            "sigma_sem_ps": self.sigma_sem,
            "quantiles_ps": {str(q): v for q, v in self.quantiles.items()},
            "eps": self.eps,
            "target_met": self.target_met,
            "achieved_variance": self.achieved_variance,
            "total_samples": self.total_samples,
            "total_seconds": round(self.total_seconds, 6),
            "setup_seconds": round(self.setup_seconds, 6),
            "consistency": self.consistency.to_dict(),
            "rates": self.rates.to_dict(),
            "levels": [s.to_dict() for s in self.levels],
        }


class MLMCEstimator:
    """Multilevel Monte-Carlo SSTA driver over a level hierarchy.

    Owns one shared :class:`STAEngine` (all "sta"-timed levels reuse its
    compiled program) plus one :class:`CoupledLevelSampler` per level;
    "linear"-timed levels are evaluated through lazily built
    :class:`LinearDelaySurrogate` response surfaces.

    Parameters
    ----------
    netlist, placement:
        The placed circuit, as for :class:`~repro.timing.ssta.MonteCarloSSTA`.
    hierarchy:
        The level ladder (:class:`~repro.mlmc.hierarchy.LevelHierarchy`).
    library:
        Optional cell library override.
    engine:
        STA engine flavour (``"compiled"`` by default).
    surrogate_step:
        Finite-difference step for linearized levels.
    """

    def __init__(
        self,
        netlist: Netlist,
        placement: Placement,
        hierarchy: LevelHierarchy,
        *,
        library: Optional[CellLibrary] = None,
        engine: str = "compiled",
        surrogate_step: float = 1.0,
    ):
        self.hierarchy = hierarchy
        self._models: List[LevelModel] = hierarchy.models()
        self.engine = STAEngine(netlist, placement, library, engine=engine)
        self.gate_locations = np.asarray(
            placement.gate_locations(), dtype=float
        )
        self._samplers: List[CoupledLevelSampler] = [
            CoupledLevelSampler(
                self._models[level],
                self._models[level - 1] if level > 0 else None,
                self.gate_locations,
            )
            for level in range(len(self._models))
        ]
        self.surrogate_step = float(surrogate_step)
        self._surrogates: List[LinearDelaySurrogate] = []
        self.setup_seconds = 0.0

    @property
    def num_levels(self) -> int:
        """Number of rungs in the hierarchy."""
        return len(self._models)

    def _surrogate_for(self, model: LevelModel) -> LinearDelaySurrogate:
        """Return (building on first use) the surrogate for ``model``."""
        for surrogate in self._surrogates:
            if surrogate.matches(model):
                return surrogate
        surrogate = LinearDelaySurrogate(
            self.engine,
            model,
            self.gate_locations,
            step=self.surrogate_step,
        )
        self._surrogates.append(surrogate)
        self.setup_seconds += surrogate.build_seconds
        return surrogate

    def _ensure_surrogates(self) -> None:
        """Pre-build all linearized timers so builds don't pollute C_l."""
        for model in self._models:
            if model.timer == "linear":
                self._surrogate_for(model)

    def _level_streams(self, seed: SeedLike) -> List[SeedLike]:
        """Persistent per-level seed streams for one run.

        Level 0 of an integer seed is ``SeedSequence(seed)`` so its first
        batch spawns the same child generators plain
        ``MonteCarloSSTA.run_kle(..., seed=seed)`` uses — the bitwise
        single-level equivalence.  Higher levels get golden-ratio-shifted
        sequences (independent streams, same idiom as the chunked SSTA
        path).
        """
        count = self.num_levels
        if isinstance(seed, np.random.Generator):
            return [seed] * count
        if isinstance(seed, np.random.SeedSequence):
            if count == 1:
                return [seed]
            return [seed, *seed.spawn(count - 1)]
        if seed is None:
            # One entropy draw at the root, then deterministic spawning —
            # the levels stay mutually independent without any unseeded
            # default_rng() in library code.
            return list(spawn_seed_sequences(None, count))
        base = int(seed)
        return [
            np.random.SeedSequence(base + level * _LEVEL_SEED_SHIFT)
            for level in range(count)
        ]

    def _worst(
        self,
        model: LevelModel,
        draw: CoupledDraw,
        *,
        coarse: bool,
    ) -> np.ndarray:
        """Evaluate one member of a coupled pair on a drawn batch."""
        if model.timer == "linear":
            surrogate = self._surrogate_for(model)
            if coarse:
                xi = draw.xi_concat(ranks=dict(model.ranks))
            else:
                xi = draw.xi_concat()
            return surrogate.worst_delay(xi)
        fields = draw.coarse_fields if coarse else draw.fine_fields
        if fields is None:
            raise RuntimeError(
                "gate fields were not generated for an STA-timed level"
            )
        return self.engine.run(fields).worst_delay

    def _run_batch(self, level: int, state: _LevelState, count: int) -> None:
        """Draw and evaluate ``count`` coupled samples at ``level``."""
        model = self._models[level]
        coarse_model = self._models[level - 1] if level > 0 else None
        draw = self._samplers[level].generate(
            count,
            seed=state.stream,
            need_fine_fields=model.timer == "sta",
            need_coarse_fields=(
                coarse_model is not None and coarse_model.timer == "sta"
            ),
        )
        state.generate_seconds += draw.seconds
        start = time.perf_counter()
        fine = self._worst(model, draw, coarse=False)
        if coarse_model is not None:
            coarse = self._worst(coarse_model, draw, coarse=True)
        else:
            coarse = None
        state.evaluate_seconds += time.perf_counter() - start

        if coarse is None:
            state.y.push(fine)
            state.y2.push(fine ** 2)
        else:
            state.y.push(fine - coarse)
            state.y2.push(fine ** 2 - coarse ** 2)
            state.coarse.push(coarse)
            for estimator in state.coarse_q.values():
                estimator.update(coarse)
        state.fine.push(fine)
        for estimator in state.fine_q.values():
            estimator.update(fine)
        if state.kept is not None:
            state.kept.append(np.asarray(fine, dtype=float))
        state.num_samples += count

    def _draw(
        self,
        level: int,
        state: _LevelState,
        count: int,
        chunk_size: Optional[int],
    ) -> None:
        """Stream ``count`` samples at ``level`` in bounded chunks."""
        remaining = int(count)
        while remaining > 0:
            batch = remaining if chunk_size is None else min(
                remaining, int(chunk_size)
            )
            self._run_batch(level, state, batch)
            remaining -= batch

    def run(
        self,
        *,
        eps: Optional[float] = None,
        n_samples: Optional[Sequence[int]] = None,
        seed: SeedLike = 0,
        chunk_size: Optional[int] = None,
        initial_samples: int = 64,
        max_rounds: int = 8,
        max_level_samples: int = 2_000_000,
        quantiles: Sequence[float] = (),
        keep_samples: bool = False,
        consistency_threshold: float = 4.0,
    ) -> MLMCResult:
        """Run the estimator with adaptive or fixed sample allocation.

        Exactly one of ``eps`` (target standard error of the telescoped
        mean, in ps — drives the adaptive Giles loop) and ``n_samples``
        (explicit per-level counts, coarsest first) must be given.
        ``chunk_size`` bounds the in-memory batch; ``quantiles`` requests
        streamed P² estimates at those probabilities; ``keep_samples``
        retains each level's raw fine-stream worst delays (for
        regression tests — defeats the streaming memory bound).
        """
        if (eps is None) == (n_samples is None):
            raise ValueError("pass exactly one of eps= or n_samples=")
        self._ensure_surrogates()
        run_setup = self.setup_seconds
        states = [
            _LevelState(
                stream,
                has_coarse=level > 0,
                quantiles=quantiles,
                keep_samples=keep_samples,
            )
            for level, stream in enumerate(self._level_streams(seed))
        ]

        if n_samples is not None:
            counts = [int(n) for n in n_samples]
            if len(counts) != self.num_levels:
                raise ValueError(
                    f"n_samples must have {self.num_levels} entries, "
                    f"got {len(counts)}"
                )
            if any(n < 1 for n in counts):
                raise ValueError("n_samples entries must be >= 1")
            for level, count in enumerate(counts):
                self._draw(level, states[level], count, chunk_size)
        else:
            if eps <= 0.0:
                raise ValueError(f"eps must be positive, got {eps}")
            if initial_samples < 2:
                raise ValueError("initial_samples must be >= 2")
            # Adaptive targets can reach millions of (cheap) samples; bound
            # the in-memory batch even when the caller didn't ask for one.
            adaptive_chunk = chunk_size if chunk_size is not None else 65536
            warmup = min(int(initial_samples), int(max_level_samples))
            for level, state in enumerate(states):
                self._draw(level, state, warmup, adaptive_chunk)
            for _ in range(int(max_rounds)):
                variances = [s.y.variance for s in states]
                costs = [s.cost_per_sample for s in states]
                targets = optimal_allocation(eps, variances, costs)
                extra = [
                    min(int(target), int(max_level_samples)) - s.num_samples
                    for target, s in zip(targets, states)
                ]
                if all(e <= 0 for e in extra):
                    break
                for level, (state, count) in enumerate(zip(states, extra)):
                    if count > 0:
                        self._draw(level, state, count, adaptive_chunk)

        return self._build_result(
            states,
            eps=eps,
            setup_seconds=run_setup,
            quantiles=quantiles,
            consistency_threshold=consistency_threshold,
        )

    def _build_result(
        self,
        states: List[_LevelState],
        *,
        eps: Optional[float],
        setup_seconds: float,
        quantiles: Sequence[float],
        consistency_threshold: float,
    ) -> MLMCResult:
        """Freeze accumulated level states into an :class:`MLMCResult`."""
        stats: List[MLMCLevelStats] = []
        for level, (model, state) in enumerate(zip(self._models, states)):
            stats.append(
                MLMCLevelStats(
                    level=level,
                    label=model.label,
                    parameter=model.parameter,
                    timer=model.timer,
                    num_samples=state.num_samples,
                    mean_correction=state.y.mean,
                    variance=state.y.variance,
                    cost_per_sample=state.cost_per_sample,
                    generate_seconds=state.generate_seconds,
                    evaluate_seconds=state.evaluate_seconds,
                    fine_mean=state.fine.mean,
                    fine_sem=state.fine.sem,
                    fine_std=state.fine.std,
                    coarse_mean=(
                        state.coarse.mean if state.coarse is not None else None
                    ),
                    coarse_sem=(
                        state.coarse.sem if state.coarse is not None else None
                    ),
                    fine_quantiles={
                        q: est.value() for q, est in state.fine_q.items()
                    },
                    coarse_quantiles={
                        q: est.value() for q, est in state.coarse_q.items()
                    },
                )
            )

        mean = float(sum(s.y.mean for s in states))
        second_moment = float(sum(s.y2.mean for s in states))
        variance_q = max(second_moment - mean ** 2, 0.0)
        std = float(np.sqrt(variance_q))
        estimator_variance = float(
            sum(
                s.y.variance / s.num_samples
                for s in states
                if s.num_samples > 0
            )
        )
        estimator_sem = float(np.sqrt(estimator_variance))
        m2_variance = float(
            sum(
                s.y2.variance / s.num_samples
                for s in states
                if s.num_samples > 0
            )
        )
        var_of_variance = m2_variance + 4.0 * mean ** 2 * estimator_variance
        if std > 0.0:
            sigma_sem = float(np.sqrt(var_of_variance) / (2.0 * std))
        else:
            sigma_sem = float("inf") if var_of_variance > 0.0 else 0.0

        telescoped_quantiles: Dict[float, float] = {}
        for q in (float(q) for q in quantiles):
            value = states[0].fine_q[q].value()
            for state in states[1:]:
                value += state.fine_q[q].value() - state.coarse_q[q].value()
            telescoped_quantiles[q] = float(value)

        level_seconds = sum(
            s.generate_seconds + s.evaluate_seconds for s in states
        )
        kept = (
            tuple(
                np.concatenate(state.kept)
                if state.kept
                else np.empty(0)
                for state in states
            )
            if states[0].kept is not None
            else None
        )
        return MLMCResult(
            levels=tuple(stats),
            mean=mean,
            std=std,
            estimator_sem=estimator_sem,
            sigma_sem=sigma_sem,
            quantiles=telescoped_quantiles,
            consistency=telescoping_check(
                stats, threshold=consistency_threshold
            ),
            rates=fit_convergence_rates(stats),
            total_samples=int(sum(s.num_samples for s in states)),
            total_seconds=float(level_seconds + setup_seconds),
            setup_seconds=float(setup_seconds),
            hierarchy=self.hierarchy.describe(),
            eps=None if eps is None else float(eps),
            level_worst_delays=kept,
        )
