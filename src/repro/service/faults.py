"""Deterministic fault injection for the service's failure-path tests.

The daemon's graceful-degradation guarantees (artifact build failure
falls back to the cold path, a failed request never wedges the queue)
are only testable if failures can be provoked on demand.  A
:class:`FaultInjector` is threaded through the registry and batcher;
each build/sweep stage calls :meth:`FaultInjector.fire` at its entry,
which raises :class:`InjectedFault` while that stage is armed and is a
no-op otherwise.  Counters are exact and thread-safe, so a test can arm
"fail the next 2 KLE builds" and know precisely which attempts die.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

#: Stages the registry/batcher expose as injection points.
FAULT_STAGES: Tuple[str, ...] = (
    "netlist",
    "placement",
    "kle",
    "engine",
    "sweep",
)


class InjectedFault(RuntimeError):
    """Raised by an armed :class:`FaultInjector` stage (tests only)."""


class FaultInjector:
    """Thread-safe, countdown-armed fault injection points.

    Production configurations simply never arm anything, making every
    :meth:`fire` a cheap no-op.  Tests arm a stage with a finite count;
    each matching :meth:`fire` consumes one unit and raises.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._remaining: Dict[str, int] = {}
        self._fired: Dict[str, int] = {}

    def arm(self, stage: str, times: int = 1) -> None:
        """Arm ``stage`` to fail its next ``times`` invocations."""
        if stage not in FAULT_STAGES:
            raise ValueError(
                f"unknown fault stage {stage!r}; known: {FAULT_STAGES}"
            )
        if times < 1:
            raise ValueError("times must be >= 1")
        with self._lock:
            self._remaining[stage] = self._remaining.get(stage, 0) + int(times)

    def clear(self) -> None:
        """Disarm every stage (fired counters are kept)."""
        with self._lock:
            self._remaining.clear()

    def fire(self, stage: str) -> None:
        """Raise :class:`InjectedFault` iff ``stage`` is armed.

        Consumes one armed unit per raise; unarmed stages return
        immediately (the production fast path).
        """
        with self._lock:
            left = self._remaining.get(stage, 0)
            if left <= 0:
                return
            self._remaining[stage] = left - 1
            self._fired[stage] = self._fired.get(stage, 0) + 1
        raise InjectedFault(f"injected fault at stage {stage!r}")

    def fired(self, stage: str) -> int:
        """How many times ``stage`` has actually raised so far."""
        with self._lock:
            return self._fired.get(stage, 0)

    def remaining(self, stage: str) -> int:
        """How many armed units ``stage`` still has."""
        with self._lock:
            return self._remaining.get(stage, 0)

    def snapshot(self) -> Tuple[Dict[str, int], Dict[str, int]]:
        """Atomic ``(remaining, fired)`` copies, taken under one lock
        acquisition so the two views are mutually consistent even while
        workers are firing."""
        with self._lock:
            return dict(self._remaining), dict(self._fired)
