"""Admission control and worker fan-out for the SSTA daemon.

A bounded priority queue fronts a small :class:`ThreadPoolExecutor`
worker pool.  Admission applies backpressure by rejecting submissions
over capacity (:class:`QueueFullError`) rather than queueing unboundedly;
priorities order service (higher first, FIFO within a priority); a
request whose ``timeout_s`` expires while queued is terminated with
``TIMED_OUT`` instead of occupying a sweep.

Workers pop the best-priority request and greedily coalesce up to
``max_batch_requests`` compatible requests (equal batch keys) from the
queue into one shared sweep — the batching that turns N queued analyses
of the same circuit/kernel/rank into one resident-engine pass.  Artifact
resolution failures fail only the affected batch; the worker loop keeps
serving (the never-wedge-the-queue contract).
"""

from __future__ import annotations

import heapq
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.service.artifacts import ArtifactBuildError, ArtifactRegistry
from repro.service.batcher import ActiveRequest, execute_batch, fail_batch
from repro.service.faults import FaultInjector
from repro.service.request import RequestStatus, ServiceConfig, ServiceResult


class QueueFullError(RuntimeError):
    """Admission rejected: the queue is at capacity (backpressure)."""


@dataclass(order=True)
class _QueueEntry:
    """Heap entry ordering requests by (-priority, admission order)."""

    sort_key: Tuple[int, int]
    active: ActiveRequest = field(compare=False)


def _run_worker(scheduler: "Scheduler", index: int) -> None:
    """Worker-thread entry point: serve batches until the scheduler stops.

    Module-level by design so the project concurrency gate
    (REPRO-PAR001/002) resolves the ``pool.submit`` root and walks the
    whole serving call graph from here.
    """
    scheduler.serve_forever(index)


class Scheduler:
    """Bounded priority admission queue plus worker fan-out.

    All mutable state is instance-owned and lock-guarded; the only
    process-wide state a worker touches is the artifact registry, whose
    accessors are themselves serialized per artifact.
    """

    def __init__(
        self,
        config: ServiceConfig,
        registry: ArtifactRegistry,
        faults: FaultInjector,
    ) -> None:
        self.config = config
        self.registry = registry
        self.faults = faults
        self._heap: List[_QueueEntry] = []
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._seq = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._workers: List["Future[None]"] = []

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Launch the worker pool (idempotent)."""
        with self._lock:
            if self._pool is not None:
                return
            pool = ThreadPoolExecutor(
                max_workers=self.config.num_workers,
                thread_name_prefix="ssta-worker",
            )
            self._pool = pool
            for index in range(self.config.num_workers):
                self._workers.append(pool.submit(_run_worker, self, index))

    def stop(self) -> None:
        """Stop serving: fail queued requests, then join the workers."""
        self._stop.set()
        with self._available:
            pending = [entry.active for entry in self._heap]
            self._heap.clear()
            self._available.notify_all()
        for active in pending:
            active.finish(
                ServiceResult(
                    request_id=active.stream.request_id,
                    status=RequestStatus.FAILED,
                    error="service stopped before the request was served",
                    wait_seconds=time.monotonic() - active.submitted_at,
                )
            )
        with self._lock:
            pool = self._pool
            self._pool = None
        if pool is not None:
            pool.shutdown(wait=True)
        with self._lock:
            self._workers.clear()

    @property
    def running(self) -> bool:
        """Whether the worker pool is up and accepting work."""
        with self._lock:
            pool = self._pool
        return pool is not None and not self._stop.is_set()

    # ------------------------------------------------------------------
    # Admission.
    # ------------------------------------------------------------------
    def submit(self, active: ActiveRequest) -> None:
        """Admit one request, or raise :class:`QueueFullError`.

        Capacity is the backpressure boundary: over-capacity submissions
        are rejected immediately (the client can retry) instead of
        growing an unbounded backlog.
        """
        if self._stop.is_set():
            raise RuntimeError("scheduler is stopped")
        with self._available:
            if len(self._heap) >= self.config.max_queue:
                raise QueueFullError(
                    f"admission queue at capacity "
                    f"({self.config.max_queue} requests)"
                )
            entry = _QueueEntry(
                sort_key=(-int(active.request.priority), self._seq),
                active=active,
            )
            self._seq += 1
            heapq.heappush(self._heap, entry)
            self._available.notify()

    def queue_depth(self) -> int:
        """Requests currently queued (not yet popped by a worker)."""
        with self._lock:
            return len(self._heap)

    # ------------------------------------------------------------------
    # Serving.
    # ------------------------------------------------------------------
    def next_batch(
        self, wait_timeout_s: float = 0.25
    ) -> Optional[List[ActiveRequest]]:
        """Pop the best request plus compatible peers as one batch.

        Returns ``None`` when the queue stayed empty for the wait window
        or the scheduler is stopping.  Queue-expired requests are
        finished as ``TIMED_OUT`` here, at pop time, so they never cost a
        sweep.
        """
        with self._available:
            if not self._heap:
                self._available.wait(timeout=wait_timeout_s)
            if self._stop.is_set() or not self._heap:
                return None
            head = heapq.heappop(self._heap).active
            key = head.request.batch_key()
            batch = [head]
            kept: List[_QueueEntry] = []
            while self._heap and len(batch) < self.config.max_batch_requests:
                entry = heapq.heappop(self._heap)
                if entry.active.request.batch_key() == key:
                    batch.append(entry.active)
                else:
                    kept.append(entry)
            for entry in kept:
                heapq.heappush(self._heap, entry)
        now = time.monotonic()
        ready: List[ActiveRequest] = []
        for active in batch:
            active.wait_seconds = now - active.submitted_at
            if active.deadline is not None and now > active.deadline:
                active.finish(
                    ServiceResult(
                        request_id=active.stream.request_id,
                        status=RequestStatus.TIMED_OUT,
                        error="timed out waiting in the admission queue",
                        wait_seconds=active.wait_seconds,
                    )
                )
            else:
                ready.append(active)
        return ready or None

    def serve_one(self, batch: List[ActiveRequest]) -> None:
        """Resolve artifacts for one batch and execute it.

        An :class:`ArtifactBuildError` (cold-path failure after the
        registry's quarantine-and-retry) fails exactly this batch.
        """
        head = batch[0].request
        try:
            harness = self.registry.harness(head.circuit, head.kernel, head.r)
        except (ArtifactBuildError, ValueError, KeyError, OSError) as exc:
            fail_batch(batch, f"artifact resolution failed: {exc!r}")
            return
        execute_batch(batch, harness, self.faults)

    def serve_forever(self, index: int) -> None:
        """Main worker loop: pop batches and serve until stopped."""
        del index  # workers are symmetric; the index only names threads
        while not self._stop.is_set():
            batch = self.next_batch()
            if batch is None:
                continue
            self.serve_one(batch)
