"""SSTA-as-a-service: a persistent batching daemon over resident artifacts.

Every standalone analysis pays placement, KLE eigensolve and engine
compilation per invocation; this package keeps those artifacts resident
behind a long-running daemon so the paper's reuse of precomputed kernel
structure holds at *request* granularity:

- :class:`SSTAService` — the daemon: admission queue, worker pool,
  warm artifact registry, per-request result streams;
- :class:`AnalysisRequest` / :class:`ServiceResult` /
  :class:`ChunkResult` — the request/response schema
  (``circuit × kernel × rank × N × seed``);
- :class:`ResultStream` — incremental consumption with bounded
  buffering, cancellation (client disconnect) and a guaranteed terminal
  result;
- :class:`ArtifactRegistry` — warm residency with
  quarantine-then-cold-fallback failure containment;
- :class:`FaultInjector` — deterministic failure injection for the
  fault test layer;
- :func:`run_cold_request` — the process-per-request cold baseline.

Determinism guarantee: a request's result is bitwise identical to a
serial :class:`~repro.timing.ssta.MonteCarloSSTA` run with the same
parameters, independent of batching, queue order, or worker count (see
:mod:`repro.service.batcher`).
"""

from repro.service.artifacts import ArtifactBuildError, ArtifactRegistry
from repro.service.client import ServiceClient, run_cold_request
from repro.service.faults import FAULT_STAGES, FaultInjector, InjectedFault
from repro.service.request import (
    FLOW_MODES,
    AnalysisRequest,
    ChunkResult,
    RequestStatus,
    ServiceConfig,
    ServiceResult,
    default_kernels,
)
from repro.service.scheduler import QueueFullError, Scheduler
from repro.service.server import SSTAService
from repro.service.stream import ResultStream

__all__ = [
    "AnalysisRequest",
    "ArtifactBuildError",
    "ArtifactRegistry",
    "ChunkResult",
    "FAULT_STAGES",
    "FLOW_MODES",
    "FaultInjector",
    "InjectedFault",
    "QueueFullError",
    "RequestStatus",
    "ResultStream",
    "Scheduler",
    "ServiceClient",
    "ServiceConfig",
    "ServiceResult",
    "SSTAService",
    "default_kernels",
    "run_cold_request",
]
