"""Warm artifact residency for the SSTA daemon.

The registry keeps every expensive, reusable artifact resident in
memory — loaded netlists, placements, KLE eigensolves, and the
per-(circuit, kernel, rank) :class:`~repro.timing.ssta.MonteCarloSSTA`
harnesses whose engines hold compiled timing programs and prepared
sample-generator factorizations.  A request only ever pays for an
artifact's first use; the load bench measures exactly this warm/cold
gap.

Failure containment: every build goes through :meth:`ArtifactRegistry`'s
warm path first (which may read the checksummed on-disk cache — corrupt
entries are quarantined as ``*.corrupt`` by the cache layer itself and
regenerated).  If the warm build *raises*, the artifact key is
quarantined in-registry and the build is retried once cold (no disk
cache, fresh construction).  Only a cold failure surfaces as
:class:`ArtifactBuildError`; either way the serving loop keeps running.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from repro.circuit.benchmarks import load_circuit
from repro.circuit.netlist import Netlist
from repro.core.galerkin import solve_kle
from repro.core.kle import KLEResult
from repro.mesh.mesh import TriangleMesh
from repro.mesh.structured import structured_rectangle_mesh
from repro.place.placer import Placement, place_netlist
from repro.service.faults import FaultInjector
from repro.service.request import ServiceConfig
from repro.timing import native
from repro.timing.ssta import MonteCarloSSTA
from repro.utils.artifact_cache import ArtifactCache, get_cache

#: Harness memo key: (circuit, kernel, truncation order).
HarnessKey = Tuple[str, str, Optional[int]]


class ArtifactBuildError(RuntimeError):
    """An artifact could not be built even on the cold fallback path."""


class ArtifactRegistry:
    """Thread-safe resident cache of the service's analysis artifacts.

    Concurrent requests for the *same* artifact build it exactly once
    (per-key build locks); requests for different artifacts build
    concurrently.  ``stats()`` exposes hit/miss counters, the in-registry
    quarantine list, and the resident-byte footprint of the compiled
    timing programs for eviction accounting.
    """

    def __init__(
        self,
        config: ServiceConfig,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        config.validate()
        self.config = config
        self.faults = faults if faults is not None else FaultInjector()
        self._lock = threading.Lock()
        self._build_locks: Dict[str, threading.Lock] = {}
        self._mesh: Optional[TriangleMesh] = None
        self._netlists: Dict[str, Netlist] = {}
        self._placements: Dict[str, Placement] = {}
        self._kles: Dict[str, KLEResult] = {}
        self._harnesses: Dict[HarnessKey, MonteCarloSSTA] = {}
        self._quarantined: Dict[str, str] = {}
        self._hits = 0
        self._misses = 0

    # ------------------------------------------------------------------
    # Internal plumbing.
    # ------------------------------------------------------------------
    def _build_lock(self, key: str) -> threading.Lock:
        """Per-artifact build lock (created on first use)."""
        with self._lock:
            lock = self._build_locks.get(key)
            if lock is None:
                lock = threading.Lock()
                self._build_locks[key] = lock
            return lock

    def _count_hit(self) -> None:
        with self._lock:
            self._hits += 1

    def _count_miss(self) -> None:
        with self._lock:
            self._misses += 1

    def _quarantine(self, key: str, reason: str) -> None:
        with self._lock:
            self._quarantined[key] = reason

    def _kle_cache(self) -> Optional[ArtifactCache]:
        directory = self.config.cache_directory
        if directory is None:
            return None
        return get_cache("kle", directory)

    # ------------------------------------------------------------------
    # Artifact accessors (memoized, warm-with-cold-fallback).
    # ------------------------------------------------------------------
    def mesh(self) -> TriangleMesh:
        """The shared structured die mesh all KLE solves discretize."""
        with self._build_lock("mesh"):
            if self._mesh is None:
                x0, y0, x1, y1 = self.config.die_bounds
                nx, ny = self.config.mesh_divisions
                self._mesh = structured_rectangle_mesh(x0, y0, x1, y1, nx, ny)
            return self._mesh

    def netlist(self, circuit: str) -> Netlist:
        """Load (and keep resident) a benchmark circuit by name."""
        with self._build_lock(f"netlist:{circuit}"):
            cached = self._netlists.get(circuit)
            if cached is not None:
                self._count_hit()
                return cached
            self._count_miss()
            self.faults.fire("netlist")
            netlist = load_circuit(circuit)
            with self._lock:
                self._netlists[circuit] = netlist
            return netlist

    def placement(self, circuit: str) -> Placement:
        """Deterministic placement of ``circuit`` (resident; seed-fixed)."""
        netlist = self.netlist(circuit)
        with self._build_lock(f"placement:{circuit}"):
            cached = self._placements.get(circuit)
            if cached is not None:
                self._count_hit()
                return cached
            self._count_miss()
            self.faults.fire("placement")
            placed = place_netlist(
                netlist,
                self.config.die_bounds,
                seed=self.config.placement_seed,
            )
            with self._lock:
                self._placements[circuit] = placed
            return placed

    def kle(self, kernel_name: str) -> KLEResult:
        """Resident KLE eigensolve for one configured kernel.

        The warm path reads/writes the checksummed on-disk cache when the
        config enables one (a poisoned entry is quarantined as
        ``*.corrupt`` by the cache layer and regenerated transparently);
        a warm-path *exception* quarantines the artifact in-registry and
        falls back to a cold in-memory solve.
        """
        kernel = self.config.kernels[kernel_name]
        key = f"kle:{kernel_name}"
        with self._build_lock(key):
            cached = self._kles.get(kernel_name)
            if cached is not None:
                self._count_hit()
                return cached
            self._count_miss()
            mesh = self.mesh()
            try:
                self.faults.fire("kle")
                solved = solve_kle(
                    kernel,
                    mesh,
                    num_eigenpairs=self.config.num_eigenpairs,
                    cache=self._kle_cache(),
                    method=self.config.kle_method,
                    solver_seed=self.config.kle_solver_seed,
                )
            except Exception as exc:
                # Graceful degradation is the service contract: any warm
                # build failure (injected or real) is quarantined and
                # retried cold exactly once; a cold failure re-raises as
                # ArtifactBuildError below.
                self._quarantine(key, repr(exc))
                try:
                    self.faults.fire("kle")
                    solved = solve_kle(
                        kernel,
                        mesh,
                        num_eigenpairs=self.config.num_eigenpairs,
                        cache=None,
                        method=self.config.kle_method,
                        solver_seed=self.config.kle_solver_seed,
                    )
                except Exception as cold_exc:
                    # Terminal: surface a typed error; the caller fails
                    # only the affected request(s), never the queue.
                    raise ArtifactBuildError(
                        f"KLE build failed warm ({exc!r}) and cold "
                        f"({cold_exc!r}) for kernel {kernel_name!r}"
                    ) from cold_exc
            with self._lock:
                self._kles[kernel_name] = solved
            return solved

    def harness(
        self, circuit: str, kernel_name: str, r: Optional[int]
    ) -> MonteCarloSSTA:
        """Resident per-(circuit, kernel, rank) Monte-Carlo harness.

        The harness owns the STA engine (compiled program), both sample
        generators, and their prepared factorizations — everything a
        sweep needs beyond the samples themselves.  Build failures follow
        the quarantine-then-cold-fallback contract of :meth:`kle`.
        """
        key: HarnessKey = (circuit, kernel_name, r)
        lock_name = f"harness:{circuit}:{kernel_name}:{r}"
        with self._build_lock(lock_name):
            cached = self._harnesses.get(key)
            if cached is not None:
                self._count_hit()
                return cached
            self._count_miss()
            netlist = self.netlist(circuit)
            placed = self.placement(circuit)
            kle = self.kle(kernel_name)
            kernel = self.config.kernels[kernel_name]
            try:
                self.faults.fire("engine")
                built = MonteCarloSSTA(
                    netlist,
                    placed,
                    kernel,
                    kle,
                    r=r,
                    engine=self.config.engine,
                )
            except Exception as exc:
                # Same containment as `kle`: quarantine the warm failure,
                # retry cold once, surface a typed error otherwise.
                self._quarantine(lock_name, repr(exc))
                try:
                    self.faults.fire("engine")
                    built = MonteCarloSSTA(
                        netlist,
                        placed,
                        kernel,
                        kle,
                        r=r,
                        engine=self.config.engine,
                    )
                except Exception as cold_exc:
                    raise ArtifactBuildError(
                        f"harness build failed warm ({exc!r}) and cold "
                        f"({cold_exc!r}) for {key}"
                    ) from cold_exc
            if self.config.kernel_threads is not None:
                # Pin the native kernel's sample-lane worker count for
                # every run through this resident engine; bitwise output
                # is independent of the pin, so residency stays pure.
                built.engine.native_threads = int(self.config.kernel_threads)
            with self._lock:
                self._harnesses[key] = built
            return built

    def warm_up(
        self, circuit: str, kernel_name: str = "gaussian", r: Optional[int] = None
    ) -> MonteCarloSSTA:
        """Eagerly build everything a request for this key will touch.

        Beyond :meth:`harness`, this forces the compiled timing program
        and the sample generators' location preparation, so the first
        real request runs entirely warm.
        """
        harness = self.harness(circuit, kernel_name, r)
        if self.config.engine == "compiled":
            harness.engine.program  # noqa: B018 — builds and caches
        harness.kle_generator.prepare(harness.gate_locations)
        harness.reference_generator.prepare(harness.gate_locations)
        return harness

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def quarantined(self) -> Dict[str, str]:
        """Artifact keys whose warm build failed, with the failure repr."""
        with self._lock:
            return dict(self._quarantined)

    def kernel_threads(self) -> int:
        """Native worker count resident engines sweep with.

        Resolves ``config.kernel_threads`` (falling back to the
        ``REPRO_NATIVE_THREADS`` environment contract); a malformed
        environment degrades to 1 here so monitoring never raises.
        """
        try:
            return native.resolve_thread_count(self.config.kernel_threads)
        except ValueError:
            return 1

    def resident_bytes(self) -> int:
        """Bytes held by the resident analysis artifacts.

        Counts each compiled timing program's arenas plus the per-thread
        native scratch its sweeps allocate at the configured kernel
        thread count, and the eigenpair arrays of every resident KLE
        solve — the high-water footprint a saturated request leaves
        resident.  The KLE term is what the randomized-solver path keeps
        bounded on fine meshes (O(n·m) instead of the dense path's O(n²)
        transient).
        """
        threads = self.kernel_threads()
        with self._lock:
            harnesses = list(self._harnesses.values())
            kles = list(self._kles.values())
        total = 0
        for harness in harnesses:
            program = harness.engine._program
            if program is not None:
                total += program.resident_bytes()
                total += program.native_scratch_bytes(threads)
        for kle in kles:
            total += int(kle.eigenvalues.nbytes + kle.d_vectors.nbytes)
        return total

    def stats(self) -> Dict[str, object]:
        """Snapshot of registry counters for monitoring/bench output."""
        with self._lock:
            counts: List[Tuple[str, int]] = [
                ("netlists", len(self._netlists)),
                ("placements", len(self._placements)),
                ("kles", len(self._kles)),
                ("harnesses", len(self._harnesses)),
            ]
            hits, misses = self._hits, self._misses
            quarantined = dict(self._quarantined)
        return {
            "hits": hits,
            "misses": misses,
            "resident": dict(counts),
            "resident_bytes": self.resident_bytes(),
            "kernel_threads": self.kernel_threads(),
            "kle_method": self.config.kle_method,
            "quarantined": quarantined,
        }
