"""Shared-sweep batching with per-request bitwise determinism.

Compatible requests (equal :meth:`AnalysisRequest.batch_key` — same
circuit, kernel, rank and flow) are fused into shared STA sweeps: each
round, every live request contributes its next chunk of parameter
samples, the concatenated block runs through the resident engine *once*,
and the rows are split back per request.

Determinism is structural, not statistical.  Each request's samples are
generated from its own seed exactly as a serial
:meth:`MonteCarloSSTA._run_flow` would — the one-shot path passes the
raw seed to a single ``generate()`` call, the chunked path threads one
persistent ``as_generator(seed)`` stream through per-chunk calls — and
the engine's sample axis is bitwise row-independent (the PR-2 blocked
execution guarantee), so the split rows, the per-chunk
:class:`StreamingSTAResult` updates, and therefore every reported
statistic are bitwise identical to the serial run regardless of batch
composition, ordering, or worker count.

Failure containment: a sweep-stage failure (injected or real) fails the
requests in that batch with a typed error and returns — the worker and
its queue keep serving.  Cancelled or slow-consumer streams are detected
at chunk boundaries and dropped from subsequent rounds without touching
their batch peers' sample streams.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.service.faults import FaultInjector
from repro.service.request import (
    AnalysisRequest,
    ChunkResult,
    RequestStatus,
    ServiceResult,
)
from repro.service.stream import ResultStream
from repro.timing.ssta import MonteCarloSSTA, StreamingSTAResult
from repro.timing.sta import STAResult
from repro.utils.rng import SeedLike, as_generator


@dataclass
class ActiveRequest:
    """One admitted request plus its per-sweep runtime state."""

    request: AnalysisRequest
    stream: ResultStream
    seed: SeedLike
    submitted_at: float
    deadline: Optional[float] = None
    wait_seconds: float = 0.0
    # Runtime state, initialized by `_prepare` at batch start.
    chunked: bool = False
    rng: Optional[np.random.Generator] = None
    accumulator: Optional[StreamingSTAResult] = None
    final_sta: Optional[STAResult] = None
    produced: int = 0
    chunk_index: int = 0
    sample_seconds: float = 0.0
    timer_seconds: float = 0.0
    finished: bool = field(default=False)

    def next_rows(self) -> int:
        """Sample rows this request contributes to the next round."""
        remaining = self.request.num_samples - self.produced
        if not self.chunked:
            return remaining
        assert self.request.chunk_size is not None
        return min(self.request.chunk_size, remaining)

    def finish(self, result: ServiceResult) -> None:
        """Publish the terminal result exactly once."""
        if not self.finished:
            self.finished = True
            self.stream.finish(result)


def _prepare(active: ActiveRequest) -> None:
    """Set up the request's seed stream, mirroring the serial flow.

    One-shot requests (``chunk_size`` unset, or ``N <= chunk_size``) pass
    their raw seed to a single ``generate()`` call; chunked requests
    thread one persistent generator through per-chunk calls — exactly
    :meth:`MonteCarloSSTA._run_flow`'s two branches.
    """
    request = active.request
    chunk = request.chunk_size
    active.chunked = chunk is not None and request.num_samples > chunk
    if active.chunked:
        active.rng = as_generator(active.seed)
        active.accumulator = StreamingSTAResult(quantiles=request.quantiles)


def _terminal(
    active: ActiveRequest,
    status: RequestStatus,
    *,
    error: Optional[str] = None,
    batch_size: int = 0,
) -> ServiceResult:
    """Build the terminal :class:`ServiceResult` for ``active``."""
    sta = active.accumulator if active.chunked else active.final_sta
    if status is not RequestStatus.DONE:
        sta = None
    return ServiceResult(
        request_id=active.stream.request_id,
        status=status,
        sta=sta,
        error=error,
        num_samples=active.produced if status is RequestStatus.DONE else 0,
        sample_seconds=active.sample_seconds,
        timer_seconds=active.timer_seconds,
        wait_seconds=active.wait_seconds,
        batch_size=batch_size,
    )


def _generation_round(
    live: List[ActiveRequest],
    harness: MonteCarloSSTA,
    batch_size: int,
) -> List[Tuple[ActiveRequest, int, Dict[str, np.ndarray]]]:
    """Generate each live request's next chunk from its own seed stream.

    Cancelled streams are finished and skipped *before* their generator
    would have been advanced, so a disconnect never perturbs the
    request's own (or any peer's) sample stream had it survived.
    """
    parts: List[Tuple[ActiveRequest, int, Dict[str, np.ndarray]]] = []
    for active in live:
        if active.stream.cancelled:
            active.finish(
                _terminal(
                    active,
                    RequestStatus.CANCELLED,
                    error=active.stream.cancel_reason,
                    batch_size=batch_size,
                )
            )
            continue
        rows = active.next_rows()
        generator = (
            harness.kle_generator
            if active.request.flow == "kle"
            else harness.reference_generator
        )
        seed: SeedLike = active.rng if active.chunked else active.seed
        generated = generator.generate(
            harness.gate_locations, rows, seed=seed
        )
        active.sample_seconds += generated.total_seconds
        parts.append((active, rows, dict(generated.samples)))
    return parts


def _split_round(
    parts: List[Tuple[ActiveRequest, int, Dict[str, np.ndarray]]],
    sta: STAResult,
    sweep_seconds: float,
    batch_size: int,
) -> List[ActiveRequest]:
    """Split a fused sweep's rows back per request and stream them out.

    Returns the requests still live for the next round.
    """
    total_rows = sum(rows for _, rows, _ in parts)
    survivors: List[ActiveRequest] = []
    offset = 0
    for active, rows, _ in parts:
        worst = sta.worst_delay[offset : offset + rows]
        ends = {
            net: values[offset : offset + rows]
            for net, values in sta.end_arrivals.items()
        }
        offset += rows
        active.timer_seconds += sweep_seconds * (rows / max(total_rows, 1))
        chunk_sta = STAResult(
            end_arrivals=ends, worst_delay=worst, num_samples=rows
        )
        if active.chunked:
            assert active.accumulator is not None
            active.accumulator.update(chunk_sta)
        else:
            active.final_sta = chunk_sta
        chunk = ChunkResult(
            request_id=active.stream.request_id,
            index=active.chunk_index,
            start=active.produced,
            num_samples=rows,
            worst_delay=worst,
            end_arrivals=ends if active.request.include_samples else None,
        )
        active.chunk_index += 1
        active.produced += rows
        if not active.stream.offer(chunk):
            active.finish(
                _terminal(
                    active,
                    RequestStatus.CANCELLED,
                    error=active.stream.cancel_reason,
                    batch_size=batch_size,
                )
            )
            continue
        if active.produced >= active.request.num_samples:
            active.finish(
                _terminal(active, RequestStatus.DONE, batch_size=batch_size)
            )
        else:
            survivors.append(active)
    return survivors


def fail_batch(batch: List[ActiveRequest], error: str) -> None:
    """Fail every unfinished request in ``batch`` with ``error``.

    Used by the worker when artifact resolution or the sweep stage dies:
    the affected requests get a terminal FAILED result, the queue keeps
    serving everything else.
    """
    for active in batch:
        active.finish(
            _terminal(
                active,
                RequestStatus.FAILED,
                error=error,
                batch_size=len(batch),
            )
        )


def execute_batch(
    batch: List[ActiveRequest],
    harness: MonteCarloSSTA,
    faults: FaultInjector,
) -> None:
    """Run one admitted batch to completion over shared STA sweeps.

    Every request in ``batch`` shares the harness (equal batch keys);
    rounds continue until each request is DONE, CANCELLED, TIMED_OUT or
    FAILED.  All terminal outcomes are published on the per-request
    streams — this function never raises on a per-batch failure.
    """
    batch_size = len(batch)
    live: List[ActiveRequest] = []
    for active in batch:
        _prepare(active)
        if (
            active.deadline is not None
            and time.monotonic() > active.deadline
        ):
            active.finish(
                _terminal(
                    active,
                    RequestStatus.TIMED_OUT,
                    error="deadline expired before processing",
                    batch_size=batch_size,
                )
            )
            continue
        live.append(active)

    while live:
        parts = _generation_round(live, harness, batch_size)
        if not parts:
            return
        names = list(parts[0][2])
        combined = {
            name: np.concatenate([samples[name] for _, _, samples in parts])
            for name in names
        }
        start = time.perf_counter()
        try:
            faults.fire("sweep")
            sta = harness.engine.run(combined)
        except Exception as exc:  # repro-lint: disable=REPRO-EXC001
            # Containment boundary: a failed sweep fails this batch's
            # requests with a typed terminal result and returns; the
            # worker loop (and every other queued request) keeps going.
            fail_batch(
                [active for active, _, _ in parts],
                f"sweep failed: {exc!r}",
            )
            return
        sweep_seconds = time.perf_counter() - start
        live = _split_round(parts, sta, sweep_seconds, batch_size)
