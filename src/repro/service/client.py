"""Convenience client surface over a running :class:`SSTAService`.

The service API is deliberately low-level (submit → stream → result);
:class:`ServiceClient` adds the blocking one-call form most callers
want, and :func:`run_cold_request` is the process-local *cold path* —
build everything from scratch, run once, throw it away — which the load
bench uses (via ``python -m repro.service once`` subprocesses) as the
process-per-request baseline the daemon is measured against.
"""

from __future__ import annotations

from typing import Optional

from repro.service.batcher import ActiveRequest, execute_batch
from repro.service.faults import FaultInjector
from repro.service.request import (
    AnalysisRequest,
    ServiceConfig,
    ServiceResult,
)
from repro.service.server import SSTAService
from repro.service.stream import ResultStream


class ServiceClient:
    """Blocking convenience wrapper around one in-process service."""

    def __init__(self, service: SSTAService) -> None:
        self.service = service

    def analyze(
        self,
        request: AnalysisRequest,
        *,
        timeout_s: Optional[float] = 300.0,
    ) -> ServiceResult:
        """Submit and block for the terminal result."""
        return self.service.submit(request).result(timeout_s=timeout_s)

    def analyze_async(self, request: AnalysisRequest) -> ResultStream:
        """Submit and return the stream for incremental consumption."""
        return self.service.submit(request)


def run_cold_request(
    request: AnalysisRequest,
    config: Optional[ServiceConfig] = None,
) -> ServiceResult:
    """Serve one request with *no* residency: the cold-path baseline.

    Builds the registry, resolves every artifact, runs the sweep and
    discards all of it — exactly what a process-per-request deployment
    pays on each invocation.  The result is still produced through the
    same batcher, so cold and warm answers are bitwise identical for
    equal request tuples.
    """
    from repro.service.artifacts import ArtifactRegistry

    effective = config if config is not None else ServiceConfig()
    request.validate(effective)
    faults = FaultInjector()
    registry = ArtifactRegistry(effective, faults)
    harness = registry.warm_up(request.circuit, request.kernel, request.r)
    # Nobody drains chunks while the synchronous sweep runs, so size the
    # buffer for the whole stream up front.
    chunk = request.chunk_size or request.num_samples
    total_chunks = -(-request.num_samples // max(chunk, 1)) + 1
    stream = ResultStream(
        request, "cold-000000", buffer_chunks=total_chunks
    )
    active = ActiveRequest(
        request=request,
        stream=stream,
        seed=request.seed,
        submitted_at=0.0,
    )
    execute_batch([active], harness, faults)
    return stream.result(timeout_s=0.0)
