"""Load-test bench for the SSTA daemon: warm vs cold, p50/p99, determinism.

Measures three things and writes them as one JSON document
(``BENCH_pr6.json`` by convention):

- **warm path**: per-request latency through a started, warmed daemon
  (sequential submit→terminal round trips, reported as median/IQR with
  p50/p99/mean alongside) plus throughput from a concurrent burst,
  where shared-sweep batching fuses compatible requests;
- **cold path**: the process-per-request baseline — each request pays a
  fresh interpreter, imports, placement, KLE eigensolve and engine
  compile in a subprocess (``python -m repro.service once``);
- **determinism**: a batched concurrent run through the daemon compared
  bitwise against serial :class:`~repro.timing.ssta.MonteCarloSSTA`
  runs with the same seeds (max |Δ| must be exactly 0).

The acceptance bar (PR 6) is warm median latency ≥ 5× better than the
cold median; the CI smoke job additionally asserts a generous absolute
p99 bound.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from typing import Dict, List, Optional

import numpy as np

from repro.service.client import ServiceClient
from repro.service.request import AnalysisRequest, ServiceConfig
from repro.service.server import SSTAService
from repro.utils.streaming import RunningMoments


def _percentiles_ms(latencies_s: List[float]) -> Dict[str, float]:
    """Order statistics of a latency sample, in milliseconds.

    ``median_ms`` (= p50) is the headline number and ``iqr_ms`` the
    noise bar: speedup gates compare medians, never means, so a single
    preempted request cannot flip a CI verdict.
    """
    values = np.asarray(latencies_s, dtype=float) * 1e3
    return {
        "p50_ms": float(np.percentile(values, 50)),
        "p99_ms": float(np.percentile(values, 99)),
        "median_ms": float(np.percentile(values, 50)),
        "iqr_ms": float(
            np.percentile(values, 75) - np.percentile(values, 25)
        ),
        "mean_ms": float(np.mean(values)),
        "min_ms": float(np.min(values)),
        "max_ms": float(np.max(values)),
        "n": int(values.size),
    }


def _warm_burst(
    service: SSTAService,
    circuit: str,
    num_samples: int,
    num_requests: int,
    *,
    base_seed: int,
) -> Dict[str, float]:
    """Measure warm serving: sequential latency, then burst throughput.

    Per-request latency is measured one request at a time (each number
    is a full submit→terminal round trip with nothing else queued — the
    apples-to-apples counterpart of one cold process).  Throughput comes
    from a separate concurrent burst, where batching fuses compatible
    requests into shared sweeps.
    """
    latencies: List[float] = []
    for i in range(num_requests):
        started = time.perf_counter()
        result = service.submit(
            AnalysisRequest(
                circuit=circuit, num_samples=num_samples, seed=base_seed + i
            )
        ).result(timeout_s=600.0)
        if not result.ok:
            raise RuntimeError(f"warm request failed: {result.error}")
        latencies.append(time.perf_counter() - started)
    t0 = time.perf_counter()
    streams = [
        service.submit(
            AnalysisRequest(
                circuit=circuit,
                num_samples=num_samples,
                seed=base_seed + 1000 + i,
            )
        )
        for i in range(num_requests)
    ]
    max_batch = 0
    for stream in streams:
        result = stream.result(timeout_s=600.0)
        if not result.ok:
            raise RuntimeError(
                f"warm request {stream.request_id} failed: {result.error}"
            )
        max_batch = max(max_batch, result.batch_size)
    elapsed = time.perf_counter() - t0
    stats = _percentiles_ms(latencies)
    stats["requests_per_second"] = float(num_requests / elapsed)
    stats["burst_max_batch_size"] = max_batch
    moments = RunningMoments()
    moments.push(np.asarray(latencies) * 1e3)
    stats["sem_ms"] = moments.sem
    return stats


def _cold_runs(
    circuit: str,
    num_samples: int,
    num_requests: int,
    *,
    base_seed: int,
) -> Dict[str, float]:
    """Run the process-per-request baseline via subprocesses."""
    env = dict(os.environ)
    src_root = os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    env["PYTHONPATH"] = src_root + os.pathsep + env.get("PYTHONPATH", "")
    latencies: List[float] = []
    for i in range(num_requests):
        command = [
            sys.executable,
            "-m",
            "repro.service",
            "once",
            "--circuit",
            circuit,
            "--num-samples",
            str(num_samples),
            "--seed",
            str(base_seed + i),
        ]
        started = time.perf_counter()
        completed = subprocess.run(
            command, env=env, capture_output=True, text=True
        )
        latencies.append(time.perf_counter() - started)
        if completed.returncode != 0:
            raise RuntimeError(
                f"cold run failed (rc={completed.returncode}): "
                f"{completed.stderr[-2000:]}"
            )
    return _percentiles_ms(latencies)


def _determinism_check(
    service: SSTAService,
    circuit: str,
    num_samples: int,
    *,
    base_seed: int,
    num_requests: int = 4,
) -> Dict[str, object]:
    """Batched concurrent requests vs serial harness runs, bitwise."""
    harness = service.warm_up(circuit)
    streams = [
        service.submit(
            AnalysisRequest(
                circuit=circuit,
                num_samples=num_samples,
                seed=base_seed + i,
            )
        )
        for i in range(num_requests)
    ]
    results = [s.result(timeout_s=600.0) for s in streams]
    max_diff = 0.0
    identical = True
    for i, result in enumerate(results):
        if not result.ok or result.sta is None:
            identical = False
            continue
        serial = harness.run_kle(num_samples, seed=base_seed + i)
        diff = float(
            np.max(
                np.abs(
                    np.asarray(result.sta.worst_delay)
                    - np.asarray(serial.sta.worst_delay)
                )
            )
        )
        max_diff = max(max_diff, diff)
        identical = identical and diff == 0.0  # repro-lint: disable=REPRO-FLOAT001
    return {
        "batched_equals_serial": identical,
        "max_abs_diff_ps": max_diff,
        "requests": num_requests,
    }


def run_service_bench(
    *,
    circuit: str = "c880",
    num_samples: int = 512,
    warm_requests: int = 16,
    cold_requests: int = 3,
    base_seed: int = 20080310,
    config: Optional[ServiceConfig] = None,
) -> Dict[str, object]:
    """Run the full warm/cold/determinism bench; returns the JSON payload."""
    effective = config if config is not None else ServiceConfig()
    with SSTAService(effective) as service:
        warm_setup_start = time.perf_counter()
        service.warm_up(circuit)
        warm_setup_s = time.perf_counter() - warm_setup_start
        client = ServiceClient(service)
        # One throwaway request flushes any residual lazy setup.
        client.analyze(
            AnalysisRequest(
                circuit=circuit, num_samples=32, seed=base_seed - 1
            )
        )
        warm = _warm_burst(
            service,
            circuit,
            num_samples,
            warm_requests,
            base_seed=base_seed,
        )
        determinism = _determinism_check(
            service, circuit, num_samples, base_seed=base_seed + 1000
        )
        stats = service.stats()
    cold = _cold_runs(
        circuit, num_samples, cold_requests, base_seed=base_seed
    )
    speedup = float(cold["median_ms"]) / max(float(warm["median_ms"]), 1e-9)
    return {
        "bench": "service",
        "circuit": circuit,
        "num_samples": num_samples,
        "engine": effective.engine,
        "warm": warm,
        "cold": cold,
        "warm_setup_seconds": warm_setup_s,
        "warm_speedup": speedup,
        "determinism": determinism,
        "service_stats": {
            "hits": stats["hits"],
            "misses": stats["misses"],
            "resident_bytes": stats["resident_bytes"],
        },
        "python": sys.version.split()[0],
    }


def write_bench_json(payload: Dict[str, object], path: str) -> None:
    """Write the bench payload as stable, sorted-key JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
