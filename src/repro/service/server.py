"""The SSTA daemon front end: submit analyses against resident artifacts.

:class:`SSTAService` wires the pieces together — artifact registry
(warm residency), scheduler (admission + worker fan-out), batcher
(shared sweeps), streams (incremental results) — behind a small
surface: ``start()``, ``submit() -> ResultStream``, ``warm_up()``,
``stats()``, ``close()``.

Seed policy: an explicit request seed is used verbatim (bitwise
reproducible across service restarts and identical to a serial
:class:`~repro.timing.ssta.MonteCarloSSTA` run).  ``seed=None`` requests
each receive an independent child of the service's root
:class:`numpy.random.SeedSequence` (built via
:func:`repro.utils.rng.spawn_seed_sequences`, the library's one
sanctioned unseeded-but-coupled stream construction), so even anonymous
requests are mutually independent and batch-composition-invariant.
"""

from __future__ import annotations

import threading
import time
from types import TracebackType
from typing import Dict, Optional, Tuple, Type

from repro.service.artifacts import ArtifactRegistry
from repro.service.batcher import ActiveRequest
from repro.service.faults import FaultInjector
from repro.service.request import AnalysisRequest, ServiceConfig
from repro.service.scheduler import Scheduler
from repro.service.stream import ResultStream
from repro.timing.ssta import MonteCarloSSTA
from repro.utils.rng import SeedLike, spawn_seed_sequences


class SSTAService:
    """A persistent, batching SSTA daemon with warm artifact residency.

    Usable as a context manager; ``start()`` is required before
    ``submit()``.  All submission-side state (request ids, the seed
    root) is lock-guarded, so any thread may submit.
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        *,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.config.validate()
        self.faults = faults if faults is not None else FaultInjector()
        self.registry = ArtifactRegistry(self.config, self.faults)
        self.scheduler = Scheduler(self.config, self.registry, self.faults)
        self._submit_lock = threading.Lock()
        self._next_id = 0
        self._seed_root = spawn_seed_sequences(self.config.root_seed, 1)[0]

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> "SSTAService":
        """Launch the worker pool; returns ``self`` for chaining."""
        self.scheduler.start()
        return self

    def close(self) -> None:
        """Stop serving: queued requests fail, workers join."""
        self.scheduler.stop()

    def __enter__(self) -> "SSTAService":
        """Context-manager entry: start the daemon."""
        return self.start()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        """Context-manager exit: shut the daemon down."""
        self.close()

    # ------------------------------------------------------------------
    # Requests.
    # ------------------------------------------------------------------
    def _assign(
        self, request: AnalysisRequest
    ) -> Tuple[str, SeedLike]:
        """Allocate a request id and resolve the effective seed."""
        with self._submit_lock:
            request_id = f"req-{self._next_id:06d}"
            self._next_id += 1
            seed: SeedLike = request.seed
            if seed is None:
                seed = self._seed_root.spawn(1)[0]
        return request_id, seed

    def submit(self, request: AnalysisRequest) -> ResultStream:
        """Validate and admit one request; returns its result stream.

        Raises ``ValueError`` on a malformed request and
        :class:`~repro.service.scheduler.QueueFullError` when admission
        is over capacity (backpressure — retry later).
        """
        if not self.scheduler.running:
            raise RuntimeError("service is not started")
        request.validate(self.config)
        request_id, seed = self._assign(request)
        stream = ResultStream(
            request,
            request_id,
            buffer_chunks=self.config.stream_buffer_chunks,
            put_timeout_s=self.config.stream_put_timeout_s,
        )
        now = time.monotonic()
        timeout = request.timeout_s
        active = ActiveRequest(
            request=request,
            stream=stream,
            seed=seed,
            submitted_at=now,
            deadline=(now + timeout) if timeout is not None else None,
        )
        self.scheduler.submit(active)
        return stream

    def warm_up(
        self,
        circuit: str,
        kernel: str = "gaussian",
        r: Optional[int] = None,
    ) -> MonteCarloSSTA:
        """Pre-build every artifact a (circuit, kernel, r) request needs.

        Returns the resident harness, mainly so tests and benches can
        run serial comparison flows against the very same objects.
        """
        return self.registry.warm_up(circuit, kernel, r)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Registry and queue counters for monitoring and bench output."""
        stats = self.registry.stats()
        stats["queue_depth"] = self.scheduler.queue_depth()
        stats["running"] = self.scheduler.running
        return stats
