"""Per-request result streams with bounded buffering and cancellation.

A :class:`ResultStream` is the consumer's handle on one submitted
request: chunks arrive incrementally (bounded buffer — backpressure), the
terminal :class:`~repro.service.request.ServiceResult` always arrives
even if the consumer never drains a single chunk, and ``cancel()`` models
a client disconnect: the producer notices at its next chunk boundary and
stops doing work for this request without disturbing its batch peers.

A consumer that stops draining without cancelling is handled the same
way: when the producer's buffered ``put`` times out, the stream is
auto-cancelled (reason recorded) so a dead client can never wedge a
worker.
"""

from __future__ import annotations

import queue
import threading
from typing import Iterator, Optional

from repro.service.request import (
    AnalysisRequest,
    ChunkResult,
    RequestStatus,
    ServiceResult,
)

#: Sentinel pushed after the terminal result so chunk iterators wake up.
_END = None


class ResultStream:
    """Consumer handle for one request's incremental results.

    Producer methods (``offer``/``finish``) are called by the service's
    worker threads; everything else is the client surface.  The chunk
    buffer holds at most ``buffer_chunks`` entries — a slower consumer
    applies backpressure to the worker up to ``put_timeout_s``, after
    which the stream is cancelled rather than blocking the batch.
    """

    def __init__(
        self,
        request: AnalysisRequest,
        request_id: str,
        *,
        buffer_chunks: int = 8,
        put_timeout_s: float = 30.0,
    ) -> None:
        self.request = request
        self.request_id = request_id
        self._chunks: "queue.Queue[Optional[ChunkResult]]" = queue.Queue(
            maxsize=max(1, int(buffer_chunks))
        )
        self._put_timeout_s = float(put_timeout_s)
        self._done = threading.Event()
        self._cancelled = threading.Event()
        self._lock = threading.Lock()
        self._result: Optional[ServiceResult] = None
        self._cancel_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Client surface.
    # ------------------------------------------------------------------
    @property
    def cancelled(self) -> bool:
        """Whether the consumer (or a timeout) cancelled this stream."""
        return self._cancelled.is_set()

    @property
    def cancel_reason(self) -> Optional[str]:
        """Why the stream was cancelled, when it was."""
        with self._lock:
            return self._cancel_reason

    def cancel(self, reason: str = "cancelled by client") -> None:
        """Disconnect: stop receiving chunks and release the producer.

        Safe to call at any time and idempotent.  The producer observes
        the flag at its next chunk boundary; buffered chunks are dropped
        so a blocked producer ``put`` unblocks immediately.
        """
        with self._lock:
            if self._cancel_reason is None:
                self._cancel_reason = str(reason)
        self._cancelled.set()
        self._drain()

    def chunks(self, timeout_s: Optional[float] = None) -> Iterator[ChunkResult]:
        """Yield chunks as they arrive until the stream terminates.

        ``timeout_s`` bounds the wait for *each* chunk; expiry raises
        ``TimeoutError``.  Iteration simply stops at end of stream (the
        terminal result is read separately via :meth:`result`).
        """
        while True:
            if self._cancelled.is_set():
                return
            try:
                item = self._chunks.get(timeout=timeout_s or 0.25)
            except queue.Empty:
                if timeout_s is not None:
                    raise TimeoutError(
                        f"no chunk within {timeout_s}s on {self.request_id}"
                    ) from None
                if self._done.is_set() and self._chunks.empty():
                    return
                continue
            if item is _END:
                return
            yield item

    def result(self, timeout_s: Optional[float] = None) -> ServiceResult:
        """Block for the terminal result (chunks need not be drained).

        Raises ``TimeoutError`` if the request has not terminated within
        ``timeout_s``.
        """
        if not self._done.wait(timeout=timeout_s):
            raise TimeoutError(
                f"request {self.request_id} not finished within {timeout_s}s"
            )
        with self._lock:
            result = self._result
        assert result is not None
        return result

    def done(self) -> bool:
        """Whether the terminal result is available."""
        return self._done.is_set()

    # ------------------------------------------------------------------
    # Producer surface (service-internal).
    # ------------------------------------------------------------------
    def offer(self, chunk: ChunkResult) -> bool:
        """Producer side: enqueue one chunk, honouring backpressure.

        Returns ``False`` when the stream is (or just became) cancelled —
        including the slow-consumer case where the bounded buffer stayed
        full for ``put_timeout_s`` — so the caller stops producing for
        this request without affecting its batch peers.
        """
        if self._cancelled.is_set():
            return False
        try:
            self._chunks.put(chunk, timeout=self._put_timeout_s)
        except queue.Full:
            self.cancel(
                reason=(
                    f"consumer failed to drain within {self._put_timeout_s}s"
                )
            )
            return False
        if self._cancelled.is_set():
            # cancel() may have drained between our check and the put,
            # stranding this chunk; drop it and report the disconnect.
            self._drain()
            return False
        return True

    def finish(self, result: ServiceResult) -> None:
        """Producer side: publish the terminal result (always succeeds).

        The result is stored out-of-band of the bounded chunk buffer, so
        termination is never subject to backpressure; an ``_END`` sentinel
        is offered best-effort to wake blocked chunk iterators.
        """
        with self._lock:
            if self._result is None:
                self._result = result
        self._done.set()
        try:
            self._chunks.put_nowait(_END)
        except queue.Full:
            # Iterators also poll `_done`, so a full buffer only delays
            # wake-up by one poll interval.
            pass

    def status(self) -> RequestStatus:
        """Current lifecycle status (terminal once :meth:`done`)."""
        with self._lock:
            result = self._result
        if result is not None:
            return result.status
        if self._cancelled.is_set():
            return RequestStatus.CANCELLED
        return RequestStatus.PENDING

    def _drain(self) -> None:
        """Drop buffered chunks so a blocked producer put unblocks."""
        while True:
            try:
                self._chunks.get_nowait()
            except queue.Empty:
                return
