"""CLI entry points: ``python -m repro.service {once,bench}``.

``once`` serves a single request cold (no residency) and prints a JSON
summary — it is both a smoke check and the subprocess the load bench
uses as its process-per-request baseline.  ``bench`` runs the full
warm/cold/determinism load test and writes ``BENCH_pr6.json``-style
output, with optional assertion flags the CI smoke job uses to gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.service.bench import run_service_bench, write_bench_json
from repro.service.client import run_cold_request
from repro.service.request import AnalysisRequest


def _once(args: argparse.Namespace) -> int:
    """Serve one cold request and print its summary JSON."""
    request = AnalysisRequest(
        circuit=args.circuit,
        kernel=args.kernel,
        r=args.r,
        num_samples=args.num_samples,
        seed=args.seed,
        chunk_size=args.chunk_size,
    )
    result = run_cold_request(request)
    if not result.ok or result.sta is None:
        print(
            json.dumps({"status": result.status.value, "error": result.error})
        )
        return 1
    print(
        json.dumps(
            {
                "status": result.status.value,
                "num_samples": result.num_samples,
                "mean_worst_delay_ps": result.sta.mean_worst_delay(),
                "std_worst_delay_ps": result.sta.std_worst_delay(),
            },
            sort_keys=True,
        )
    )
    return 0


def _bench(args: argparse.Namespace) -> int:
    """Run the load bench, write JSON, and apply CI assertion gates."""
    payload = run_service_bench(
        circuit=args.circuit,
        num_samples=args.num_samples,
        warm_requests=args.warm_requests,
        cold_requests=args.cold_requests,
        base_seed=args.seed,
    )
    write_bench_json(payload, args.output)
    print(json.dumps(payload, indent=2, sort_keys=True))
    failures: List[str] = []
    if args.assert_speedup is not None:
        speedup = float(str(payload["warm_speedup"]))
        if speedup < args.assert_speedup:
            failures.append(
                f"warm_speedup {speedup:.2f} < required "
                f"{args.assert_speedup:.2f}"
            )
    if args.assert_p99_ms is not None:
        warm = payload["warm"]
        assert isinstance(warm, dict)
        p99 = float(warm["p99_ms"])
        if p99 > args.assert_p99_ms:
            failures.append(
                f"warm p99 {p99:.1f}ms > allowed {args.assert_p99_ms:.1f}ms"
            )
    if args.assert_determinism:
        determinism = payload["determinism"]
        assert isinstance(determinism, dict)
        if not determinism["batched_equals_serial"]:
            failures.append(
                "determinism check failed: batched != serial "
                f"(max |diff| = {determinism['max_abs_diff_ps']})"
            )
    for failure in failures:
        print(f"BENCH ASSERTION FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.service`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="SSTA service: cold single-shot runs and the load bench.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    once = sub.add_parser("once", help="serve one request cold and exit")
    once.add_argument("--circuit", required=True)
    once.add_argument("--kernel", default="gaussian")
    once.add_argument("--r", type=int, default=None)
    once.add_argument("--num-samples", type=int, default=512)
    once.add_argument("--seed", type=int, default=0)
    once.add_argument("--chunk-size", type=int, default=None)
    once.set_defaults(func=_once)

    bench = sub.add_parser("bench", help="run the warm/cold load bench")
    bench.add_argument("--circuit", default="c880")
    bench.add_argument("--num-samples", type=int, default=512)
    bench.add_argument("--warm-requests", type=int, default=16)
    bench.add_argument("--cold-requests", type=int, default=3)
    bench.add_argument("--seed", type=int, default=20080310)
    bench.add_argument("--output", default="BENCH_pr6.json")
    bench.add_argument("--assert-speedup", type=float, default=None)
    bench.add_argument("--assert-p99-ms", type=float, default=None)
    bench.add_argument("--assert-determinism", action="store_true")
    bench.set_defaults(func=_bench)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI dispatch; returns the process exit code."""
    args = build_parser().parse_args(argv)
    result = args.func(args)
    return int(result)


if __name__ == "__main__":
    sys.exit(main())
