"""Request/response schema of the SSTA service.

A request names its artifacts — ``circuit × kernel × rank × N × seed`` —
rather than carrying them, so the daemon can keep the expensive parts
(placements, KLE eigensolves, compiled timing programs) resident and
share them across requests.  :class:`ServiceConfig` fixes the artifact
universe (which kernels exist, the die, the mesh, the KLE resolution);
:class:`AnalysisRequest` selects from it.

Determinism contract: a request's result is a pure function of the
request tuple.  It does not depend on which other requests it was
batched with, on queue order, or on worker count — the batcher generates
each request's samples from its own seed stream exactly as a serial
:class:`~repro.timing.ssta.MonteCarloSSTA` run would, and the shared STA
sweep is bitwise row-independent.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple, Union

import numpy as np

from repro.core.galerkin import KLE_METHODS
from repro.core.kernels import (
    CovarianceKernel,
    GaussianKernel,
    SeparableExponentialKernel,
)
from repro.timing.sta import ENGINE_MODES, STAResult
from repro.timing.ssta import StreamingSTAResult

#: Sampling flows a request may select: ``"kle"`` is the paper's
#: Algorithm 2 (reduced-dimensionality), ``"reference"`` Algorithm 1
#: (full-covariance Cholesky).
FLOW_MODES = ("kle", "reference")


def default_kernels() -> Dict[str, CovarianceKernel]:
    """The kernels a default-configured service keeps resident.

    ``"gaussian"`` is the experiment-style Gaussian kernel; ``"separable"``
    the separable-exponential alternative from the paper's kernel family.
    """
    return {
        "gaussian": GaussianKernel(c=2.7),
        "separable": SeparableExponentialKernel(c=1.0),
    }


@dataclass(frozen=True)
class ServiceConfig:
    """Static configuration of one :class:`~repro.service.SSTAService`.

    The config fixes the artifact universe (kernels by name, die bounds,
    mesh resolution, KLE eigenpair count) plus the operational envelope:
    worker count, admission-queue capacity, batch width, and per-stream
    buffering.  ``cache_directory`` enables the checksummed on-disk
    artifact cache for placements and KLE eigensolves (``None`` keeps the
    service fully in-memory/hermetic).  ``kernel_threads`` pins the
    native STA kernel's sample-lane worker count for every resident
    engine (``None`` defers to ``REPRO_NATIVE_THREADS`` per run); it is
    multiplicative with ``num_workers``, so a saturated service should
    keep ``num_workers * kernel_threads`` near the core count.
    ``kle_method`` selects the eigensolver behind the resident KLE
    artifacts (any of :data:`repro.core.galerkin.KLE_METHODS`;
    ``"randomized"`` is the matrix-free sketched path for fine service
    meshes, seeded by ``kle_solver_seed`` so residency stays a pure
    function of the config).
    """

    kernels: Mapping[str, CovarianceKernel] = field(
        default_factory=default_kernels
    )
    die_bounds: Tuple[float, float, float, float] = (-1.0, -1.0, 1.0, 1.0)
    mesh_divisions: Tuple[int, int] = (12, 12)
    num_eigenpairs: int = 60
    placement_seed: int = 2008
    engine: str = "compiled"
    num_workers: int = 2
    max_queue: int = 64
    max_batch_requests: int = 8
    stream_buffer_chunks: int = 8
    stream_put_timeout_s: float = 30.0
    root_seed: Optional[int] = None
    cache_directory: Optional[str] = None
    kernel_threads: Optional[int] = None
    kle_method: str = "dense"
    kle_solver_seed: int = 0

    def validate(self) -> None:
        """Raise ``ValueError`` on an internally inconsistent config."""
        if self.engine not in ENGINE_MODES:
            raise ValueError(
                f"engine must be one of {ENGINE_MODES}, got {self.engine!r}"
            )
        if not self.kernels:
            raise ValueError("config must define at least one kernel")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.max_batch_requests < 1:
            raise ValueError("max_batch_requests must be >= 1")
        if self.stream_buffer_chunks < 1:
            raise ValueError("stream_buffer_chunks must be >= 1")
        if self.kernel_threads is not None and self.kernel_threads < 1:
            raise ValueError("kernel_threads must be >= 1 when given")
        if self.kle_method not in KLE_METHODS:
            raise ValueError(
                f"kle_method must be one of {KLE_METHODS}, "
                f"got {self.kle_method!r}"
            )
        if self.kle_solver_seed < 0:
            raise ValueError("kle_solver_seed must be >= 0")


@dataclass(frozen=True)
class AnalysisRequest:
    """One analysis request: ``circuit × kernel × rank × N × seed``.

    ``seed=None`` asks the service to assign an independent per-request
    :class:`numpy.random.SeedSequence` child from its root (the sanctioned
    unseeded-but-reproducible-within-a-run form); any explicit seed makes
    the result bitwise-reproducible across runs and identical to a serial
    :class:`~repro.timing.ssta.MonteCarloSSTA` run with the same
    parameters.  ``chunk_size`` selects the streamed path exactly as in
    ``MonteCarloSSTA`` (``None`` or ``N <= chunk_size`` is the one-shot
    exact path).  ``priority`` orders admission (higher first);
    ``timeout_s`` bounds queue wait.  ``include_samples`` attaches each
    chunk's per-end-point arrival arrays to the stream (off by default —
    worst-delay vectors are always streamed).
    """

    circuit: str
    kernel: str = "gaussian"
    r: Optional[int] = None
    num_samples: int = 1000
    seed: Union[None, int, np.random.SeedSequence] = None
    flow: str = "kle"
    chunk_size: Optional[int] = None
    quantiles: Tuple[float, ...] = ()
    include_samples: bool = False
    priority: int = 0
    timeout_s: Optional[float] = None

    def validate(self, config: ServiceConfig) -> None:
        """Raise ``ValueError`` if the request is malformed for ``config``."""
        if not self.circuit:
            raise ValueError("request must name a circuit")
        if self.kernel not in config.kernels:
            raise ValueError(
                f"unknown kernel {self.kernel!r}; configured: "
                f"{sorted(config.kernels)}"
            )
        if self.flow not in FLOW_MODES:
            raise ValueError(
                f"flow must be one of {FLOW_MODES}, got {self.flow!r}"
            )
        if self.num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        if self.r is not None and self.r < 1:
            raise ValueError("r must be >= 1 when given")
        if self.timeout_s is not None and self.timeout_s <= 0.0:
            raise ValueError("timeout_s must be positive when given")
        for q in self.quantiles:
            if not 0.0 < q < 1.0:
                raise ValueError(f"quantiles must lie in (0, 1), got {q}")

    def batch_key(self) -> Tuple[str, str, Optional[int], str]:
        """Compatibility class for shared-sweep batching.

        Requests with equal keys share one resident harness (same circuit,
        kernel, truncation order and flow) and may be fused into a single
        STA sweep; ``N``, ``seed`` and chunking stay per-request.
        """
        return (self.circuit, self.kernel, self.r, self.flow)


class RequestStatus(enum.Enum):
    """Lifecycle of a submitted request."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    TIMED_OUT = "timed_out"

    def is_terminal(self) -> bool:
        """Whether this status ends the request's stream."""
        return self not in (RequestStatus.PENDING, RequestStatus.RUNNING)


@dataclass(frozen=True)
class ChunkResult:
    """One streamed chunk of a request's sweep.

    ``worst_delay`` is the chunk's per-sample chip-level delay vector
    (always present — it is what determinism tests compare bitwise);
    ``end_arrivals`` carries the per-end-point sample arrays only when
    the request set ``include_samples``.
    """

    request_id: str
    index: int
    start: int
    num_samples: int
    worst_delay: np.ndarray
    end_arrivals: Optional[Dict[str, np.ndarray]] = None


@dataclass(frozen=True)
class ServiceResult:
    """Terminal response of one request.

    ``sta`` duck-types the :class:`~repro.timing.sta.STAResult` summary
    surface: an exact ``STAResult`` for one-shot requests, a
    :class:`~repro.timing.ssta.StreamingSTAResult` for chunked ones —
    matching what a serial ``MonteCarloSSTA`` run would have returned.
    ``batch_size`` reports how many requests shared the sweep (purely
    informational; it never affects the numbers).
    """

    request_id: str
    status: RequestStatus
    sta: Optional[Union[STAResult, StreamingSTAResult]] = None
    error: Optional[str] = None
    num_samples: int = 0
    sample_seconds: float = 0.0
    timer_seconds: float = 0.0
    wait_seconds: float = 0.0
    batch_size: int = 0

    @property
    def ok(self) -> bool:
        """Whether the request completed with a full result."""
        return self.status is RequestStatus.DONE
