"""repro — correlation-kernel KLE for intra-die spatial correlation.

A complete reproduction of *"Exploiting Correlation Kernels for Efficient
Handling of Intra-Die Spatial Correlation, with Application to Statistical
Timing"* (Singhee, Singhal, Rutenbar — DATE 2008), including every
substrate the paper depends on:

- :mod:`repro.core`   — kernels, kernel fitting, the Galerkin/KLE solver
  (the paper's contribution), analytic baselines, validation;
- :mod:`repro.mesh`   — Delaunay + Ruppert-style quality meshing of the die;
- :mod:`repro.field`  — random-field models, grid/PCA baseline, the
  Algorithm 1 / Algorithm 2 sample generators;
- :mod:`repro.circuit`— netlists, .bench I/O, synthetic ISCAS-class
  benchmark generation;
- :mod:`repro.place`  — FM mincut + recursive-bisection placement;
- :mod:`repro.timing` — Elmore/PERI interconnect, rank-one-quadratic gate
  models, the vectorized MC-SSTA engine;
- :mod:`repro.experiments` — drivers regenerating every figure and table.

Quickstart::

    from repro.core import paper_experiment_kernel, solve_kle
    from repro.mesh import paper_mesh

    kernel = paper_experiment_kernel()
    kle = solve_kle(kernel, paper_mesh(), num_eigenpairs=200)
    r = kle.select_truncation()           # the paper's 1 % rule -> ~25
    fields = kle.sample_triangle_values(1000, r=r, seed=0)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
