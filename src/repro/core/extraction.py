"""Kernel extraction from (simulated) silicon measurements.

The paper's flow starts from a valid covariance kernel "extracted from
process data (e.g., as per [1])" — Xiong et al.'s robust extraction.  This
module closes that loop for users who have measurements instead of a
kernel:

1. bin sample covariances of repeated die measurements by device
   separation distance (the empirical *correlogram*),
2. fit a chosen valid kernel family (Gaussian, exponential, Matérn eq. (6))
   to the binned profile by weighted least squares,
3. report goodness-of-fit and validity diagnostics.

The extracted kernel feeds straight into :func:`repro.core.solve_kle`.
Since real wafer data is unavailable here, tests and examples drive this
with synthetic measurements sampled from a known ground-truth kernel and
check that extraction recovers it (the standard self-consistency check of
the extraction literature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np
import scipy.optimize

from repro.core.kernel_fit import KernelFitResult, _fit_profile
from repro.core.kernels import (
    CovarianceKernel,
    ExponentialKernel,
    GaussianKernel,
    IsotropicKernel,
    MaternBesselKernel,
    SphericalKernel,
)


@dataclass(frozen=True)
class Correlogram:
    """Distance-binned empirical correlation of die measurements.

    Attributes
    ----------
    bin_centers:
        Separation distance at each bin centre.
    correlations:
        Mean sample correlation of device pairs in each bin (NaN for empty
        bins).
    pair_counts:
        Number of device pairs per bin — the natural fit weights.
    """

    bin_centers: np.ndarray
    correlations: np.ndarray
    pair_counts: np.ndarray

    def valid_mask(self) -> np.ndarray:
        """Boolean mask of bins that actually contain device pairs."""
        return self.pair_counts > 0


def empirical_correlogram(
    points: np.ndarray,
    samples: np.ndarray,
    *,
    num_bins: int = 25,
    max_distance: Optional[float] = None,
) -> Correlogram:
    """Compute the distance-binned correlation of measured outcomes.

    Parameters
    ----------
    points:
        ``(np, 2)`` device locations on the die.
    samples:
        ``(N, np)`` measured (normalized) parameter values — one row per
        die.  N of a few dozen dies already gives a usable correlogram.
    num_bins / max_distance:
        Binning of pair separations (default max: the die diameter seen in
        the data).
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or samples.shape[1] != len(points):
        raise ValueError(
            f"samples must be (N, {len(points)}), got {samples.shape}"
        )
    if samples.shape[0] < 3:
        raise ValueError("need at least 3 measured dies to correlate")

    centered = samples - samples.mean(axis=0, keepdims=True)
    stds = centered.std(axis=0)
    # Exact-zero guard on a computed std: a constant column yields a
    # bitwise 0.0 and must not be divided by.
    stds[stds == 0.0] = 1.0  # repro-lint: disable=REPRO-FLOAT001
    normalized = centered / stds
    corr = (normalized.T @ normalized) / samples.shape[0]

    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt(np.sum(diff * diff, axis=-1))
    iu = np.triu_indices(len(points), k=1)
    pair_dist = dist[iu]
    pair_corr = corr[iu]
    if max_distance is None:
        max_distance = float(pair_dist.max())
    edges = np.linspace(0.0, max_distance + 1e-12, num_bins + 1)
    centers = 0.5 * (edges[:-1] + edges[1:])
    correlations = np.full(num_bins, np.nan)
    counts = np.zeros(num_bins, dtype=np.int64)
    indices = np.clip(
        np.searchsorted(edges, pair_dist, side="right") - 1, 0, num_bins - 1
    )
    in_range = pair_dist <= max_distance
    for b in range(num_bins):
        mask = in_range & (indices == b)
        counts[b] = int(mask.sum())
        if counts[b]:
            correlations[b] = float(pair_corr[mask].mean())
    return Correlogram(
        bin_centers=centers, correlations=correlations, pair_counts=counts
    )


def _fit_matern_to_profile(
    distances: np.ndarray,
    target: np.ndarray,
    weights: np.ndarray,
) -> KernelFitResult:
    """2-parameter weighted fit of the Matérn/Bessel family (eq. (6))."""
    sqrt_w = np.sqrt(weights)

    def residuals(params: np.ndarray) -> np.ndarray:
        b = float(np.exp(params[0]))
        s = 1.0 + float(np.exp(params[1]))
        kernel = MaternBesselKernel(b=b, s=s)
        return sqrt_w * (kernel.profile(distances) - target)

    solution = scipy.optimize.least_squares(
        residuals, x0=[0.0, 0.0], max_nfev=400
    )
    b = float(np.exp(solution.x[0]))
    s = 1.0 + float(np.exp(solution.x[1]))
    kernel = MaternBesselKernel(b=b, s=s)
    err = kernel.profile(distances) - target
    rmse = float(np.sqrt(np.sum(weights * err * err) / np.sum(weights)))
    return KernelFitResult(
        kernel=kernel,
        parameter=b,
        rmse=rmse,
        max_error=float(np.max(np.abs(err))),
    )


_ONE_PARAM_FAMILIES: Dict[str, Callable[[float], IsotropicKernel]] = {
    "gaussian": GaussianKernel,
    "exponential": ExponentialKernel,
    "spherical": SphericalKernel,
}


@dataclass(frozen=True)
class ExtractionResult:
    """Outcome of a kernel extraction.

    Attributes
    ----------
    kernel: the extracted (valid) kernel.
    family: family name chosen/fitted.
    fit: per-family fit diagnostics.
    correlogram: the empirical data the fit was made against.
    all_fits: fit results for every candidate family (model selection).
    """

    kernel: CovarianceKernel
    family: str
    fit: KernelFitResult
    correlogram: Correlogram
    all_fits: Dict[str, KernelFitResult]


def extract_kernel(
    points: np.ndarray,
    samples: np.ndarray,
    *,
    families: Sequence[str] = ("gaussian", "exponential", "matern"),
    num_bins: int = 25,
    max_distance: Optional[float] = None,
) -> ExtractionResult:
    """Extract a valid covariance kernel from die measurements.

    Fits every requested family to the empirical correlogram (weighted by
    pair counts) and returns the best by weighted RMSE — the practical
    equivalent of [1]'s robust extraction for this library.

    Families: ``"gaussian"``, ``"exponential"``, ``"spherical"``,
    ``"matern"`` (the 2-parameter eq. (6) family).
    """
    correlogram = empirical_correlogram(
        points, samples, num_bins=num_bins, max_distance=max_distance
    )
    mask = correlogram.valid_mask() & ~np.isnan(correlogram.correlations)
    if mask.sum() < 3:
        raise ValueError("too few populated correlogram bins to fit a kernel")
    distances = correlogram.bin_centers[mask]
    target = correlogram.correlations[mask]
    weights = correlogram.pair_counts[mask].astype(float)

    fits: Dict[str, KernelFitResult] = {}
    for family in families:
        if family in _ONE_PARAM_FAMILIES:
            initial = 1.0 / max(float(distances.mean()), 1e-6)
            fits[family] = _fit_profile(
                _ONE_PARAM_FAMILIES[family], distances, target, weights,
                initial,
            )
        elif family == "matern":
            fits[family] = _fit_matern_to_profile(distances, target, weights)
        else:
            raise ValueError(
                f"unknown kernel family {family!r}; choose from "
                f"{sorted(_ONE_PARAM_FAMILIES) + ['matern']}"
            )
    best_family = min(fits, key=lambda f: fits[f].rmse)
    return ExtractionResult(
        kernel=fits[best_family].kernel,
        family=best_family,
        fit=fits[best_family],
        correlogram=correlogram,
        all_fits=fits,
    )


@dataclass(frozen=True)
class AnisotropyReport:
    """Directional correlogram comparison.

    ``ratio`` is the fitted decay-rate ratio between the slowest- and
    fastest-decaying directions (1.0 = isotropic); ``angle`` the
    orientation (radians, in [0, π)) of the *slowest* decay — the major
    correlation axis.
    """

    ratio: float
    angle: float
    directional_c: Dict[float, float]

    @property
    def is_isotropic(self) -> bool:
        """Heuristic verdict: decay rates within 25 % across directions."""
        return self.ratio < 1.25


def detect_anisotropy(
    points: np.ndarray,
    samples: np.ndarray,
    *,
    num_sectors: int = 4,
    num_bins: int = 12,
) -> AnisotropyReport:
    """Check measured data for direction-dependent correlation decay.

    Bins device pairs by separation *direction* into ``num_sectors``
    half-plane sectors, fits a Gaussian decay rate per sector, and compares
    the extremes.  Isotropic data (all the paper's kernels) yields a ratio
    near 1; fields generated from :class:`~repro.core.kernels.
    AnisotropicGaussianKernel` are flagged with the correct major axis.
    """
    points = np.asarray(points, dtype=float).reshape(-1, 2)
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or samples.shape[1] != len(points):
        raise ValueError(
            f"samples must be (N, {len(points)}), got {samples.shape}"
        )
    if num_sectors < 2:
        raise ValueError("need at least 2 direction sectors")

    centered = samples - samples.mean(axis=0, keepdims=True)
    stds = centered.std(axis=0)
    # Exact-zero guard on a computed std: a constant column yields a
    # bitwise 0.0 and must not be divided by.
    stds[stds == 0.0] = 1.0  # repro-lint: disable=REPRO-FLOAT001
    normalized = centered / stds
    corr = (normalized.T @ normalized) / samples.shape[0]

    diff = points[:, None, :] - points[None, :, :]
    iu = np.triu_indices(len(points), k=1)
    dx = diff[..., 0][iu]
    dy = diff[..., 1][iu]
    dist = np.hypot(dx, dy)
    pair_corr = corr[iu]
    # Directions folded into [0, π): correlation is symmetric under flip.
    theta = np.mod(np.arctan2(dy, dx), np.pi)
    sector = np.minimum(
        (theta / (np.pi / num_sectors)).astype(int), num_sectors - 1
    )

    directional_c: Dict[float, float] = {}
    for s in range(num_sectors):
        mask = sector == s
        if mask.sum() < 3 * num_bins:
            continue
        d = dist[mask]
        c_vals = pair_corr[mask]
        edges = np.linspace(0.0, float(d.max()) + 1e-12, num_bins + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        binned = np.full(num_bins, np.nan)
        weights = np.zeros(num_bins)
        indices = np.clip(
            np.searchsorted(edges, d, side="right") - 1, 0, num_bins - 1
        )
        for b in range(num_bins):
            in_bin = indices == b
            weights[b] = float(in_bin.sum())
            if weights[b]:
                binned[b] = float(c_vals[in_bin].mean())
        good = weights > 0
        if good.sum() < 3:
            continue
        fit = _fit_profile(
            GaussianKernel, centers[good], binned[good], weights[good],
            1.0 / max(float(d.mean()), 1e-6),
        )
        angle_center = (s + 0.5) * np.pi / num_sectors
        directional_c[float(angle_center)] = fit.parameter
    if len(directional_c) < 2:
        raise ValueError("too few populated direction sectors")
    slow_angle = min(directional_c, key=directional_c.get)  # smallest c
    fast_angle = max(directional_c, key=directional_c.get)
    ratio = directional_c[fast_angle] / directional_c[slow_angle]
    return AnisotropyReport(
        ratio=float(ratio), angle=float(slow_angle),
        directional_c=directional_c,
    )


def measurement_noise_floor(correlogram: Correlogram, num_dies: int) -> float:
    """Std of a binned correlation estimate from ``num_dies`` measurements.

    Sample correlations from N dies have std ≈ 1/sqrt(N) per pair; bin
    averaging over P pairs reduces it by at most sqrt(P) (pairs within a
    bin are themselves correlated, so this is a lower bound — useful to
    decide whether a fitted-vs-empirical residual is meaningful).
    """
    if num_dies < 2:
        raise ValueError("need at least 2 dies")
    mean_pairs = float(np.mean(correlogram.pair_counts[correlogram.valid_mask()]))
    return 1.0 / np.sqrt(num_dies) / np.sqrt(max(mean_pairs, 1.0))
