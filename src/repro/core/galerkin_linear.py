"""Higher-order Galerkin: piecewise-*linear* basis functions.

The paper (§4.2) notes that "higher order piecewise polynomials can also be
used as the basis set, along with high order numerical integration … there
are no restrictions on their use".  This module implements the first step
of that ladder: continuous piecewise-linear ("hat") basis functions on the
mesh vertices.

Differences from the piecewise-constant flow of :mod:`repro.core.galerkin`:

- one basis function per *vertex* (not per triangle),
- the Gram matrix ``Φ`` (eq. 12) is the classical FEM mass matrix — sparse
  and non-diagonal, so eq. (13) stays a genuine generalized eigenproblem,
- eigenfunctions are continuous and evaluated by barycentric interpolation,
  so the reconstructed field is continuous across triangle edges.

The payoff (demonstrated in ``benchmarks/test_bench_ablation_basis.py``) is
a higher convergence order in the mesh size ``h`` than the linear rate the
paper proves for the constant basis (Theorem 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np
import scipy.linalg

from repro.core.kernels import CovarianceKernel
from repro.core.kle import select_truncation
from repro.core.quadrature import THREE_POINT_RULE, TriangleRule, get_rule
from repro.mesh.locate import TriangleLocator
from repro.mesh.mesh import TriangleMesh
from repro.utils.rng import SeedLike, as_generator


def linear_mass_matrix(mesh: TriangleMesh) -> np.ndarray:
    """The FEM mass matrix ``Φ_ik = ∫ φ_i φ_k`` for hat functions.

    Per-triangle contribution is the classical ``(a_t / 12) [[2,1,1],
    [1,2,1],[1,1,2]]``.  Returned dense (meshes here are small); it is
    symmetric positive definite.
    """
    nv = mesh.num_vertices
    mass = np.zeros((nv, nv))
    for t in range(mesh.num_triangles):
        i, j, k = (int(v) for v in mesh.triangles[t])
        a = mesh.areas[t] / 12.0
        for u in (i, j, k):
            mass[u, u] += 2.0 * a
        mass[i, j] += a
        mass[j, i] += a
        mass[j, k] += a
        mass[k, j] += a
        mass[i, k] += a
        mass[k, i] += a
    return mass


def _vertex_quadrature_operator(
    mesh: TriangleMesh, rule: TriangleRule
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Quadrature nodes plus the (nq, nv) interpolation operator ``A``.

    ``A[q, v]`` is the hat function of vertex ``v`` evaluated at quadrature
    node ``q`` (its barycentric coordinate), and ``w`` the area-scaled
    weights, so ``∫ f φ_v ≈ Σ_q w_q f(x_q) A[q, v]``.
    """
    points, weights = rule.points_on_mesh(mesh)
    nq = len(points)
    operator = np.zeros((nq, mesh.num_vertices))
    q = rule.num_points
    for t in range(mesh.num_triangles):
        verts = mesh.triangles[t]
        for s in range(q):
            row = t * q + s
            for corner in range(3):
                operator[row, int(verts[corner])] += rule.barycentric[s, corner]
    return points, weights, operator


def assemble_linear_galerkin_matrix(
    kernel: CovarianceKernel,
    mesh: TriangleMesh,
    *,
    rule: Union[str, TriangleRule] = THREE_POINT_RULE,
    max_block_bytes: int = 256 * 1024 * 1024,
) -> np.ndarray:
    """``K_ik = ∬ K(x, y) φ_i(y) φ_k(x) dx dy`` for the hat basis.

    Computed as ``(WA)ᵀ K(x_q, x_q') (WA)`` with the kernel evaluation
    blocked by rows to bound peak memory.
    """
    if isinstance(rule, str):
        rule = get_rule(rule)
    if rule.degree < 2:
        raise ValueError(
            "piecewise-linear basis needs a rule of degree >= 2 "
            "(products of two linear hats are quadratic); use three_point "
            "or seven_point"
        )
    points, weights, operator = _vertex_quadrature_operator(mesh, rule)
    weighted = operator * weights[:, None]  # (nq, nv)
    total = len(points)
    nv = mesh.num_vertices
    result = np.zeros((nv, nv))
    rows_per_block = max(1, int(max_block_bytes / (8 * max(total, 1))))
    for start in range(0, total, rows_per_block):
        stop = min(start + rows_per_block, total)
        block = kernel.matrix(points[start:stop], points)  # (rows, nq)
        result += weighted[start:stop].T @ block @ weighted
    return 0.5 * (result + result.T)


@dataclass(frozen=True)
class LinearKLEResult:
    """KLE eigenpairs in the continuous piecewise-linear basis.

    ``d_vectors[v, j]`` is eigenfunction j's value at mesh vertex ``v``;
    evaluation anywhere on the die is barycentric interpolation within the
    containing triangle.
    """

    eigenvalues: np.ndarray
    d_vectors: np.ndarray  # (nv, m), mass-matrix orthonormal
    mesh: TriangleMesh
    kernel: Optional[CovarianceKernel] = None
    _locator_cache: list = field(default_factory=list, repr=False, compare=False)

    @property
    def num_eigenpairs(self) -> int:
        return self.eigenvalues.shape[0]

    @property
    def locator(self) -> TriangleLocator:
        if not self._locator_cache:
            self._locator_cache.append(TriangleLocator(self.mesh))
        return self._locator_cache[0]

    def select_truncation(self, *, fraction: float = 0.01) -> int:
        """The paper's 1 % criterion over the vertex-basis spectrum."""
        return select_truncation(
            self.eigenvalues, self.mesh.num_vertices, fraction=fraction
        )

    def _barycentric_operator(self, points: np.ndarray) -> np.ndarray:
        """(np, nv) interpolation matrix for arbitrary die points."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        triangles = self.locator.locate_many(points)
        operator = np.zeros((len(points), self.mesh.num_vertices))
        verts = self.mesh.vertices
        for row, (point, t) in enumerate(zip(points, triangles)):
            i, j, k = (int(v) for v in self.mesh.triangles[t])
            a, b, c = verts[i], verts[j], verts[k]
            det = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
            l2 = (
                (point[0] - a[0]) * (c[1] - a[1])
                - (point[1] - a[1]) * (c[0] - a[0])
            ) / det
            l3 = (
                (b[0] - a[0]) * (point[1] - a[1])
                - (b[1] - a[1]) * (point[0] - a[0])
            ) / det
            operator[row, i] = 1.0 - l2 - l3
            operator[row, j] = l2
            operator[row, k] = l3
        return operator

    def eigenfunction_at(self, j: int, points: np.ndarray) -> np.ndarray:
        """Continuous evaluation of eigenfunction ``j`` at die locations."""
        if not 0 <= j < self.num_eigenpairs:
            raise ValueError(f"j must be in [0, {self.num_eigenpairs}), got {j}")
        return self._barycentric_operator(points) @ self.d_vectors[:, j]

    def reconstruct_kernel(
        self,
        x_points: np.ndarray,
        y_points: np.ndarray,
        *,
        r: Optional[int] = None,
    ) -> np.ndarray:
        """Rank-r Mercer reconstruction with continuous eigenfunctions."""
        if r is None:
            r = self.num_eigenpairs
        if not 1 <= r <= self.num_eigenpairs:
            raise ValueError(f"r must be in [1, {self.num_eigenpairs}], got {r}")
        fx = self._barycentric_operator(
            np.asarray(x_points, float).reshape(-1, 2)
        ) @ self.d_vectors[:, :r]
        fy = self._barycentric_operator(
            np.asarray(y_points, float).reshape(-1, 2)
        ) @ self.d_vectors[:, :r]
        lam = np.clip(self.eigenvalues[:r], 0.0, None)
        return (fx * lam[None, :]) @ fy.T

    def sample_at_points(
        self,
        points: np.ndarray,
        num_samples: int,
        *,
        r: Optional[int] = None,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Field samples at arbitrary points: *continuous* across the die
        (no per-triangle plateaus, unlike the constant basis)."""
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        if r is None:
            r = self.num_eigenpairs
        if not 1 <= r <= self.num_eigenpairs:
            raise ValueError(f"r must be in [1, {self.num_eigenpairs}], got {r}")
        basis = self._barycentric_operator(
            np.asarray(points, float).reshape(-1, 2)
        ) @ (
            self.d_vectors[:, :r]
            * np.sqrt(np.clip(self.eigenvalues[:r], 0.0, None))[None, :]
        )  # (np, r)
        rng = as_generator(seed)
        xi = rng.standard_normal((num_samples, r))
        return xi @ basis.T


def solve_kle_linear(
    kernel: CovarianceKernel,
    mesh: TriangleMesh,
    *,
    num_eigenpairs: Optional[int] = None,
    rule: Union[str, TriangleRule] = THREE_POINT_RULE,
) -> LinearKLEResult:
    """Solve the KLE with the piecewise-linear basis (full GEP).

    Mirrors :func:`repro.core.galerkin.solve_kle`; the Gram matrix is the
    (non-diagonal) mass matrix, so this calls the dense generalized
    symmetric eigensolver.
    """
    k_matrix = assemble_linear_galerkin_matrix(kernel, mesh, rule=rule)
    mass = linear_mass_matrix(mesh)
    eigvals, eigvecs = scipy.linalg.eigh(k_matrix, mass)
    order = np.argsort(eigvals)[::-1]
    eigvals = eigvals[order]
    eigvecs = eigvecs[:, order]
    if num_eigenpairs is not None:
        if num_eigenpairs < 1:
            raise ValueError(f"num_eigenpairs must be >= 1, got {num_eigenpairs}")
        num_eigenpairs = min(num_eigenpairs, eigvals.shape[0])
        eigvals = eigvals[:num_eigenpairs]
        eigvecs = eigvecs[:, :num_eigenpairs]
    return LinearKLEResult(
        eigenvalues=eigvals, d_vectors=eigvecs, mesh=mesh, kernel=kernel
    )
