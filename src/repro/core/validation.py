"""Validation utilities: kernel reconstruction error and model validity.

Implements the accuracy probes the paper reports:

- Fig. 3(b): the error field ``K(x0, y) - K̂(x0, y)`` of the rank-25
  reconstruction over the whole die (max |error| ≈ 0.016 in the paper).
- The non-negative-definiteness probe of eq. (2) on finite point sets,
  which exposes invalid models (e.g. the 2-D linear cone kernel).
- Mercer-sum sanity: ``Σ λ_j → ∫ K(x,x) dx = |D|`` for normalized fields.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.kernels import CovarianceKernel
from repro.core.kle import KLEResult
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class ReconstructionReport:
    """Error summary of a rank-r kernel reconstruction (Fig. 3b).

    Attributes
    ----------
    max_abs_error: maximum |K - K̂| over the evaluation grid.
    rms_error: root-mean-square error over the grid.
    r: truncation order used.
    grid: the ``(ng, 2)`` evaluation points.
    errors: the per-point error field ``K(x0, ·) - K̂(x0, ·)``.
    """

    max_abs_error: float
    rms_error: float
    r: int
    grid: np.ndarray
    errors: np.ndarray


def die_grid(
    mesh_bounds: Tuple[float, float, float, float],
    resolution: int,
    *,
    inset: float = 1e-9,
) -> np.ndarray:
    """Uniform ``resolution × resolution`` evaluation grid over the die.

    ``inset`` pulls the outermost points inside the boundary so point
    location never lands exactly on the die border.
    """
    xmin, ymin, xmax, ymax = mesh_bounds
    pad_x = inset * (xmax - xmin)
    pad_y = inset * (ymax - ymin)
    xs = np.linspace(xmin + pad_x, xmax - pad_x, resolution)
    ys = np.linspace(ymin + pad_y, ymax - pad_y, resolution)
    grid_x, grid_y = np.meshgrid(xs, ys, indexing="xy")
    return np.column_stack([grid_x.ravel(), grid_y.ravel()])


def kernel_reconstruction_report(
    kle: KLEResult,
    *,
    r: Optional[int] = None,
    reference_point: Tuple[float, float] = (0.0, 0.0),
    resolution: int = 41,
    evaluation: str = "centroids",
) -> ReconstructionReport:
    """Reproduce the Fig. 3(b) experiment for any solved KLE.

    Fixes ``x0`` near ``reference_point`` (the paper uses the die centre)
    and evaluates ``K(x0, y) - Σ_{j<r} λ_j f_j(x0) f_j(y)`` over the die.

    ``evaluation`` selects the y-sample set:

    - ``"centroids"`` (default) evaluates at the triangle centroids with
      ``x0`` snapped to the centroid of its containing triangle.  This
      measures the error of the expansion itself at the resolution the
      piecewise-constant basis can represent — the paper's Fig. 3(b)
      regime (max |error| ≈ 0.016 at r = 25).
    - ``"grid"`` evaluates at a uniform ``resolution²`` point grid with the
      raw ``x0``.  This additionally includes the O(h) within-triangle
      interpolation error of the piecewise-constant representation, so it
      is larger; it is the error an application sees when reading the
      reconstructed field at arbitrary (e.g. gate) locations.
    """
    if kle.kernel is None:
        raise ValueError("KLEResult has no kernel attached; cannot compare")
    if r is None:
        r = kle.num_eigenpairs
    x0 = np.asarray(reference_point, dtype=float).reshape(1, 2)
    if evaluation == "centroids":
        tri0 = kle.locator.locate((float(x0[0, 0]), float(x0[0, 1])))
        x0 = kle.mesh.centroids[tri0 : tri0 + 1]
        grid = kle.mesh.centroids
    elif evaluation == "grid":
        vertices = kle.mesh.vertices
        bounds = (
            float(vertices[:, 0].min()),
            float(vertices[:, 1].min()),
            float(vertices[:, 0].max()),
            float(vertices[:, 1].max()),
        )
        grid = die_grid(bounds, resolution)
    else:
        raise ValueError(
            f"evaluation must be 'centroids' or 'grid', got {evaluation!r}"
        )
    exact = kle.kernel.matrix(x0, grid)[0]
    approx = kle.reconstruct_kernel(x0, grid, r=r)[0]
    errors = exact - approx
    return ReconstructionReport(
        max_abs_error=float(np.max(np.abs(errors))),
        rms_error=float(np.sqrt(np.mean(errors * errors))),
        r=r,
        grid=grid,
        errors=errors,
    )


def mercer_variance_defect(kle: KLEResult) -> float:
    """Relative defect ``|Σ λ_j - |D|| / |D|`` of the full eigenvalue sum.

    For a normalized field the eigenvalues must sum to the die area; a
    large defect flags an inaccurate Galerkin matrix or too few computed
    eigenpairs.
    """
    total_area = kle.mesh.total_area()
    lam_sum = float(np.sum(np.clip(kle.eigenvalues, 0.0, None)))
    return abs(lam_sum - total_area) / total_area


def probe_kernel_validity(
    kernel: CovarianceKernel,
    bounds: Tuple[float, float, float, float],
    *,
    num_points: int = 200,
    num_rounds: int = 5,
    tol: float = 1e-8,
    seed: SeedLike = 0,
) -> bool:
    """Randomized non-negative-definiteness probe (paper eq. (2)).

    Draws ``num_rounds`` random finite subsets of the die and checks the
    covariance matrix spectrum of each.  Returns ``False`` as soon as any
    subset yields a meaningfully negative eigenvalue — a *disproof* of
    validity (the linear cone kernel fails this in 2-D); ``True`` means no
    violation was found.
    """
    rng = as_generator(seed)
    xmin, ymin, xmax, ymax = bounds
    for _ in range(num_rounds):
        points = np.column_stack(
            [
                rng.uniform(xmin, xmax, num_points),
                rng.uniform(ymin, ymax, num_points),
            ]
        )
        if not kernel.is_valid_on(points, tol=tol):
            return False
    return True


def eigenfunction_orthonormality_defect(kle: KLEResult) -> float:
    """Max deviation of ``Dᵀ Φ D`` from the identity.

    The Galerkin eigenfunctions must be L²(D)-orthonormal; this measures how
    well the solver preserved that (should be ~1e-12 for the dense solver).
    """
    gram = kle.d_vectors.T @ (kle.mesh.areas[:, None] * kle.d_vectors)
    return float(np.max(np.abs(gram - np.eye(gram.shape[0]))))
