"""The paper's primary contribution: numerical KLE of arbitrary kernels.

The flow is kernel → mesh → Galerkin eigenproblem → truncated KLE:

>>> from repro.core import paper_experiment_kernel, solve_kle
>>> from repro.mesh import paper_mesh
>>> kernel = paper_experiment_kernel()
>>> mesh = paper_mesh()                          # 28° / 0.1 % area mesh
>>> kle = solve_kle(kernel, mesh, num_eigenpairs=200)
>>> r = kle.select_truncation()                  # the 1 % criterion
>>> samples = kle.sample_triangle_values(1000, r=r, seed=0)
"""

from repro.core.kernels import (
    AnisotropicGaussianKernel,
    CovarianceKernel,
    ExponentialKernel,
    GaussianKernel,
    IsotropicKernel,
    LinearConeKernel,
    MaternBesselKernel,
    NonstationaryVarianceKernel,
    NuggetKernel,
    ProductKernel,
    RadialExponentialKernel,
    ScaledKernel,
    SeparableExponentialKernel,
    SphericalKernel,
    SumKernel,
    pairwise_distances,
)
from repro.core.extraction import (
    AnisotropyReport,
    Correlogram,
    detect_anisotropy,
    ExtractionResult,
    empirical_correlogram,
    extract_kernel,
    measurement_noise_floor,
)
from repro.core.kernel_fit import (
    KernelFitResult,
    fit_exponential_to_profile,
    fit_gaussian_to_linear_kernel_2d,
    fit_gaussian_to_profile,
    fit_to_linear_kernel_1d,
    paper_experiment_kernel,
)
from repro.core.quadrature import (
    CENTROID_RULE,
    SEVEN_POINT_RULE,
    THREE_POINT_RULE,
    TriangleRule,
    get_rule,
)
from repro.core.galerkin import (
    GalerkinKLE,
    assemble_galerkin_matrix,
    kle_cache_key,
    mesh_fingerprint,
    solve_kle,
)
from repro.core.galerkin_linear import (
    LinearKLEResult,
    assemble_linear_galerkin_matrix,
    linear_mass_matrix,
    solve_kle_linear,
)
from repro.core.kle import KLEResult, select_truncation
from repro.core.analytic import (
    Analytic1DEigenpair,
    Separable2DEigenpair,
    analytic_truncated_variance_1d,
    evaluate_series_covariance,
    exponential_kle_1d,
    make_field_sampler_2d,
    separable_exponential_kle_2d,
)
from repro.core.validation import (
    ReconstructionReport,
    die_grid,
    eigenfunction_orthonormality_defect,
    kernel_reconstruction_report,
    mercer_variance_defect,
    probe_kernel_validity,
)

__all__ = [
    # kernels
    "CovarianceKernel",
    "IsotropicKernel",
    "GaussianKernel",
    "ExponentialKernel",
    "SeparableExponentialKernel",
    "RadialExponentialKernel",
    "MaternBesselKernel",
    "LinearConeKernel",
    "SphericalKernel",
    "ScaledKernel",
    "SumKernel",
    "ProductKernel",
    "NuggetKernel",
    "AnisotropicGaussianKernel",
    "NonstationaryVarianceKernel",
    "pairwise_distances",
    # extraction
    "AnisotropyReport",
    "Correlogram",
    "detect_anisotropy",
    "ExtractionResult",
    "empirical_correlogram",
    "extract_kernel",
    "measurement_noise_floor",
    # fitting
    "KernelFitResult",
    "fit_gaussian_to_profile",
    "fit_exponential_to_profile",
    "fit_to_linear_kernel_1d",
    "fit_gaussian_to_linear_kernel_2d",
    "paper_experiment_kernel",
    # quadrature
    "TriangleRule",
    "CENTROID_RULE",
    "THREE_POINT_RULE",
    "SEVEN_POINT_RULE",
    "get_rule",
    # galerkin / kle
    "GalerkinKLE",
    "assemble_galerkin_matrix",
    "kle_cache_key",
    "mesh_fingerprint",
    "solve_kle",
    "LinearKLEResult",
    "assemble_linear_galerkin_matrix",
    "linear_mass_matrix",
    "solve_kle_linear",
    "KLEResult",
    "select_truncation",
    # analytic baseline
    "Analytic1DEigenpair",
    "Separable2DEigenpair",
    "exponential_kle_1d",
    "separable_exponential_kle_2d",
    "analytic_truncated_variance_1d",
    "evaluate_series_covariance",
    "make_field_sampler_2d",
    # validation
    "ReconstructionReport",
    "die_grid",
    "kernel_reconstruction_report",
    "mercer_variance_defect",
    "probe_kernel_validity",
    "eigenfunction_orthonormality_defect",
]
