"""Numerical quadrature rules on triangles.

The paper's method approximates the Galerkin double integral (eq. (18)) with
the one-point *centroid rule* (eq. (21)), proving linear convergence in the
maximum triangle side ``h`` (Theorem 2).  It also notes that "higher order
piecewise polynomials … along with high order numerical integration" may be
used with "no restrictions".  We provide the centroid rule plus the standard
symmetric 3-point (degree-2) and 7-point (degree-5) triangle rules so the
quadrature-order ablation bench can quantify that trade-off.

All rules are expressed in barycentric coordinates and mapped affinely onto
each physical triangle; weights sum to 1 and are scaled by the triangle
area at evaluation time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Tuple

if TYPE_CHECKING:
    from repro.mesh.mesh import TriangleMesh

import numpy as np


@dataclass(frozen=True)
class TriangleRule:
    """A quadrature rule on the reference triangle.

    Attributes
    ----------
    name:
        Identifier ("centroid", "three_point", "seven_point").
    barycentric:
        ``(q, 3)`` barycentric coordinates of the quadrature nodes.
    weights:
        ``(q,)`` weights summing to 1 (relative to the triangle area).
    degree:
        Highest polynomial degree integrated exactly.
    """

    name: str
    barycentric: np.ndarray
    weights: np.ndarray
    degree: int

    @property
    def num_points(self) -> int:
        return len(self.weights)

    def points_on(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Physical quadrature nodes for triangle ``(a, b, c)``: ``(q, 2)``."""
        corners = np.stack([np.asarray(a, float), np.asarray(b, float),
                            np.asarray(c, float)])
        return self.barycentric @ corners

    def points_on_mesh(
        self, mesh: "TriangleMesh"
    ) -> Tuple[np.ndarray, np.ndarray]:
        """All quadrature nodes and area-scaled weights over a mesh.

        Returns
        -------
        (points, weights):
            ``points`` has shape ``(nt * q, 2)`` (triangle-major order) and
            ``weights`` shape ``(nt * q,)`` with
            ``weights[t*q + s] = rule.weights[s] * area_t`` so that
            ``sum(g(points) * weights)`` approximates ``∫_D g``.
        """
        verts = mesh.vertices
        tris = mesh.triangles
        corners = verts[tris]  # (nt, 3, 2)
        points = np.einsum("qk,tkd->tqd", self.barycentric, corners)
        weights = self.weights[None, :] * mesh.areas[:, None]
        return points.reshape(-1, 2), weights.reshape(-1)

    def integrate(
        self,
        func: Callable[[np.ndarray], float],
        a: np.ndarray,
        b: np.ndarray,
        c: np.ndarray,
        area: float,
    ) -> float:
        """``∫_Δ func`` over a single physical triangle."""
        pts = self.points_on(a, b, c)
        vals = np.asarray([func(p) for p in pts], dtype=float)
        return float(area * np.dot(self.weights, vals))


def _make_rules() -> Dict[str, TriangleRule]:
    third = 1.0 / 3.0
    centroid = TriangleRule(
        name="centroid",
        barycentric=np.array([[third, third, third]]),
        weights=np.array([1.0]),
        degree=1,
    )
    three_point = TriangleRule(
        name="three_point",
        barycentric=np.array(
            [
                [2.0 / 3.0, 1.0 / 6.0, 1.0 / 6.0],
                [1.0 / 6.0, 2.0 / 3.0, 1.0 / 6.0],
                [1.0 / 6.0, 1.0 / 6.0, 2.0 / 3.0],
            ]
        ),
        weights=np.array([third, third, third]),
        degree=2,
    )
    # Classical degree-5 rule (Strang & Fix, rule 10).
    a1 = 0.059715871789770
    b1 = 0.470142064105115
    a2 = 0.797426985353087
    b2 = 0.101286507323456
    w0 = 0.225
    w1 = 0.132394152788506
    w2 = 0.125939180544827
    seven_point = TriangleRule(
        name="seven_point",
        barycentric=np.array(
            [
                [third, third, third],
                [a1, b1, b1],
                [b1, a1, b1],
                [b1, b1, a1],
                [a2, b2, b2],
                [b2, a2, b2],
                [b2, b2, a2],
            ]
        ),
        weights=np.array([w0, w1, w1, w1, w2, w2, w2]),
        degree=5,
    )
    return {rule.name: rule for rule in (centroid, three_point, seven_point)}


_RULES = _make_rules()

CENTROID_RULE = _RULES["centroid"]
THREE_POINT_RULE = _RULES["three_point"]
SEVEN_POINT_RULE = _RULES["seven_point"]


def get_rule(name: str) -> TriangleRule:
    """Look up a rule by name: "centroid", "three_point" or "seven_point"."""
    try:
        return _RULES[name]
    except KeyError:
        raise ValueError(
            f"unknown quadrature rule {name!r}; choose from {sorted(_RULES)}"
        ) from None
