"""Galerkin discretization of the KLE integral equation (paper §3.2, §4).

The homogeneous Fredholm equation of the second kind

    ∫_D K(x, y) f(y) dy = λ f(x)                                   (eq. 4)

is projected onto the space of piecewise-constant functions over a
triangulation of the die (eq. 17).  With that orthogonal basis the Galerkin
criterion (eq. 10) reduces to the generalized eigenvalue problem

    K d = λ Φ d,        K_ik = ∬ K(x, y) dx dy,   Φ = diag(a_i)    (eq. 13/18)

and centroid quadrature approximates ``K_ik ≈ K(c_i, c_k) a_i a_k``
(eq. 21), with error vanishing linearly in the maximum triangle side h
(Theorem 2).  Higher-order quadrature rules are supported for the accuracy
ablation.
"""

from __future__ import annotations

import hashlib
from typing import Optional, Union

import numpy as np

from repro.core.kernels import CovarianceKernel
from repro.core.kle import KLEResult
from repro.core.quadrature import CENTROID_RULE, TriangleRule, get_rule
from repro.mesh.mesh import TriangleMesh
from repro.utils.artifact_cache import ArtifactCache, get_cache
from repro.utils.linalg import symmetric_generalized_eigh

#: Application schema tag of cached eigensolves; bump to invalidate old
#: entries when the solver's numerical behavior changes.
KLE_CACHE_SCHEMA = "kle-eigensolve-v1"

#: Eigensolver methods :func:`solve_kle` accepts (see
#: :func:`repro.utils.linalg.symmetric_generalized_eigh` for the first
#: two; ``"randomized"`` routes through :mod:`repro.solvers`).
KLE_METHODS = ("dense", "arpack", "randomized")

#: Triangle count above which the centroid-rule assembly switches to the
#: tiled fill: ``kernel.matrix`` allocates ~4 n × n temporaries (the
#: point-difference array alone is two of them), which dominates peak
#: memory well before the result matrix itself hurts.
ASSEMBLY_TILE_THRESHOLD = 2048


def _assemble_centroid_tiled(
    kernel: CovarianceKernel,
    centroids: np.ndarray,
    areas: np.ndarray,
    max_block_bytes: int,
) -> np.ndarray:
    """Fill ``K_ik = K(c_i, c_k) a_i a_k`` block-by-block.

    Peak memory is the result matrix plus one row tile of kernel
    temporaries (bounded by ``max_block_bytes``) — never the full
    intermediate distance array the one-shot ``kernel.matrix`` path
    allocates.
    """
    n = centroids.shape[0]
    # A tile of t rows costs ~6 doubles per entry in kernel temporaries
    # (difference pair, distance, value).
    rows = max(1, min(n, int(max_block_bytes // (8 * n * 6))))
    result = np.empty((n, n), dtype=float)
    for start in range(0, n, rows):
        stop = min(start + rows, n)
        block = kernel(centroids[start:stop, None, :], centroids[None, :, :])
        block *= areas[start:stop, None]
        block *= areas[None, :]
        result[start:stop] = block
    result += result.T
    result *= 0.5
    return result


def assemble_galerkin_matrix(
    kernel: CovarianceKernel,
    mesh: TriangleMesh,
    *,
    rule: Union[str, TriangleRule] = CENTROID_RULE,
    max_block_bytes: int = 256 * 1024 * 1024,
    tile_threshold: Optional[int] = None,
) -> np.ndarray:
    """Assemble the symmetric Galerkin matrix ``K`` of eq. (13).

    With the centroid rule this is exactly the paper's eq. (21):
    ``K_ik = K(c_i, c_k) a_i a_k``.  With a ``q``-point rule each entry is a
    double quadrature sum; the ``(nt*q) × (nt*q)`` kernel evaluation is
    blocked so peak memory stays under ``max_block_bytes``.

    Above ``tile_threshold`` triangles (default
    :data:`ASSEMBLY_TILE_THRESHOLD`) the centroid path fills the matrix
    block-by-block so the kernel evaluation's O(n²) temporaries never
    materialize alongside the result; below it the one-shot path is kept
    bit-for-bit unchanged.

    Returns the dense ``(nt, nt)`` matrix, exactly symmetric.
    """
    if isinstance(rule, str):
        rule = get_rule(rule)
    num_triangles = mesh.num_triangles
    if num_triangles == 0:
        raise ValueError("cannot assemble a Galerkin matrix on an empty mesh")
    if tile_threshold is None:
        tile_threshold = ASSEMBLY_TILE_THRESHOLD

    if rule.num_points == 1:
        centroids = mesh.centroids
        areas = mesh.areas
        if num_triangles > tile_threshold:
            return _assemble_centroid_tiled(
                kernel, centroids, areas, max_block_bytes
            )
        # Scale rows and columns in place and symmetrize into the same
        # buffer: the kernel matrix is the only (nt, nt) allocation, vs.
        # four with ``outer`` + out-of-place symmetrization.
        result = kernel.matrix(centroids)
        result *= areas[:, None]
        result *= areas
        result += result.T
        result *= 0.5
        return result

    points, weights = rule.points_on_mesh(mesh)  # (nt*q, 2), (nt*q,)
    q = rule.num_points
    total = len(points)
    # K_ik = sum over quadrature nodes of both triangles; computed as the
    # triangle-block reduction of diag(w) K(points, points) diag(w).
    result = np.zeros((num_triangles, num_triangles), dtype=float)
    rows_per_block = max(q, int(max_block_bytes / (8 * max(total, 1))) // q * q)
    for start in range(0, total, rows_per_block):
        stop = min(start + rows_per_block, total)
        block = kernel.matrix(points[start:stop], points)  # (rows, nt*q)
        block = block * weights[start:stop, None] * weights[None, :]
        # Reduce columns to per-triangle sums, then rows.
        col_reduced = block.reshape(stop - start, num_triangles, q).sum(axis=2)
        row_tri = np.repeat(
            np.arange(start // q, (stop + q - 1) // q), q
        )[: stop - start]
        np.add.at(result, row_tri, col_reduced)
    return 0.5 * (result + result.T)


class GalerkinKLE:
    """End-to-end numerical KLE solver (the paper's core contribution).

    Combines the three steps left open in §3.2: the piecewise-constant basis
    on a triangulation, the quadrature evaluation of the Galerkin integrals,
    and the (generalized) eigensolve.

    Example
    -------
    >>> from repro.core import GaussianKernel, GalerkinKLE
    >>> from repro.mesh import structured_rectangle_mesh
    >>> mesh = structured_rectangle_mesh(-1, -1, 1, 1, 12, 12)
    >>> kle = GalerkinKLE(GaussianKernel(c=1.4), mesh).solve(num_eigenpairs=25)
    >>> kle.eigenvalues[0] > kle.eigenvalues[1] > 0
    True
    """

    def __init__(
        self,
        kernel: CovarianceKernel,
        mesh: TriangleMesh,
        *,
        rule: Union[str, TriangleRule] = CENTROID_RULE,
    ):
        self.kernel = kernel
        self.mesh = mesh
        self.rule = get_rule(rule) if isinstance(rule, str) else rule
        self._galerkin_matrix: Optional[np.ndarray] = None

    @property
    def galerkin_matrix(self) -> np.ndarray:
        """The assembled ``K`` matrix (cached after first use)."""
        if self._galerkin_matrix is None:
            self._galerkin_matrix = assemble_galerkin_matrix(
                self.kernel, self.mesh, rule=self.rule
            )
        return self._galerkin_matrix

    def solve(
        self,
        num_eigenpairs: Optional[int] = None,
        *,
        method: str = "dense",
        oversampling: Optional[int] = None,
        power_iterations: Optional[int] = None,
        solver_seed: int = 0,
    ) -> KLEResult:
        """Solve ``K d = λ Φ d`` and package the leading eigenpairs.

        Parameters
        ----------
        num_eigenpairs:
            How many leading pairs to keep; ``None`` keeps all ``nt``.  The
            paper computes the first 200 and then truncates to r = 25 via
            :meth:`repro.core.kle.KLEResult.select_truncation`.
        method:
            ``"dense"`` (LAPACK, default), ``"arpack"`` (iterative
            Lanczos, leading pairs only — equivalent to the Matlab
            ``eigs`` the paper used), or ``"randomized"`` (matrix-free
            sketched solve via :mod:`repro.solvers` — never assembles
            the n × n matrix, the only path that scales to very fine
            meshes).
        oversampling, power_iterations, solver_seed:
            Randomized-method knobs (ignored otherwise): extra sketch
            columns, subspace-refinement rounds and the
            :func:`repro.utils.rng.spawn_seed_sequences` root seed that
            makes the solve deterministic.
        """
        if method == "randomized":
            from repro.solvers import (
                DEFAULT_OVERSAMPLING,
                DEFAULT_POWER_ITERATIONS,
                solve_randomized_kle,
            )

            if num_eigenpairs is None:
                raise ValueError(
                    "method='randomized' requires an explicit num_eigenpairs"
                )
            result, _report = solve_randomized_kle(
                self.kernel,
                self.mesh,
                int(num_eigenpairs),
                rule=self.rule,
                oversampling=(
                    DEFAULT_OVERSAMPLING if oversampling is None
                    else int(oversampling)
                ),
                power_iterations=(
                    DEFAULT_POWER_ITERATIONS if power_iterations is None
                    else int(power_iterations)
                ),
                seed=int(solver_seed),
            )
            return result
        eigenvalues, d_vectors = symmetric_generalized_eigh(
            self.galerkin_matrix,
            self.mesh.areas,
            num_eigenpairs=num_eigenpairs,
            method=method,
        )
        return KLEResult(
            eigenvalues=eigenvalues,
            d_vectors=d_vectors,
            mesh=self.mesh,
            kernel=self.kernel,
        )


def mesh_fingerprint(mesh: TriangleMesh) -> str:
    """SHA-256 digest of a mesh's exact geometry and connectivity.

    Two meshes share a fingerprint iff their vertex coordinates and
    triangle index arrays are bitwise identical — the right equivalence for
    keying cached eigensolves, since the Galerkin matrix is a pure function
    of those arrays (plus the kernel).
    """
    digest = hashlib.sha256()
    vertices = np.ascontiguousarray(mesh.vertices, dtype=np.float64)
    triangles = np.ascontiguousarray(mesh.triangles, dtype=np.int64)
    digest.update(str(vertices.shape).encode())
    digest.update(vertices.tobytes())
    digest.update(str(triangles.shape).encode())
    digest.update(triangles.tobytes())
    return digest.hexdigest()


def kle_cache_key(
    kernel: CovarianceKernel,
    mesh: TriangleMesh,
    *,
    num_eigenpairs: Optional[int] = None,
    rule: Union[str, TriangleRule] = CENTROID_RULE,
    method: str = "dense",
    oversampling: Optional[int] = None,
    power_iterations: Optional[int] = None,
    solver_seed: Optional[int] = None,
) -> str:
    """Cache key of one eigensolve: (kernel, mesh, m, rule, method).

    The kernel enters through its ``repr`` — every kernel class in
    :mod:`repro.core.kernels` exposes its parameters there — and the mesh
    through :func:`mesh_fingerprint`.  Kernels whose ``repr`` hides state
    (e.g. a :class:`~repro.core.kernels.NonstationaryVarianceKernel`'s
    ``sigma_fn``) should not be disk-cached; pass ``cache=None`` for those.

    For ``method="randomized"`` the sketch parameters (oversampling,
    power iterations, seed) are folded in as well: a randomized solve is
    a pure function of those too, and two solves that could differ must
    never share a key.  Keys of the deterministic methods are unchanged
    by the extra arguments, so existing cache entries stay valid.
    """
    if isinstance(rule, str):
        rule = get_rule(rule)
    m = mesh.num_triangles if num_eigenpairs is None else int(num_eigenpairs)
    parts = [
        f"kernel={kernel!r}",
        f"mesh={mesh_fingerprint(mesh)}",
        f"m={m}",
        f"rule={rule.name}",
        f"method={method}",
    ]
    if method == "randomized":
        from repro.solvers import DEFAULT_OVERSAMPLING, DEFAULT_POWER_ITERATIONS

        p = DEFAULT_OVERSAMPLING if oversampling is None else int(oversampling)
        q = (
            DEFAULT_POWER_ITERATIONS if power_iterations is None
            else int(power_iterations)
        )
        s = 0 if solver_seed is None else int(solver_seed)
        parts.append(f"rand=o{p}_q{q}_s{s}")
    fingerprint = "|".join(parts)
    digest = hashlib.sha256(fingerprint.encode("utf-8")).hexdigest()
    return f"kle_{digest[:24]}_m{m}"


def solve_kle(
    kernel: CovarianceKernel,
    mesh: TriangleMesh,
    *,
    num_eigenpairs: Optional[int] = None,
    rule: Union[str, TriangleRule] = CENTROID_RULE,
    method: str = "dense",
    cache: Union[ArtifactCache, str, None] = None,
    oversampling: Optional[int] = None,
    power_iterations: Optional[int] = None,
    solver_seed: int = 0,
) -> KLEResult:
    """One-call convenience wrapper around :class:`GalerkinKLE`.

    With ``cache`` given (a directory path or an
    :class:`~repro.utils.artifact_cache.ArtifactCache`), the eigensolve is
    memoized on disk keyed on :func:`kle_cache_key`, turning the dominant
    setup cost of every bench/experiment run into a warm-cache load.
    Corrupt or stale entries are quarantined and regenerated transparently.

    ``method="randomized"`` routes through :mod:`repro.solvers`
    (matrix-free, leading pairs only); its sketch parameters
    (``oversampling``, ``power_iterations``, ``solver_seed``) are part
    of the cache key, so warm hits return the bitwise-identical arrays
    the cold solve produced.
    """
    if method not in KLE_METHODS:
        raise ValueError(
            f"unknown KLE method {method!r}; expected one of {KLE_METHODS}"
        )
    solver = GalerkinKLE(kernel, mesh, rule=rule)
    if cache is None:
        return solver.solve(
            num_eigenpairs=num_eigenpairs,
            method=method,
            oversampling=oversampling,
            power_iterations=power_iterations,
            solver_seed=solver_seed,
        )
    if not isinstance(cache, ArtifactCache):
        cache = get_cache("kle", str(cache))
    key = kle_cache_key(
        kernel, mesh, num_eigenpairs=num_eigenpairs, rule=solver.rule,
        method=method, oversampling=oversampling,
        power_iterations=power_iterations, solver_seed=solver_seed,
    )
    cached = cache.load(
        key,
        schema=KLE_CACHE_SCHEMA,
        required_keys=("eigenvalues", "d_vectors"),
    )
    if cached is not None and cached["d_vectors"].shape == (
        mesh.num_triangles,
        len(cached["eigenvalues"]),
    ):
        return KLEResult(
            eigenvalues=cached["eigenvalues"],
            d_vectors=cached["d_vectors"],
            mesh=mesh,
            kernel=kernel,
        )
    result = solver.solve(
        num_eigenpairs=num_eigenpairs,
        method=method,
        oversampling=oversampling,
        power_iterations=power_iterations,
        solver_seed=solver_seed,
    )
    cache.store(
        key,
        {"eigenvalues": result.eigenvalues, "d_vectors": result.d_vectors},
        schema=KLE_CACHE_SCHEMA,
    )
    return result
