"""Spatial correlation (covariance) kernels for intra-die random fields.

A *covariance kernel* ``K(x, y)`` returns the covariance of a normalized
statistical device parameter (L, W, Vt, tox) between any two die locations
``x`` and ``y`` (paper §2.2).  A physically valid kernel must be symmetric and
non-negative definite (paper eq. (2)); with normalized parameters it must
also satisfy ``K(x, x) = 1``.

This module provides every kernel family the paper discusses:

- :class:`GaussianKernel` — ``exp(-c ||x-y||²)``, the kernel used for all of
  the paper's experiments (Fig. 1a).
- :class:`ExponentialKernel` — ``exp(-c ||x-y||)``, the isotropic exponential
  suggested by [16] and fit in Fig. 3a.
- :class:`SeparableExponentialKernel` — ``exp(-c(|x1-y1|+|x2-y2|))``, the
  L1-norm kernel of paper eq. (5), separable and analytically solvable but
  physically unrealistic.
- :class:`RadialExponentialKernel` — ``exp(-c | ‖x‖ - ‖y‖ |)``, the kernel
  used by [2]; unrealistic because all points on an origin-centric circle are
  perfectly correlated (paper §3.1).
- :class:`MaternBesselKernel` — the modified-Bessel family of paper eq. (6),
  as extracted from measurements by Xiong et al. [1].
- :class:`LinearConeKernel` — the near-linear isotropic kernel suggested by
  measurement data in [12]; *not* guaranteed valid in 2-D (paper §5.1).
- :class:`SphericalKernel` — the classical geostatistics spherical kernel, a
  valid compactly-supported alternative to the cone.

All kernels operate on points stored as arrays of shape ``(..., 2)`` and
broadcast like numpy ufuncs.  :meth:`CovarianceKernel.matrix` assembles dense
covariance matrices for finite point sets (the grid model / Algorithm 1
substrate).
"""

from __future__ import annotations

import abc
import math
from typing import Callable, Optional

import numpy as np
import scipy.special


def _as_points(points: np.ndarray, name: str) -> np.ndarray:
    """Validate and convert an array of 2-D points."""
    arr = np.asarray(points, dtype=float)
    if arr.shape[-1] != 2:
        raise ValueError(
            f"{name} must have shape (..., 2) for 2-D die locations, "
            f"got shape {arr.shape}"
        )
    return arr


def pairwise_distances(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between two point sets.

    ``x`` has shape ``(m, 2)`` and ``y`` shape ``(k, 2)``; the result has
    shape ``(m, k)``.
    """
    x = _as_points(x, "x").reshape(-1, 2)
    y = _as_points(y, "y").reshape(-1, 2)
    diff = x[:, None, :] - y[None, :, :]
    return np.sqrt(np.sum(diff * diff, axis=-1))


class CovarianceKernel(abc.ABC):
    """Base class for covariance kernels over the die area.

    Subclasses implement :meth:`__call__`; everything else (covariance matrix
    assembly, validity probing) is shared.
    """

    @abc.abstractmethod
    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Evaluate ``K(x, y)`` with numpy broadcasting over leading axes."""

    @property
    def is_isotropic(self) -> bool:
        """True when K depends on x, y only through ``||x - y||``."""
        return isinstance(self, IsotropicKernel)

    def matrix(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        """Dense covariance matrix ``M[i, j] = K(x_i, y_j)``.

        With ``y`` omitted the result is the symmetric covariance matrix of
        the point set ``x`` — exactly the ``CovMatrix`` step of the paper's
        Algorithm 1.
        """
        x = _as_points(x, "x").reshape(-1, 2)
        y_arr = x if y is None else _as_points(y, "y").reshape(-1, 2)
        result = self(x[:, None, :], y_arr[None, :, :])
        if y is None:
            # Enforce exact symmetry against floating-point asymmetries.
            result = 0.5 * (result + result.T)
        return result

    def variance_at(self, x: np.ndarray) -> np.ndarray:
        """``K(x, x)``, the (normalized) pointwise variance."""
        x = _as_points(x, "x")
        return self(x, x)

    def is_valid_on(
        self,
        points: np.ndarray,
        *,
        tol: float = 1e-8,
    ) -> bool:
        """Probe non-negative definiteness (paper eq. (2)) on a finite set.

        A ``True`` result does not prove validity over the whole continuous
        domain, but a ``False`` result disproves it — useful for exposing
        invalid kernels such as the 2-D linear cone.
        """
        from repro.utils.linalg import is_positive_semidefinite

        return is_positive_semidefinite(self.matrix(points), tol=tol)

    def __mul__(self, other: "CovarianceKernel | float") -> "CovarianceKernel":
        if isinstance(other, CovarianceKernel):
            return ProductKernel(self, other)
        return ScaledKernel(self, float(other))

    def __rmul__(self, other: float) -> "CovarianceKernel":
        return ScaledKernel(self, float(other))

    def __add__(self, other: "CovarianceKernel") -> "CovarianceKernel":
        if not isinstance(other, CovarianceKernel):
            return NotImplemented
        return SumKernel(self, other)


class IsotropicKernel(CovarianceKernel):
    """Kernel depending only on the separation ``v = ||x - y||₂``.

    Subclasses implement :meth:`profile`, the 1-D correlation-vs-distance
    curve; the 2-D evaluation and matrix assembly are shared.
    """

    @abc.abstractmethod
    def profile(self, v: np.ndarray) -> np.ndarray:
        """Correlation at separation distance ``v >= 0`` (vectorized)."""

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = _as_points(x, "x")
        y = _as_points(y, "y")
        diff = x - y
        v = np.sqrt(np.sum(diff * diff, axis=-1))
        return self.profile(v)

    def matrix(self, x: np.ndarray, y: Optional[np.ndarray] = None) -> np.ndarray:
        x = _as_points(x, "x").reshape(-1, 2)
        y_arr = x if y is None else _as_points(y, "y").reshape(-1, 2)
        result = self.profile(pairwise_distances(x, y_arr))
        if y is None:
            result = 0.5 * (result + result.T)
        return result


class GaussianKernel(IsotropicKernel):
    """Double-exponential (Gaussian / squared-exponential) kernel.

    ``K(x, y) = exp(-c ||x - y||₂²)`` — Fig. 1(a) of the paper, and the
    kernel used for all of its experiments.  Valid (strictly positive
    definite) in every dimension, infinitely smooth, hence very fast KLE
    eigenvalue decay.

    Parameters
    ----------
    c:
        Decay rate; larger ``c`` means correlation drops off faster.  The
        *correlation length* ``1/sqrt(c)`` is the distance at which the
        correlation falls to ``1/e``.
    """

    def __init__(self, c: float):
        if c <= 0.0:
            raise ValueError(f"decay rate c must be positive, got {c}")
        self.c = float(c)

    def profile(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        return np.exp(-self.c * v * v)

    @property
    def correlation_length(self) -> float:
        """Distance at which correlation decays to 1/e."""
        return 1.0 / math.sqrt(self.c)

    def __repr__(self) -> str:
        return f"GaussianKernel(c={self.c:g})"


class ExponentialKernel(IsotropicKernel):
    """Isotropic exponential kernel ``K(x, y) = exp(-c ||x - y||₂)``.

    Suggested by [16] (Liu's correlogram framework).  Valid in every
    dimension but non-differentiable at zero separation, so its KLE spectrum
    decays much more slowly than the Gaussian's — one of the reasons the
    paper prefers the Gaussian fit (Fig. 3a).
    """

    def __init__(self, c: float):
        if c <= 0.0:
            raise ValueError(f"decay rate c must be positive, got {c}")
        self.c = float(c)

    def profile(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        return np.exp(-self.c * v)

    @property
    def correlation_length(self) -> float:
        """Distance at which correlation decays to 1/e."""
        return 1.0 / self.c

    def __repr__(self) -> str:
        return f"ExponentialKernel(c={self.c:g})"


class SeparableExponentialKernel(CovarianceKernel):
    """L1-norm exponential kernel, paper eq. (5).

    ``K(x, y) = exp(-c (|x1-y1| + |x2-y2|))`` separates into the product of
    two 1-D exponential kernels, each of which has a known analytic KLE
    (Ghanem–Spanos [8]; see :mod:`repro.core.analytic`).  The paper uses it
    only as the analytically solvable baseline: its square correlation
    contours are physically unrealistic.
    """

    def __init__(self, c: float):
        if c <= 0.0:
            raise ValueError(f"decay rate c must be positive, got {c}")
        self.c = float(c)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = _as_points(x, "x")
        y = _as_points(y, "y")
        l1 = np.sum(np.abs(x - y), axis=-1)
        return np.exp(-self.c * l1)

    def __repr__(self) -> str:
        return f"SeparableExponentialKernel(c={self.c:g})"


class RadialExponentialKernel(CovarianceKernel):
    """The kernel of Bhardwaj et al. [2]: ``exp(-c |‖x‖₂ - ‖y‖₂|)``.

    Included as the strawman the paper criticizes: every pair of points on a
    circle centred at the origin has correlation exactly 1 regardless of the
    distance between them.  :meth:`circle_correlation` exposes that defect
    directly for tests and documentation.
    """

    def __init__(self, c: float):
        if c <= 0.0:
            raise ValueError(f"decay rate c must be positive, got {c}")
        self.c = float(c)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = _as_points(x, "x")
        y = _as_points(y, "y")
        rx = np.sqrt(np.sum(x * x, axis=-1))
        ry = np.sqrt(np.sum(y * y, axis=-1))
        return np.exp(-self.c * np.abs(rx - ry))

    def circle_correlation(self, radius: float, angle_gap: float) -> float:
        """Correlation between two points ``angle_gap`` apart on one circle.

        Always exactly 1.0 — the physical absurdity the paper calls out.
        """
        del radius, angle_gap  # the defect: the answer never depends on them
        return 1.0

    def __repr__(self) -> str:
        return f"RadialExponentialKernel(c={self.c:g})"


class MaternBesselKernel(IsotropicKernel):
    """Modified-Bessel (Matérn-family) kernel of paper eq. (6) / Xiong [1].

    ``K(v) = 2 (b v / 2)^{s-1} B_{s-1}(b v) / Γ(s-1)`` with ``v = ||x-y||₂``,
    where ``B`` is the modified Bessel function of the second kind and
    ``Γ`` the gamma function.  ``b > 0`` controls the decay rate and
    ``s > 1`` the smoothness.  In standard Matérn notation this is the
    ``ν = s - 1`` member, which is why ``s`` must exceed 1 for the kernel to
    be continuous at zero separation (a KLE requirement, Theorem 1).

    No analytic KLE is known for this family — it is exactly the case that
    motivates the paper's numerical Galerkin method.
    """

    def __init__(self, b: float, s: float):
        if b <= 0.0:
            raise ValueError(f"shape parameter b must be positive, got {b}")
        if s <= 1.0:
            raise ValueError(
                f"shape parameter s must exceed 1 for continuity at v=0, got {s}"
            )
        self.b = float(b)
        self.s = float(s)

    def profile(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        nu = self.s - 1.0
        bv = self.b * v
        with np.errstate(invalid="ignore", over="ignore"):
            values = (
                2.0
                * np.power(bv / 2.0, nu)
                * scipy.special.kv(nu, bv)
                / scipy.special.gamma(nu)
            )
        # kv(nu, 0) diverges but the product limit is Γ(ν) 2^{ν-1}, giving
        # K(0) = 1; patch the removable singularity (and underflow at huge v).
        # Exact v == 0 is the removable singularity itself, not a
        # tolerance question.
        values = np.where(bv == 0.0, 1.0, values)  # repro-lint: disable=REPRO-FLOAT001
        values = np.nan_to_num(values, nan=1.0, posinf=1.0, neginf=0.0)
        return np.clip(values, 0.0, 1.0)

    def __repr__(self) -> str:
        return f"MaternBesselKernel(b={self.b:g}, s={self.s:g})"


class LinearConeKernel(IsotropicKernel):
    """Near-linear isotropic kernel suggested by the measurements of [12].

    ``K(v) = max(0, 1 - v / rho)`` where ``rho`` is the correlation distance
    (the paper fits against a cone with base radius of half the normalized
    chip length).  As [1] shows, this kernel is *not* guaranteed
    non-negative definite in 2-D — it is provided as the fitting *target*
    for Fig. 3(a), not as a sampling kernel.
    """

    def __init__(self, rho: float):
        if rho <= 0.0:
            raise ValueError(f"correlation distance rho must be positive, got {rho}")
        self.rho = float(rho)

    def profile(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        return np.clip(1.0 - v / self.rho, 0.0, None)

    def __repr__(self) -> str:
        return f"LinearConeKernel(rho={self.rho:g})"


class SphericalKernel(IsotropicKernel):
    """Spherical kernel ``K(v) = 1 - 1.5 u + 0.5 u³`` for ``u = v/rho ≤ 1``.

    The classical geostatistics correction of the linear cone: compactly
    supported like the cone but provably non-negative definite in up to
    three dimensions, hence a valid alternative when near-linear decay is
    observed in measurements.
    """

    def __init__(self, rho: float):
        if rho <= 0.0:
            raise ValueError(f"correlation distance rho must be positive, got {rho}")
        self.rho = float(rho)

    def profile(self, v: np.ndarray) -> np.ndarray:
        v = np.asarray(v, dtype=float)
        u = np.clip(v / self.rho, 0.0, 1.0)
        return 1.0 - 1.5 * u + 0.5 * u**3

    def __repr__(self) -> str:
        return f"SphericalKernel(rho={self.rho:g})"


class ScaledKernel(CovarianceKernel):
    """``scale * K(x, y)`` — models a parameter with variance ≠ 1."""

    def __init__(self, kernel: CovarianceKernel, scale: float):
        if scale < 0.0:
            raise ValueError(f"scale must be non-negative, got {scale}")
        self.kernel = kernel
        self.scale = float(scale)

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.scale * self.kernel(x, y)

    def __repr__(self) -> str:
        return f"ScaledKernel({self.kernel!r}, scale={self.scale:g})"


class SumKernel(CovarianceKernel):
    """Sum of kernels — e.g. a spatially correlated plus a purely local part.

    The sum of non-negative definite kernels is non-negative definite, so
    this is always a valid composition.
    """

    def __init__(self, first: CovarianceKernel, second: CovarianceKernel):
        self.first = first
        self.second = second

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.first(x, y) + self.second(x, y)

    def __repr__(self) -> str:
        return f"SumKernel({self.first!r}, {self.second!r})"


class ProductKernel(CovarianceKernel):
    """Pointwise product of kernels (Schur product — validity preserving)."""

    def __init__(self, first: CovarianceKernel, second: CovarianceKernel):
        self.first = first
        self.second = second

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.first(x, y) * self.second(x, y)

    def __repr__(self) -> str:
        return f"ProductKernel({self.first!r}, {self.second!r})"


class AnisotropicGaussianKernel(CovarianceKernel):
    """Gaussian kernel with direction-dependent correlation lengths.

    ``K(x, y) = exp(-(x-y)ᵀ M (x-y))`` where ``M`` is the SPD matrix built
    from decay rates ``c_major``/``c_minor`` along axes rotated by
    ``angle`` radians.  Models layout-induced anisotropy (e.g. stronger
    correlation along the poly direction) that isotropic kernels cannot;
    the paper's numerical method handles it unchanged — which this class
    exists to demonstrate (see the kernel-family tests/benches).

    With ``c_major == c_minor`` it reduces exactly to
    :class:`GaussianKernel`.
    """

    def __init__(self, c_major: float, c_minor: float, angle: float = 0.0):
        if c_major <= 0.0 or c_minor <= 0.0:
            raise ValueError("decay rates must be positive")
        self.c_major = float(c_major)
        self.c_minor = float(c_minor)
        self.angle = float(angle)
        cos_a = math.cos(self.angle)
        sin_a = math.sin(self.angle)
        rotation = np.array([[cos_a, -sin_a], [sin_a, cos_a]])
        self._metric = rotation @ np.diag([self.c_major, self.c_minor]) @ rotation.T

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = _as_points(x, "x")
        y = _as_points(y, "y")
        diff = x - y
        quad = np.einsum("...i,ij,...j->...", diff, self._metric, diff)
        return np.exp(-quad)

    def __repr__(self) -> str:
        return (
            f"AnisotropicGaussianKernel(c_major={self.c_major:g}, "
            f"c_minor={self.c_minor:g}, angle={self.angle:g})"
        )


class NonstationaryVarianceKernel(CovarianceKernel):
    """Spatially modulated variance: ``K(x, y) = σ(x) K₀(x, y) σ(y)``.

    A standard valid construction for *nonstationary* fields (variance
    varying across the die — e.g. larger variation near the die edge)
    built on any valid base kernel: the quadratic form of eq. (2) stays
    non-negative because the modulation folds into the test function.

    Parameters
    ----------
    base:
        A valid covariance kernel (correlation structure).
    sigma_fn:
        Vectorized callable mapping ``(..., 2)`` locations to positive
        per-location standard deviations.
    """

    def __init__(
        self,
        base: CovarianceKernel,
        sigma_fn: Callable[[np.ndarray], np.ndarray],
    ):
        self.base = base
        self.sigma_fn = sigma_fn

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = _as_points(x, "x")
        y = _as_points(y, "y")
        sigma_x = np.asarray(self.sigma_fn(x), dtype=float)
        sigma_y = np.asarray(self.sigma_fn(y), dtype=float)
        if np.any(sigma_x <= 0.0) or np.any(sigma_y <= 0.0):
            raise ValueError("sigma_fn must return strictly positive values")
        return sigma_x * self.base(x, y) * sigma_y

    def __repr__(self) -> str:
        return f"NonstationaryVarianceKernel({self.base!r})"


class NuggetKernel(CovarianceKernel):
    """White-noise ("nugget") kernel: 1 where ``x == y``, 0 elsewhere.

    Models the purely local, spatially *uncorrelated* component of random
    variation (e.g. random dopant fluctuation), typically summed with a
    smooth kernel: ``w * smooth + (1 - w) * nugget``.
    """

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = _as_points(x, "x")
        y = _as_points(y, "y")
        return np.all(x == y, axis=-1).astype(float)

    def __repr__(self) -> str:
        return "NuggetKernel()"
