"""Analytic KLE solutions for the exponential kernel (Ghanem–Spanos [8]).

The 1-D exponential kernel ``k(x, y) = exp(-c |x - y|)`` on the symmetric
interval ``[-a, a]`` is one of the very few kernels whose Fredholm
eigenproblem has a closed form.  The eigenpairs come in even/odd families:

- even:  ``f(x) ∝ cos(ω x)`` with ω solving ``c - ω tan(ω a) = 0``,
- odd:   ``f(x) ∝ sin(ω x)`` with ω solving ``ω + c tan(ω a) = 0``,

both with eigenvalue ``λ = 2 c / (ω² + c²)``.

The paper (§3.1, eq. (5)) notes that the 2-D *separable* L1 kernel
``K = exp(-c(|x1-y1| + |x2-y2|))`` inherits product eigenpairs from the 1-D
solution.  This module implements both — they are the validation oracle for
the numerical Galerkin solver, and the baseline method of Bhardwaj [2] that
the paper generalizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np
import scipy.optimize

_BRACKET_SHRINK = 1e-9


@dataclass(frozen=True)
class Analytic1DEigenpair:
    """One closed-form eigenpair of the 1-D exponential kernel.

    ``parity`` is "even" (cosine) or "odd" (sine); ``omega`` is the
    transcendental-equation root; ``eigenvalue`` is ``2c/(ω²+c²)``;
    ``normalization`` makes the eigenfunction unit-L²-norm on [-a, a].
    """

    eigenvalue: float
    omega: float
    parity: str
    normalization: float
    half_length: float

    def __call__(self, x: np.ndarray) -> np.ndarray:
        """Evaluate the (orthonormal) eigenfunction at ``x``."""
        x = np.asarray(x, dtype=float)
        if self.parity == "even":
            return np.cos(self.omega * x) / self.normalization
        return np.sin(self.omega * x) / self.normalization


def _even_roots(c: float, a: float, count: int) -> List[float]:
    """Roots of ``c - ω tan(ω a) = 0``; one per interval ωa ∈ (kπ, kπ+π/2)."""
    roots = []
    for k in range(count):
        lo = (k * math.pi) / a + _BRACKET_SHRINK / a
        hi = (k * math.pi + math.pi / 2.0) / a - _BRACKET_SHRINK / a

        def func(omega: float) -> float:
            return c - omega * math.tan(omega * a)

        roots.append(scipy.optimize.brentq(func, lo, hi, xtol=1e-14, rtol=1e-14))
    return roots


def _odd_roots(c: float, a: float, count: int) -> List[float]:
    """Roots of ``ω + c tan(ω a) = 0``; one per interval ωa ∈ (kπ+π/2, (k+1)π)."""
    roots = []
    for k in range(count):
        lo = (k * math.pi + math.pi / 2.0) / a + _BRACKET_SHRINK / a
        hi = ((k + 1) * math.pi) / a - _BRACKET_SHRINK / a

        def func(omega: float) -> float:
            return omega + c * math.tan(omega * a)

        roots.append(scipy.optimize.brentq(func, lo, hi, xtol=1e-14, rtol=1e-14))
    return roots


def exponential_kle_1d(
    c: float, half_length: float, num_terms: int
) -> List[Analytic1DEigenpair]:
    """Leading ``num_terms`` analytic eigenpairs of ``exp(-c|x-y|)`` on
    ``[-half_length, half_length]``, sorted by descending eigenvalue.

    Eigenvalues from both parity families interleave; we generate enough of
    each and merge-sort.  The result's eigenfunctions are orthonormal.
    """
    if c <= 0.0:
        raise ValueError(f"decay rate c must be positive, got {c}")
    if half_length <= 0.0:
        raise ValueError(f"half_length must be positive, got {half_length}")
    if num_terms < 1:
        raise ValueError(f"num_terms must be >= 1, got {num_terms}")
    a = float(half_length)
    per_family = num_terms  # eigenvalues interleave; this always suffices
    pairs: List[Analytic1DEigenpair] = []
    for omega in _even_roots(c, a, per_family):
        lam = 2.0 * c / (omega * omega + c * c)
        norm = math.sqrt(a + math.sin(2.0 * omega * a) / (2.0 * omega))
        pairs.append(Analytic1DEigenpair(lam, omega, "even", norm, a))
    for omega in _odd_roots(c, a, per_family):
        lam = 2.0 * c / (omega * omega + c * c)
        norm = math.sqrt(a - math.sin(2.0 * omega * a) / (2.0 * omega))
        pairs.append(Analytic1DEigenpair(lam, omega, "odd", norm, a))
    pairs.sort(key=lambda p: -p.eigenvalue)
    return pairs[:num_terms]


@dataclass(frozen=True)
class Separable2DEigenpair:
    """Product eigenpair of the separable 2-D L1-exponential kernel.

    ``eigenvalue = λ_i λ_j`` and ``f(x) = f_i(x₁) f_j(x₂)`` where
    ``(λ_i, f_i)`` are 1-D analytic pairs (paper §3.1).
    """

    eigenvalue: float
    factor_x: Analytic1DEigenpair
    factor_y: Analytic1DEigenpair

    def __call__(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float)
        if points.shape[-1] != 2:
            raise ValueError(f"points must have shape (..., 2), got {points.shape}")
        return self.factor_x(points[..., 0]) * self.factor_y(points[..., 1])


def separable_exponential_kle_2d(
    c: float, half_length: float, num_terms: int
) -> List[Separable2DEigenpair]:
    """Leading eigenpairs of ``exp(-c(|x1-y1|+|x2-y2|))`` on the square
    ``[-half_length, half_length]²``, sorted by descending eigenvalue.

    Built from products of 1-D pairs: the largest ``num_terms`` products of
    the leading 1-D eigenvalues.  Computing ``num_terms`` 1-D terms per axis
    is sufficient because the 1-D eigenvalues are strictly decreasing.
    """
    one_d = exponential_kle_1d(c, half_length, num_terms)
    products: List[Separable2DEigenpair] = []
    for pi in one_d:
        for pj in one_d:
            products.append(
                Separable2DEigenpair(pi.eigenvalue * pj.eigenvalue, pi, pj)
            )
    products.sort(key=lambda p: -p.eigenvalue)
    return products[:num_terms]


def analytic_truncated_variance_1d(
    pairs: List[Analytic1DEigenpair], half_length: float
) -> float:
    """Fraction of total variance captured by a 1-D truncation.

    Total variance of the unit-variance field on ``[-a, a]`` is ``2a``
    (Mercer: ``Σ λ_j = ∫ k(x,x) dx``).
    """
    total = 2.0 * half_length
    return sum(p.eigenvalue for p in pairs) / total


def evaluate_series_covariance(
    pairs: List[Analytic1DEigenpair] | List[Separable2DEigenpair],
    x: np.ndarray,
    y: np.ndarray,
) -> np.ndarray:
    """Mercer partial sum ``Σ_j λ_j f_j(x) f_j(y)`` for analytic eigenpairs.

    ``x`` and ``y`` must broadcast together; used to verify series
    convergence toward the true kernel.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    total = np.zeros(np.broadcast(x[..., 0] if x.ndim > 1 else x,
                                  y[..., 0] if y.ndim > 1 else y).shape)
    for pair in pairs:
        total = total + pair.eigenvalue * pair(x) * pair(y)
    return total


def make_field_sampler_2d(
    pairs: List[Separable2DEigenpair],
) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Sampler using analytic eigenfunctions (the Bhardwaj [2] flow).

    Returns ``sampler(points, xi)`` where ``points`` is ``(np, 2)`` and
    ``xi`` is ``(num_samples, r)`` iid standard normals; the result is
    ``(num_samples, np)`` field values.
    """
    def sampler(points: np.ndarray, xi: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        xi = np.asarray(xi, dtype=float)
        if xi.ndim != 2 or xi.shape[1] != len(pairs):
            raise ValueError(
                f"xi must be (num_samples, {len(pairs)}), got {xi.shape}"
            )
        basis = np.stack(
            [math.sqrt(max(p.eigenvalue, 0.0)) * p(points) for p in pairs],
            axis=1,
        )  # (np, r) scaled eigenfunctions
        return xi @ basis.T

    return sampler
