"""Fitting kernel families to measured correlation-vs-distance data.

The paper's experiments use a Gaussian kernel whose decay rate ``c`` is
chosen to "best fit an isotropic linear kernel in 2-D with correlation
distance equal to half the normalized chip length" (§5.1).  Fig. 3(a)
compares the 1-D best fits of the Gaussian and exponential families to the
linear kernel of Friedberg et al. [12] and shows the Gaussian fitting
better.  This module implements both the 1-D curve fits and the 2-D
(area-weighted) fit used to pick the experiment kernel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np
import scipy.optimize

from repro.core.kernels import (
    ExponentialKernel,
    GaussianKernel,
    IsotropicKernel,
    LinearConeKernel,
)


@dataclass(frozen=True)
class KernelFitResult:
    """Outcome of a 1-parameter kernel fit.

    Attributes
    ----------
    kernel:
        The fitted kernel instance.
    parameter:
        The fitted decay-rate parameter ``c``.
    rmse:
        Root-mean-square residual against the target profile over the fit
        distances (with the fit weights applied).
    max_error:
        Maximum absolute residual over the fit distances.
    """

    kernel: IsotropicKernel
    parameter: float
    rmse: float
    max_error: float


def _fit_profile(
    family: Callable[[float], IsotropicKernel],
    distances: np.ndarray,
    target: np.ndarray,
    weights: np.ndarray,
    initial: float,
) -> KernelFitResult:
    """Weighted least-squares fit of a 1-parameter isotropic family."""
    distances = np.asarray(distances, dtype=float)
    target = np.asarray(target, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if distances.shape != target.shape or distances.shape != weights.shape:
        raise ValueError("distances, target and weights must have equal shapes")
    if distances.size == 0:
        raise ValueError("cannot fit a kernel to an empty data set")
    sqrt_w = np.sqrt(weights)

    def residuals(log_c: np.ndarray) -> np.ndarray:
        kernel = family(float(np.exp(log_c[0])))
        return sqrt_w * (kernel.profile(distances) - target)

    # Optimize log(c) so the decay rate stays positive without constraints.
    solution = scipy.optimize.least_squares(residuals, x0=[np.log(initial)])
    c_fit = float(np.exp(solution.x[0]))
    kernel = family(c_fit)
    err = kernel.profile(distances) - target
    rmse = float(np.sqrt(np.sum(weights * err * err) / np.sum(weights)))
    return KernelFitResult(
        kernel=kernel,
        parameter=c_fit,
        rmse=rmse,
        max_error=float(np.max(np.abs(err))),
    )


def fit_gaussian_to_profile(
    distances: Sequence[float],
    target: Sequence[float],
    *,
    weights: Sequence[float] | None = None,
    initial_c: float = 1.0,
) -> KernelFitResult:
    """Least-squares fit of ``exp(-c v²)`` to a correlation profile."""
    distances = np.asarray(distances, dtype=float)
    if weights is None:
        weights = np.ones_like(distances)
    return _fit_profile(GaussianKernel, distances, np.asarray(target, float),
                        np.asarray(weights, float), initial_c)


def fit_exponential_to_profile(
    distances: Sequence[float],
    target: Sequence[float],
    *,
    weights: Sequence[float] | None = None,
    initial_c: float = 1.0,
) -> KernelFitResult:
    """Least-squares fit of ``exp(-c v)`` to a correlation profile."""
    distances = np.asarray(distances, dtype=float)
    if weights is None:
        weights = np.ones_like(distances)
    return _fit_profile(ExponentialKernel, distances, np.asarray(target, float),
                        np.asarray(weights, float), initial_c)


def fit_to_linear_kernel_1d(
    rho: float,
    *,
    num_points: int = 200,
    max_distance: float | None = None,
) -> dict:
    """Reproduce Fig. 3(a): best 1-D fits of Gaussian/exponential to the cone.

    Fits both families to ``K(v) = max(0, 1 - v/rho)`` sampled uniformly on
    ``[0, max_distance]`` (default: the full support ``[0, rho]``).

    Returns a dict with keys ``"gaussian"`` and ``"exponential"`` mapping to
    :class:`KernelFitResult`, plus ``"distances"`` and ``"target"`` so a
    caller can plot the figure.  The paper's headline observation — the
    Gaussian fits the measured (linear) decay better than the exponential —
    shows up as ``gaussian.rmse < exponential.rmse``.
    """
    if max_distance is None:
        max_distance = rho
    cone = LinearConeKernel(rho)
    distances = np.linspace(0.0, max_distance, num_points)
    target = cone.profile(distances)
    gaussian = fit_gaussian_to_profile(distances, target, initial_c=1.0 / rho**2)
    exponential = fit_exponential_to_profile(distances, target, initial_c=1.0 / rho)
    return {
        "gaussian": gaussian,
        "exponential": exponential,
        "distances": distances,
        "target": target,
    }


def fit_gaussian_to_linear_kernel_2d(
    rho: float,
    *,
    num_points: int = 400,
    max_distance: float | None = None,
) -> KernelFitResult:
    """The paper's experiment-kernel construction (§5.1).

    Computes the Gaussian decay rate ``c`` that best fits, in 2-D, the
    isotropic linear kernel with correlation distance ``rho`` ("a cone with a
    base radius of half chip length").  The fit is over separation distances
    sampled on ``[0, max_distance]`` with the 2-D area weight ``w(v) ∝ v``:
    in two dimensions the number of point pairs at separation ``v`` grows
    linearly with ``v``, so an unweighted 1-D fit would over-weight tiny
    separations relative to what a chip full of gate pairs actually sees.
    """
    if max_distance is None:
        max_distance = rho
    cone = LinearConeKernel(rho)
    distances = np.linspace(0.0, max_distance, num_points)
    target = cone.profile(distances)
    weights = np.maximum(distances, distances[1] * 0.5)  # ∝ v, nonzero at v=0
    return fit_gaussian_to_profile(
        distances, target, weights=weights, initial_c=1.0 / rho**2
    )


def paper_experiment_kernel(chip_side: float = 2.0) -> GaussianKernel:
    """The Gaussian kernel used throughout the paper's experiments.

    The die is the normalized square of side ``chip_side`` (the paper uses
    ``D = [-1, 1]²``, side 2) and the linear-kernel correlation distance is
    half the chip length, ``rho = chip_side / 2``.  The returned kernel is
    the 2-D best-fit Gaussian to that cone.
    """
    if chip_side <= 0.0:
        raise ValueError(f"chip_side must be positive, got {chip_side}")
    fit = fit_gaussian_to_linear_kernel_2d(chip_side / 2.0)
    return fit.kernel  # type: ignore[return-value]
