"""Karhunen–Loève Expansion results: truncation, evaluation, reconstruction.

A solved KLE represents the random field as (paper eq. (3))

    p(x, θ) = Σ_j sqrt(λ_j) ξ_j(θ) f_j(x)

with uncorrelated unit-variance RVs ξ_j and L²-orthonormal eigenfunctions
f_j.  In the Galerkin discretization the eigenfunctions are piecewise
constant over the mesh: ``f_j(x) = d_ij`` for ``x ∈ Δ_i``.  This module
packages the eigenpairs together with everything the paper derives from
them:

- the truncation-order criterion of §5.2 (the "1 % rule" giving r = 25),
- the reconstruction matrix ``D_λ = D_r sqrt(Λ_r)`` of §4.3 (eq. 28),
- field-sample generation (the heart of Algorithm 2),
- rank-r kernel reconstruction ``K̂ = Σ λ_j f_j(x) f_j(y)`` (Fig. 3b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.kernels import CovarianceKernel
from repro.mesh.locate import TriangleLocator
from repro.mesh.mesh import TriangleMesh
from repro.utils.rng import SeedLike, as_generator


def select_truncation(
    eigenvalues: np.ndarray,
    total_dimension: int,
    *,
    fraction: float = 0.01,
) -> int:
    """The paper's truncation criterion (§5.2).

    Given the ``m`` computed leading eigenvalues (the paper computes
    m = 200) out of ``total_dimension = n`` total, choose the smallest ``r``
    such that

        λ_m (n - m) + Σ_{i=r+1}^{m} λ_i  ≤  fraction · Σ_{i=1}^{r} λ_i .

    The left side upper-bounds the total unused variance — every uncomputed
    eigenvalue is at most λ_m — so the criterion guarantees the discarded
    variance is below ``fraction`` (1 %) of the retained variance.

    Returns ``m`` itself when even keeping all computed pairs cannot satisfy
    the bound (the caller should compute more eigenpairs).
    """
    eigenvalues = np.asarray(eigenvalues, dtype=float)
    if eigenvalues.ndim != 1 or eigenvalues.size == 0:
        raise ValueError("eigenvalues must be a non-empty 1-D array")
    if np.any(np.diff(eigenvalues) > 1e-12 * max(1.0, eigenvalues[0])):
        raise ValueError("eigenvalues must be sorted in descending order")
    if not 0.0 < fraction < 1.0:
        raise ValueError(f"fraction must be in (0, 1), got {fraction}")
    m = eigenvalues.size
    if total_dimension < m:
        raise ValueError(
            f"total_dimension ({total_dimension}) smaller than the number of "
            f"computed eigenvalues ({m})"
        )
    clipped = np.clip(eigenvalues, 0.0, None)
    tail_bound_const = clipped[-1] * (total_dimension - m)
    cumulative = np.cumsum(clipped)
    total = cumulative[-1]
    for r in range(1, m + 1):
        retained = cumulative[r - 1]
        unused = tail_bound_const + (total - retained)
        if unused <= fraction * retained:
            return r
    return m


@dataclass(frozen=True)
class KLEResult:
    """Leading KLE eigenpairs of a kernel on a mesh.

    Attributes
    ----------
    eigenvalues:
        ``(m,)`` leading eigenvalues, descending.  Small negative values can
        appear from round-off; they are clipped to zero wherever a square
        root is taken.
    d_vectors:
        ``(nt, m)`` Galerkin coefficient vectors ``d`` (one column per
        eigenpair), Φ-normalized so each piecewise-constant eigenfunction
        has unit L²(D) norm.
    mesh:
        The triangulation the expansion lives on.
    kernel:
        The kernel that was expanded (kept for reconstruction/error checks).
    """

    eigenvalues: np.ndarray
    d_vectors: np.ndarray
    mesh: TriangleMesh
    kernel: Optional[CovarianceKernel] = None
    _locator_cache: list = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        eigenvalues = np.asarray(self.eigenvalues, dtype=float)
        d_vectors = np.asarray(self.d_vectors, dtype=float)
        if eigenvalues.ndim != 1:
            raise ValueError("eigenvalues must be 1-D")
        if d_vectors.ndim != 2:
            raise ValueError("d_vectors must be 2-D (nt, m)")
        if d_vectors.shape[1] != eigenvalues.shape[0]:
            raise ValueError(
                f"d_vectors has {d_vectors.shape[1]} columns but there are "
                f"{eigenvalues.shape[0]} eigenvalues"
            )
        if d_vectors.shape[0] != self.mesh.num_triangles:
            raise ValueError(
                f"d_vectors has {d_vectors.shape[0]} rows but the mesh has "
                f"{self.mesh.num_triangles} triangles"
            )
        object.__setattr__(self, "eigenvalues", eigenvalues)
        object.__setattr__(self, "d_vectors", d_vectors)

    # ------------------------------------------------------------------
    # Basic queries.
    # ------------------------------------------------------------------
    @property
    def num_eigenpairs(self) -> int:
        return self.eigenvalues.shape[0]

    @property
    def locator(self) -> TriangleLocator:
        """Lazily built point-location index (Algorithm 2, line 5)."""
        if not self._locator_cache:
            self._locator_cache.append(TriangleLocator(self.mesh))
        return self._locator_cache[0]

    def select_truncation(self, *, fraction: float = 0.01) -> int:
        """Apply the paper's 1 %-criterion using this result's eigenvalues.

        The bound treats all ``n - m`` uncomputed eigenvalues as equal to
        the smallest computed one, exactly as in §5.2.
        """
        return select_truncation(
            self.eigenvalues, self.mesh.num_triangles, fraction=fraction
        )

    def variance_captured(self, r: int) -> float:
        """Fraction of the total field variance carried by the first r pairs.

        The exact total variance of a normalized field is the domain area
        (``∫_D K(x,x) dx = |D|``, and Mercer gives ``Σ_j λ_j = |D|``).
        """
        self._check_r(r)
        clipped = np.clip(self.eigenvalues, 0.0, None)
        return float(np.sum(clipped[:r]) / self.mesh.total_area())

    def _check_r(self, r: int) -> None:
        if not 1 <= r <= self.num_eigenpairs:
            raise ValueError(
                f"r must be in [1, {self.num_eigenpairs}], got {r}"
            )

    # ------------------------------------------------------------------
    # Eigenfunction evaluation.
    # ------------------------------------------------------------------
    def eigenfunction_on_triangles(self, j: int) -> np.ndarray:
        """Values of eigenfunction ``f_j`` on each triangle (it is constant
        per triangle): the j-th column of ``D``."""
        if not 0 <= j < self.num_eigenpairs:
            raise ValueError(f"j must be in [0, {self.num_eigenpairs}), got {j}")
        return self.d_vectors[:, j]

    def eigenfunction_at(self, j: int, points: np.ndarray) -> np.ndarray:
        """Evaluate eigenfunction ``f_j`` at arbitrary die locations."""
        triangle_indices = self.locator.locate_many(np.asarray(points, float))
        return self.d_vectors[triangle_indices, j]

    # ------------------------------------------------------------------
    # Reconstruction (paper §4.3).
    # ------------------------------------------------------------------
    def reconstruction_matrix(self, r: int) -> np.ndarray:
        """``D_λ = D_r sqrt(Λ_r)`` — (nt, r), the linear map of eq. (28).

        A sample ``ξ`` of r iid standard normals maps to per-triangle field
        values ``p_Δ = D_λ ξ``.
        """
        self._check_r(r)
        sqrt_lambda = np.sqrt(np.clip(self.eigenvalues[:r], 0.0, None))
        return self.d_vectors[:, :r] * sqrt_lambda[None, :]

    def sample_triangle_values(
        self,
        num_samples: int,
        *,
        r: Optional[int] = None,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Draw field outcomes as per-triangle values: ``(num_samples, nt)``.

        This is lines 2–3 of Algorithm 2: ``Ξ ← RandNormal(N, r)`` followed
        by ``P_Δ ← D_λ Ξ``.
        """
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        if r is None:
            r = self.num_eigenpairs
        self._check_r(r)
        rng = as_generator(seed)
        xi = rng.standard_normal((num_samples, r))
        return xi @ self.reconstruction_matrix(r).T

    def sample_at_points(
        self,
        points: np.ndarray,
        num_samples: int,
        *,
        r: Optional[int] = None,
        seed: SeedLike = None,
        triangle_indices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw field outcomes at given die locations: ``(num_samples, np)``.

        Full Algorithm 2: sample per-triangle values, then gather each
        point's containing-triangle row.  ``triangle_indices`` can be
        precomputed once (per placement) with ``locator.locate_many`` and
        reused across parameters/samples.
        """
        points = np.asarray(points, dtype=float)
        if triangle_indices is None:
            triangle_indices = self.locator.locate_many(points)
        samples = self.sample_triangle_values(num_samples, r=r, seed=seed)
        return samples[:, triangle_indices]

    def reconstruct_kernel(
        self,
        x_points: np.ndarray,
        y_points: np.ndarray,
        *,
        r: Optional[int] = None,
    ) -> np.ndarray:
        """Rank-r Mercer reconstruction ``K̂(x, y) = Σ_j λ_j f_j(x) f_j(y)``.

        Used for Fig. 3(b): comparing ``K̂`` against the true kernel
        measures how much correlation structure the truncation preserves.
        Returns shape ``(len(x_points), len(y_points))``.
        """
        if r is None:
            r = self.num_eigenpairs
        self._check_r(r)
        x_points = np.asarray(x_points, dtype=float).reshape(-1, 2)
        y_points = np.asarray(y_points, dtype=float).reshape(-1, 2)
        x_tri = self.locator.locate_many(x_points)
        y_tri = self.locator.locate_many(y_points)
        lam = np.clip(self.eigenvalues[:r], 0.0, None)
        fx = self.d_vectors[x_tri, :r]
        fy = self.d_vectors[y_tri, :r]
        return (fx * lam[None, :]) @ fy.T

    def covariance_on_triangles(self, *, r: Optional[int] = None) -> np.ndarray:
        """Rank-r covariance among the per-triangle values: ``D_λ D_λᵀ``."""
        d_lambda = self.reconstruction_matrix(
            self.num_eigenpairs if r is None else r
        )
        return d_lambda @ d_lambda.T

    def truncate(self, r: int) -> "KLEResult":
        """A new result keeping only the first ``r`` eigenpairs."""
        self._check_r(r)
        return KLEResult(
            eigenvalues=self.eigenvalues[:r].copy(),
            d_vectors=self.d_vectors[:, :r].copy(),
            mesh=self.mesh,
            kernel=self.kernel,
        )
