"""The paper's two Monte-Carlo parameter-sample generators (§5.1).

Both produce, for each statistical parameter ``p_j`` (L, W, Vt, tox), an
``N × N_g`` matrix of normalized parameter values — one row per MC sample,
one column per gate — following that parameter's covariance kernel.  The
parameters are mutually independent (paper §2.1 assumption).

- :class:`CholeskySampleGenerator` — **Algorithm 1**, the exact reference:
  assemble the full ``N_g × N_g`` gate covariance, factorize, multiply.
  Cost grows as ``O(N_g³)`` for the factorization plus ``O(N · N_g²)`` for
  the sampling — the dimensionality wall the paper attacks.
- :class:`KLESampleGenerator` — **Algorithm 2**, the paper's method: draw
  ``N × r`` iid normals, map through ``D_λ`` (r ≈ 25), then gather each
  gate's containing-triangle row.  Cost ``O(N · r · n + N_g)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.core.kernels import CovarianceKernel
from repro.core.kle import KLEResult
from repro.utils.linalg import cholesky_with_jitter
from repro.utils.rng import SeedLike, spawn_generators


@dataclass
class SampleGenerationResult:
    """Generated parameter samples plus the wall-clock cost breakdown.

    Attributes
    ----------
    samples:
        Mapping parameter name → ``(N, N_g)`` normalized sample matrix.
    setup_seconds:
        One-time cost (Cholesky factorization / gate-to-triangle lookup).
    generate_seconds:
        Per-run sampling cost (random draws and matrix products).
    """

    samples: Dict[str, np.ndarray]
    setup_seconds: float = 0.0
    generate_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.setup_seconds + self.generate_seconds


def _validate_cross_correlation(
    cross_correlation: Optional[np.ndarray],
    num_parameters: int,
    shared_object: bool,
) -> Optional[np.ndarray]:
    """Check a parameter cross-correlation matrix and return its Cholesky.

    The paper assumes parameters vary independently (§2.1); this optional
    extension supports physically coupled parameters (e.g. L and W through
    a shared lithography step) with the separable model ``C ⊗ K``: the same
    spatial kernel K for every parameter, coupled by the ``Np × Np``
    correlation ``C``.  Requires all parameters to share one kernel/KLE
    object (otherwise ``C ⊗ K`` is not the model being asked for).
    """
    if cross_correlation is None:
        return None
    matrix = np.asarray(cross_correlation, dtype=float)
    if matrix.shape != (num_parameters, num_parameters):
        raise ValueError(
            f"cross_correlation must be ({num_parameters}, {num_parameters}),"
            f" got {matrix.shape}"
        )
    if not np.allclose(matrix, matrix.T, atol=1e-10):
        raise ValueError("cross_correlation must be symmetric")
    if not np.allclose(np.diag(matrix), 1.0, atol=1e-10):
        raise ValueError("cross_correlation must have a unit diagonal")
    if not shared_object:
        raise ValueError(
            "cross_correlation requires all parameters to share one "
            "kernel/KLE object (the separable C ⊗ K model)"
        )
    return cholesky_with_jitter(matrix)


class CholeskySampleGenerator:
    """Algorithm 1: exact correlated samples via full-covariance Cholesky.

    Parameters
    ----------
    kernels:
        Mapping parameter name → covariance kernel.  Parameters sharing the
        *same kernel object* share one factorization (the paper factorizes
        per parameter; sharing only changes setup cost, not statistics).
    cross_correlation:
        Optional ``Np × Np`` parameter correlation matrix for the separable
        ``C ⊗ K`` model (requires a shared kernel object); ``None`` keeps
        the paper's independent-parameters assumption.
    """

    def __init__(
        self,
        kernels: Mapping[str, CovarianceKernel],
        *,
        cross_correlation: Optional[np.ndarray] = None,
    ):
        if not kernels:
            raise ValueError("need at least one statistical parameter")
        self.kernels = dict(kernels)
        shared = len({id(k) for k in self.kernels.values()}) == 1
        self._cross_upper = _validate_cross_correlation(
            cross_correlation, len(self.kernels), shared
        )
        self._factor_cache: Dict[int, np.ndarray] = {}
        self._cached_locations: Optional[np.ndarray] = None

    def prepare(self, gate_locations: np.ndarray) -> float:
        """Factorize the gate covariance for each distinct kernel.

        Returns the setup wall-clock seconds.  Re-preparing with identical
        locations is a no-op.
        """
        gate_locations = np.asarray(gate_locations, dtype=float).reshape(-1, 2)
        if (
            self._cached_locations is not None
            and self._cached_locations.shape == gate_locations.shape
            and np.array_equal(self._cached_locations, gate_locations)
        ):
            return 0.0
        start = time.perf_counter()
        self._factor_cache.clear()
        for kernel in self.kernels.values():
            key = id(kernel)
            if key not in self._factor_cache:
                self._factor_cache[key] = cholesky_with_jitter(
                    kernel.matrix(gate_locations)
                )
        self._cached_locations = gate_locations.copy()
        return time.perf_counter() - start

    def generate(
        self,
        gate_locations: np.ndarray,
        num_samples: int,
        *,
        seed: SeedLike = None,
    ) -> SampleGenerationResult:
        """Produce the per-parameter ``(N, N_g)`` sample matrices."""
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        setup_seconds = self.prepare(gate_locations)
        generators = spawn_generators(seed, len(self.kernels))
        start = time.perf_counter()
        raw: Dict[str, np.ndarray] = {}
        for (name, kernel), rng in zip(self.kernels.items(), generators):
            upper = self._factor_cache[id(kernel)]
            normals = rng.standard_normal((num_samples, upper.shape[0]))
            raw[name] = normals @ upper
        samples = _mix_parameters(raw, self._cross_upper)
        generate_seconds = time.perf_counter() - start
        return SampleGenerationResult(samples, setup_seconds, generate_seconds)


class KLESampleGenerator:
    """Algorithm 2: reduced-dimensionality samples from a solved KLE.

    Parameters
    ----------
    kles:
        Mapping parameter name → :class:`KLEResult`.  Parameters may share
        one KLE object (same kernel/mesh) — each still gets independent RVs.
    r:
        Truncation order (number of retained RVs per parameter); ``None``
        applies each KLE's own 1 %-criterion (:func:`select_truncation`).
    """

    def __init__(
        self,
        kles: Mapping[str, KLEResult],
        *,
        r: Optional[int] = None,
        cross_correlation: Optional[np.ndarray] = None,
        sampler: str = "pseudo",
    ):
        if not kles:
            raise ValueError("need at least one statistical parameter")
        if sampler not in ("pseudo", "antithetic", "sobol"):
            raise ValueError(
                f"sampler must be 'pseudo', 'antithetic' or 'sobol', "
                f"got {sampler!r}"
            )
        self.sampler = sampler
        self.kles = dict(kles)
        shared = len({id(k) for k in self.kles.values()}) == 1
        self._cross_upper = _validate_cross_correlation(
            cross_correlation, len(self.kles), shared
        )
        self.r: Dict[str, int] = {}
        for name, kle in self.kles.items():
            order = kle.select_truncation() if r is None else r
            if not 1 <= order <= kle.num_eigenpairs:
                raise ValueError(
                    f"r={order} outside [1, {kle.num_eigenpairs}] for {name!r}"
                )
            self.r[name] = order
        self._reconstruction: Dict[str, np.ndarray] = {
            name: kle.reconstruction_matrix(self.r[name])
            for name, kle in self.kles.items()
        }
        self._triangle_cache: Dict[int, np.ndarray] = {}
        self._cached_locations: Optional[np.ndarray] = None

    def prepare(self, gate_locations: np.ndarray) -> float:
        """Resolve each gate's containing triangle (Algorithm 2 line 5).

        Returns the setup wall-clock seconds; cached per location set.
        """
        gate_locations = np.asarray(gate_locations, dtype=float).reshape(-1, 2)
        if (
            self._cached_locations is not None
            and self._cached_locations.shape == gate_locations.shape
            and np.array_equal(self._cached_locations, gate_locations)
        ):
            return 0.0
        start = time.perf_counter()
        self._triangle_cache.clear()
        for kle in self.kles.values():
            key = id(kle)
            if key not in self._triangle_cache:
                self._triangle_cache[key] = kle.locator.locate_many(gate_locations)
        self._cached_locations = gate_locations.copy()
        return time.perf_counter() - start

    def generate(
        self,
        gate_locations: np.ndarray,
        num_samples: int,
        *,
        seed: SeedLike = None,
    ) -> SampleGenerationResult:
        """Produce the per-parameter ``(N, N_g)`` sample matrices."""
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        setup_seconds = self.prepare(gate_locations)
        generators = spawn_generators(seed, len(self.kles))
        start = time.perf_counter()
        raw: Dict[str, np.ndarray] = {}
        if self.sampler == "sobol":
            # One joint Sobol design over all parameters' RVs: slicing a
            # single low-discrepancy point set keeps the ξ blocks jointly
            # uniform.  (Independently scrambled engines are *strongly*
            # cross-correlated — a classic QMC pitfall.)
            total_dims = sum(self.r[name] for name in self.kles)
            joint = _draw_normals(
                generators[0], num_samples, total_dims, "sobol"
            )
            offset = 0
            xi_blocks: Dict[str, np.ndarray] = {}
            for name in self.kles:
                xi_blocks[name] = joint[:, offset : offset + self.r[name]]
                offset += self.r[name]
        else:
            xi_blocks = {
                name: _draw_normals(rng, num_samples, self.r[name], self.sampler)
                for (name, _kle), rng in zip(self.kles.items(), generators)
            }
        for name, kle in self.kles.items():
            d_lambda = self._reconstruction[name]  # (nt, r)
            triangle_values = xi_blocks[name] @ d_lambda.T  # (N, nt)
            gate_triangles = self._triangle_cache[id(kle)]
            raw[name] = triangle_values[:, gate_triangles]
        samples = _mix_parameters(raw, self._cross_upper)
        generate_seconds = time.perf_counter() - start
        return SampleGenerationResult(samples, setup_seconds, generate_seconds)


def _draw_normals(
    rng: np.random.Generator,
    num_samples: int,
    dimension: int,
    sampler: str,
) -> np.ndarray:
    """Standard-normal draws with optional variance reduction.

    - ``"pseudo"``: plain Monte Carlo.
    - ``"antithetic"``: pairs ``(z, -z)`` — cancels odd-moment noise.
    - ``"sobol"``: scrambled Sobol' low-discrepancy points mapped through
      the normal inverse CDF.  QMC is only effective in *low* dimension —
      exactly what the KLE truncation delivers (r ≈ 25 per parameter vs
      thousands of gate RVs), so this option is a direct dividend of the
      paper's dimensionality reduction.
    """
    if sampler == "pseudo":
        return rng.standard_normal((num_samples, dimension))
    if sampler == "antithetic":
        half = (num_samples + 1) // 2
        base = rng.standard_normal((half, dimension))
        paired = np.concatenate([base, -base], axis=0)
        return paired[:num_samples]
    if sampler == "sobol":
        from scipy.stats import norm, qmc

        engine = qmc.Sobol(
            d=dimension, scramble=True,
            seed=int(rng.integers(0, 2**63 - 1)),
        )
        # Sobol' balance properties hold at powers of two; draw the next
        # power and trim rather than emit an unbalanced tail.
        exponent = max(int(np.ceil(np.log2(max(num_samples, 1)))), 0)
        uniforms = engine.random_base2(exponent)[:num_samples]
        # Guard the open-interval requirement of the inverse CDF.
        uniforms = np.clip(uniforms, 1e-12, 1.0 - 1e-12)
        return norm.ppf(uniforms)
    raise ValueError(f"unknown sampler {sampler!r}")


def _mix_parameters(
    raw: Dict[str, np.ndarray],
    cross_upper: Optional[np.ndarray],
) -> Dict[str, np.ndarray]:
    """Couple independent per-parameter fields by the C-Cholesky mix.

    With ``L = cross_upper.T`` (lower factor of C) the mixed fields
    ``P_j = Σ_k L[j, k] W_k`` have cross-covariance
    ``Cov(P_j(x), P_m(y)) = C[j, m] K(x, y)`` — the separable C ⊗ K model.
    """
    if cross_upper is None:
        return raw
    names = list(raw)
    lower = cross_upper.T
    mixed: Dict[str, np.ndarray] = {}
    for j, name in enumerate(names):
        result = lower[j, 0] * raw[names[0]]
        for k in range(1, j + 1):
            # Structural sparsity of the Cholesky factor: entries are
            # assigned exactly 0.0, never computed, so exact != is right.
            if lower[j, k] != 0.0:  # repro-lint: disable=REPRO-FLOAT001
                result = result + lower[j, k] * raw[names[k]]
        mixed[name] = result
    return mixed
