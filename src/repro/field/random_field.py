"""The grid-less random-field model of intra-die variation (paper §2.2).

A statistical parameter ``p`` (normalized L, W, Vt or tox) is modeled as a
Gaussian random field ``p(x, θ)`` over the die with zero mean, unit variance
and covariance kernel ``K``.  :class:`RandomField` provides *exact*
sampling at arbitrary finite point sets via Cholesky factorization of the
point-set covariance matrix — the reference generator of the paper's
Algorithm 1 — plus conditional simulation and variogram estimation for
model-checking.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.kernels import CovarianceKernel
from repro.utils.linalg import cholesky_with_jitter
from repro.utils.rng import SeedLike, as_generator


class RandomField:
    """A zero-mean, unit-variance Gaussian random field with kernel ``K``.

    Parameters
    ----------
    kernel:
        A valid covariance kernel (see :mod:`repro.core.kernels`).
    mean, std:
        Optional affine de-normalization: physical samples are
        ``mean + std * normalized``.  Defaults give the normalized field
        the paper works with.
    """

    def __init__(
        self,
        kernel: CovarianceKernel,
        *,
        mean: float = 0.0,
        std: float = 1.0,
    ):
        if std <= 0.0:
            raise ValueError(f"std must be positive, got {std}")
        self.kernel = kernel
        self.mean = float(mean)
        self.std = float(std)

    # ------------------------------------------------------------------
    # Exact sampling (Algorithm 1's generator).
    # ------------------------------------------------------------------
    def cholesky_factor(self, points: np.ndarray) -> np.ndarray:
        """Upper Cholesky factor ``U`` of the covariance at ``points``.

        ``U.T @ U = K(points, points)``; the paper's Algorithm 1 line 3.
        A tiny diagonal jitter is added automatically when round-off makes
        the matrix numerically indefinite.
        """
        return cholesky_with_jitter(self.kernel.matrix(points))

    def sample(
        self,
        points: np.ndarray,
        num_samples: int,
        *,
        seed: SeedLike = None,
        cholesky_upper: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Draw exact field outcomes at ``points``: ``(num_samples, np)``.

        Algorithm 1 lines 3–4: ``P ← RandNormal(N, Np) · U``.  Pass a
        precomputed ``cholesky_upper`` to amortize the factorization across
        parameters sharing a kernel.
        """
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        if cholesky_upper is None:
            cholesky_upper = self.cholesky_factor(points)
        elif cholesky_upper.shape != (len(points), len(points)):
            raise ValueError(
                f"cholesky_upper shape {cholesky_upper.shape} does not match "
                f"{len(points)} points"
            )
        rng = as_generator(seed)
        normals = rng.standard_normal((num_samples, len(points)))
        return self.mean + self.std * (normals @ cholesky_upper)

    def sample_on_grid(
        self,
        bounds: Tuple[float, float, float, float],
        resolution: int,
        num_samples: int,
        *,
        seed: SeedLike = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample full-chip outcome maps (the paper's Fig. 1(b) pictures).

        Returns ``(points, samples)`` where ``points`` is the
        ``(resolution², 2)`` grid and ``samples`` is
        ``(num_samples, resolution²)``; reshape a row to
        ``(resolution, resolution)`` to get one outcome image.
        """
        xmin, ymin, xmax, ymax = bounds
        xs = np.linspace(xmin, xmax, resolution)
        ys = np.linspace(ymin, ymax, resolution)
        grid_x, grid_y = np.meshgrid(xs, ys, indexing="xy")
        points = np.column_stack([grid_x.ravel(), grid_y.ravel()])
        return points, self.sample(points, num_samples, seed=seed)

    # ------------------------------------------------------------------
    # Conditional simulation (measurement-conditioned outcomes).
    # ------------------------------------------------------------------
    def conditional_sample(
        self,
        observed_points: np.ndarray,
        observed_values: np.ndarray,
        query_points: np.ndarray,
        num_samples: int,
        *,
        seed: SeedLike = None,
        noise_variance: float = 0.0,
    ) -> np.ndarray:
        """Sample the field at ``query_points`` given exact/noisy observations.

        Standard Gaussian conditioning (kriging): with observations ``y`` at
        ``X_o``, the conditional field at ``X_q`` is Gaussian with mean
        ``K_qo (K_oo + σ²I)⁻¹ y`` and covariance
        ``K_qq - K_qo (K_oo + σ²I)⁻¹ K_oq``.  Supports what-if analyses such
        as conditioning a timing run on wafer-probe measurements.
        """
        observed_points = np.asarray(observed_points, float).reshape(-1, 2)
        observed_values = np.asarray(observed_values, float).reshape(-1)
        query_points = np.asarray(query_points, float).reshape(-1, 2)
        if len(observed_points) != len(observed_values):
            raise ValueError("observed points/values length mismatch")
        if noise_variance < 0.0:
            raise ValueError(f"noise_variance must be >= 0, got {noise_variance}")
        normalized = (observed_values - self.mean) / self.std
        k_oo = self.kernel.matrix(observed_points)
        k_oo[np.diag_indices_from(k_oo)] += noise_variance + 1e-12
        k_qo = self.kernel.matrix(query_points, observed_points)
        k_qq = self.kernel.matrix(query_points)
        solve = np.linalg.solve
        alpha = solve(k_oo, normalized)
        cond_mean = k_qo @ alpha
        cond_cov = k_qq - k_qo @ solve(k_oo, k_qo.T)
        cond_cov = 0.5 * (cond_cov + cond_cov.T)
        upper = cholesky_with_jitter(cond_cov)
        rng = as_generator(seed)
        normals = rng.standard_normal((num_samples, len(query_points)))
        samples = cond_mean[None, :] + normals @ upper
        return self.mean + self.std * samples

    # ------------------------------------------------------------------
    # Model checking.
    # ------------------------------------------------------------------
    def empirical_correlation(
        self,
        samples: np.ndarray,
        points: np.ndarray,
        num_bins: int = 20,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Distance-binned empirical correlation of field samples.

        Returns ``(bin_centers, empirical, theoretical)`` where
        ``theoretical`` is the kernel's prediction at the bin centres (only
        meaningful for isotropic kernels).  This is how one checks sampled
        outcomes against the model — and, with silicon data instead of
        samples, how kernels like eq. (6) are extracted in the first place.
        """
        samples = np.asarray(samples, dtype=float)
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        if samples.ndim != 2 or samples.shape[1] != len(points):
            raise ValueError(
                f"samples must be (N, {len(points)}), got {samples.shape}"
            )
        centered = samples - samples.mean(axis=0, keepdims=True)
        stds = centered.std(axis=0)
        # Exact-zero guard on a computed std: a constant column yields
        # a bitwise 0.0 and must not be divided by.
        stds[stds == 0.0] = 1.0  # repro-lint: disable=REPRO-FLOAT001
        centered = centered / stds
        corr = (centered.T @ centered) / len(samples)
        diff = points[:, None, :] - points[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        iu = np.triu_indices(len(points), k=1)
        dist_flat = dist[iu]
        corr_flat = corr[iu]
        edges = np.linspace(0.0, float(dist_flat.max()) + 1e-12, num_bins + 1)
        centers = 0.5 * (edges[:-1] + edges[1:])
        empirical = np.full(num_bins, np.nan)
        for b in range(num_bins):
            mask = (dist_flat >= edges[b]) & (dist_flat < edges[b + 1])
            if np.any(mask):
                empirical[b] = float(corr_flat[mask].mean())
        pairs = np.column_stack([centers, np.zeros(num_bins)])
        origin = np.zeros((num_bins, 2))
        theoretical = self.kernel(pairs, origin)
        return centers, empirical, theoretical

    def __repr__(self) -> str:
        return (
            f"RandomField(kernel={self.kernel!r}, mean={self.mean:g}, "
            f"std={self.std:g})"
        )
