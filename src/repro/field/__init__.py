"""Random-field models of intra-die variation and MC sample generation.

- :class:`RandomField` — grid-less kernel model with exact Cholesky
  sampling (the Algorithm 1 substrate).
- :class:`GridModel` / :class:`GridPCA` — the grid-based baseline [5].
- :class:`CholeskySampleGenerator` / :class:`KLESampleGenerator` — the
  paper's Algorithm 1 and Algorithm 2 parameter-sample generators.
"""

from repro.field.random_field import RandomField
from repro.field.grid_model import (
    GridModel,
    GridPCA,
    adhoc_taper_grid_model,
    grid_model_from_kernel,
)
from repro.field.sampling import (
    CholeskySampleGenerator,
    KLESampleGenerator,
    SampleGenerationResult,
)

__all__ = [
    "RandomField",
    "GridModel",
    "GridPCA",
    "adhoc_taper_grid_model",
    "grid_model_from_kernel",
    "CholeskySampleGenerator",
    "KLESampleGenerator",
    "SampleGenerationResult",
]
