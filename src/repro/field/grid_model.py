"""The grid-based spatial-correlation model + PCA (paper §2.1 baseline).

This is the Chang–Sapatnekar [5] style model the paper argues against: the
die is divided into ``N_G`` rectangular grid cells, each cell gets one RV
per parameter, and an ``N_G × N_G`` correlation matrix couples the cells.
PCA (the discrete form of KLE) extracts uncorrelated components.

We implement it faithfully — including its failure modes — so the
KLE-vs-PCA ablation bench can compare both reductions at equal RV budget,
and so tests can demonstrate the validity problems (ad-hoc correlation
matrices that are not PSD) that motivate the kernel-based model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.kernels import CovarianceKernel
from repro.utils.linalg import is_positive_semidefinite, nearest_psd
from repro.utils.rng import SeedLike, as_generator


@dataclass(frozen=True)
class GridModel:
    """A regular grid over the die with a cell-to-cell correlation matrix.

    Attributes
    ----------
    bounds: die rectangle ``(xmin, ymin, xmax, ymax)``.
    cells_x, cells_y: grid resolution (``N_G = cells_x * cells_y``).
    correlation: ``(N_G, N_G)`` cell correlation matrix.
    """

    bounds: Tuple[float, float, float, float]
    cells_x: int
    cells_y: int
    correlation: np.ndarray

    def __post_init__(self) -> None:
        xmin, ymin, xmax, ymax = self.bounds
        if xmax <= xmin or ymax <= ymin:
            raise ValueError("bounds must describe a positive-area rectangle")
        if self.cells_x < 1 or self.cells_y < 1:
            raise ValueError("grid must have at least one cell per axis")
        corr = np.asarray(self.correlation, dtype=float)
        n = self.num_cells
        if corr.shape != (n, n):
            raise ValueError(
                f"correlation must be ({n}, {n}), got {corr.shape}"
            )
        object.__setattr__(self, "correlation", corr)

    @property
    def num_cells(self) -> int:
        return self.cells_x * self.cells_y

    def cell_centers(self) -> np.ndarray:
        """``(N_G, 2)`` centres of the grid cells (row-major, x fastest)."""
        xmin, ymin, xmax, ymax = self.bounds
        dx = (xmax - xmin) / self.cells_x
        dy = (ymax - ymin) / self.cells_y
        xs = xmin + dx * (np.arange(self.cells_x) + 0.5)
        ys = ymin + dy * (np.arange(self.cells_y) + 0.5)
        grid_x, grid_y = np.meshgrid(xs, ys, indexing="xy")
        return np.column_stack([grid_x.ravel(), grid_y.ravel()])

    def cell_of_points(self, points: np.ndarray) -> np.ndarray:
        """Grid-cell index of each point (row-major, x fastest)."""
        points = np.asarray(points, dtype=float).reshape(-1, 2)
        xmin, ymin, xmax, ymax = self.bounds
        fx = (points[:, 0] - xmin) / (xmax - xmin)
        fy = (points[:, 1] - ymin) / (ymax - ymin)
        if np.any((fx < 0) | (fx > 1) | (fy < 0) | (fy > 1)):
            raise ValueError("some points fall outside the grid bounds")
        ix = np.minimum((fx * self.cells_x).astype(int), self.cells_x - 1)
        iy = np.minimum((fy * self.cells_y).astype(int), self.cells_y - 1)
        return iy * self.cells_x + ix

    def is_valid(self, *, tol: float = 1e-8) -> bool:
        """PSD check — the validity question grid models cannot guarantee."""
        return is_positive_semidefinite(self.correlation, tol=tol)

    def repaired(self) -> "GridModel":
        """Nearest-PSD repair of an invalid correlation matrix.

        Clips negative eigenvalues and re-normalizes the diagonal to 1,
        the usual ad-hoc fix (with the usual distortion of off-diagonals).
        """
        fixed = nearest_psd(self.correlation)
        d = np.sqrt(np.clip(np.diag(fixed), 1e-300, None))
        fixed = fixed / np.outer(d, d)
        return GridModel(self.bounds, self.cells_x, self.cells_y, fixed)


def grid_model_from_kernel(
    kernel: CovarianceKernel,
    bounds: Tuple[float, float, float, float],
    cells_x: int,
    cells_y: int,
) -> GridModel:
    """Build a grid model by sampling a kernel at the cell centres.

    This is the principled way to populate a grid model (and inherits the
    kernel's validity); the distance-taper constructor below shows the
    ad-hoc alternative that can go wrong.
    """
    centers_model = GridModel(
        bounds, cells_x, cells_y, np.eye(cells_x * cells_y)
    )
    centers = centers_model.cell_centers()
    return GridModel(bounds, cells_x, cells_y, kernel.matrix(centers))


def adhoc_taper_grid_model(
    bounds: Tuple[float, float, float, float],
    cells_x: int,
    cells_y: int,
    correlation_distance: float,
) -> GridModel:
    """An *ad-hoc* grid model with linearly tapering cell correlations.

    Assigns ``max(0, 1 - d/correlation_distance)`` between cell centres —
    the intuitive engineering choice, which in 2-D is **not** guaranteed
    PSD (this is the grid-model pitfall the paper and [1] describe; tests
    exercise it as a negative example).
    """
    model = GridModel(bounds, cells_x, cells_y, np.eye(cells_x * cells_y))
    centers = model.cell_centers()
    diff = centers[:, None, :] - centers[None, :, :]
    dist = np.sqrt(np.sum(diff * diff, axis=-1))
    corr = np.clip(1.0 - dist / correlation_distance, 0.0, None)
    return GridModel(bounds, cells_x, cells_y, corr)


class GridPCA:
    """PCA reduction of a grid model (paper eq. (1)) — the KLE baseline.

    Decomposes the cell correlation matrix ``K = V Λ Vᵀ`` and keeps the
    ``r`` leading components: cell values are reconstructed as
    ``p = Σ_j sqrt(λ_j) v_j p'_j`` from uncorrelated ``p'_j``.
    """

    def __init__(self, model: GridModel):
        self.model = model
        corr = 0.5 * (model.correlation + model.correlation.T)
        eigvals, eigvecs = np.linalg.eigh(corr)
        order = np.argsort(eigvals)[::-1]
        self.eigenvalues = eigvals[order]
        self.eigenvectors = eigvecs[:, order]

    def variance_captured(self, r: int) -> float:
        """Fraction of total grid-RV variance in the first r components."""
        self._check_r(r)
        clipped = np.clip(self.eigenvalues, 0.0, None)
        total = float(clipped.sum())
        # Clipped eigenvalue sum is bitwise 0.0 only for the degenerate
        # all-zero spectrum; exact comparison intended.
        if total == 0.0:  # repro-lint: disable=REPRO-FLOAT001
            return 0.0
        return float(clipped[:r].sum() / total)

    def components_needed(self, fraction: float) -> int:
        """Smallest r capturing at least ``fraction`` of the variance."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        clipped = np.clip(self.eigenvalues, 0.0, None)
        cum = np.cumsum(clipped) / clipped.sum()
        return int(np.searchsorted(cum, fraction) + 1)

    def _check_r(self, r: int) -> None:
        if not 1 <= r <= len(self.eigenvalues):
            raise ValueError(f"r must be in [1, {len(self.eigenvalues)}], got {r}")

    def reconstruction_matrix(self, r: int) -> np.ndarray:
        """``(N_G, r)`` map from r uncorrelated RVs to cell values."""
        self._check_r(r)
        sqrt_lambda = np.sqrt(np.clip(self.eigenvalues[:r], 0.0, None))
        return self.eigenvectors[:, :r] * sqrt_lambda[None, :]

    def sample_cell_values(
        self,
        num_samples: int,
        r: int,
        *,
        seed: SeedLike = None,
    ) -> np.ndarray:
        """Sample per-cell parameter values: ``(num_samples, N_G)``."""
        if num_samples < 1:
            raise ValueError(f"num_samples must be >= 1, got {num_samples}")
        rng = as_generator(seed)
        basis = self.reconstruction_matrix(r)
        xi = rng.standard_normal((num_samples, r))
        return xi @ basis.T

    def sample_at_points(
        self,
        points: np.ndarray,
        num_samples: int,
        r: int,
        *,
        seed: SeedLike = None,
        cell_indices: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sample parameter values at die locations via their grid cell."""
        if cell_indices is None:
            cell_indices = self.model.cell_of_points(points)
        cells = self.sample_cell_values(num_samples, r, seed=seed)
        return cells[:, cell_indices]
