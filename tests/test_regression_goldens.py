"""Golden-value regression locks.

Pins the key reproduced quantities so an accidental behavior change in any
substrate (mesher, fit, eigensolve, generator, placer, timer) surfaces as
a visible diff rather than silently shifting every experiment.  Values are
deterministic (fixed seeds); tolerances cover floating-point/platform
noise only.  If a change is *intentional*, update the goldens and the
corresponding rows in EXPERIMENTS.md together.
"""

import numpy as np
import pytest

from repro.circuit.benchmarks import load_circuit
from repro.core.galerkin import solve_kle
from repro.core.kernel_fit import paper_experiment_kernel
from repro.mesh.refine import paper_mesh


@pytest.fixture(scope="module")
def paper_setup():
    kernel = paper_experiment_kernel()
    mesh = paper_mesh()
    kle = solve_kle(kernel, mesh, num_eigenpairs=200)
    return kernel, mesh, kle


def test_golden_experiment_kernel_c(paper_setup):
    kernel, _mesh, _kle = paper_setup
    assert kernel.c == pytest.approx(2.72394, rel=1e-4)


def test_golden_paper_mesh_size(paper_setup):
    _kernel, mesh, _kle = paper_setup
    assert mesh.num_triangles == 1580  # paper: 1546 with Triangle
    assert mesh.num_vertices == 851
    assert mesh.min_angle_degrees() == pytest.approx(28.17, abs=0.2)


def test_golden_leading_eigenvalues(paper_setup):
    _kernel, _mesh, kle = paper_setup
    expected = [0.86391, 0.56263, 0.56261, 0.36645, 0.27960]
    assert np.allclose(kle.eigenvalues[:5], expected, rtol=2e-3)


def test_golden_truncation_order(paper_setup):
    _kernel, _mesh, kle = paper_setup
    assert kle.select_truncation() == 24  # paper: 25
    assert kle.variance_captured(24) == pytest.approx(0.9902, abs=2e-3)


def test_golden_reconstruction_error(paper_setup):
    from repro.core.validation import kernel_reconstruction_report

    _kernel, _mesh, kle = paper_setup
    report = kernel_reconstruction_report(kle, r=25)
    assert report.max_abs_error == pytest.approx(0.0045, abs=0.002)


def test_golden_c880_structure():
    netlist = load_circuit("c880")
    from repro.circuit.levelize import levelize

    assert netlist.num_gates == 383
    assert levelize(netlist).depth == 15
    histogram = netlist.gate_type_histogram()
    assert histogram["NAND"] == pytest.approx(100, abs=25)


def test_golden_c880_nominal_delay():
    """Locks placer + library + wire model + STA together."""
    from repro.experiments.common import ExperimentContext
    from repro.timing.sta import STAEngine

    context = ExperimentContext()
    netlist = context.circuit("c880")
    placement = context.placement("c880")
    engine = STAEngine(netlist, placement)
    nominal = engine.nominal().mean_worst_delay()
    # Placement seed 2008, default technology.
    assert nominal == pytest.approx(5104.0, rel=0.02)


def test_golden_analytic_exponential_eigenvalue():
    from repro.core.analytic import exponential_kle_1d

    pair = exponential_kle_1d(1.0, 1.0, 1)[0]
    # Known value: omega ~ 0.860334, lambda = 2/(omega^2 + 1) ~ 1.1493.
    assert pair.omega == pytest.approx(0.8603335890, rel=1e-8)
    assert pair.eigenvalue == pytest.approx(1.1493104327, rel=1e-8)
