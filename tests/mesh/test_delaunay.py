"""Tests for the incremental Bowyer–Watson Delaunay triangulation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.delaunay import IncrementalDelaunay, delaunay_mesh
from repro.mesh.geometry import in_circumcircle


def delaunay_property_holds(mesh) -> bool:
    """Brute-force empty-circumcircle check over every triangle/vertex."""
    verts = mesh.vertices
    for tri in mesh.triangles:
        a, b, c = verts[tri[0]], verts[tri[1]], verts[tri[2]]
        for v_index in range(len(verts)):
            if v_index in tri:
                continue
            if in_circumcircle(tuple(a), tuple(b), tuple(c), tuple(verts[v_index])):
                return False
    return True


def test_rectangle_bootstrap():
    tri = IncrementalDelaunay.from_rectangle(0, 0, 2, 1)
    assert tri.num_vertices == 4
    assert tri.num_triangles == 2
    mesh = tri.to_mesh()
    assert mesh.total_area() == pytest.approx(2.0)


def test_rectangle_rejects_empty():
    with pytest.raises(ValueError, match="positive width"):
        IncrementalDelaunay.from_rectangle(1, 0, 1, 1)


def test_insert_interior_point():
    tri = IncrementalDelaunay.from_rectangle(0, 0, 1, 1)
    index = tri.insert((0.4, 0.4))
    assert index == 4
    mesh = tri.to_mesh()
    assert mesh.total_area() == pytest.approx(1.0)
    assert mesh.is_conforming()


def test_insert_point_on_boundary_edge():
    """Midpoint of a die edge (the Ruppert split case) keeps area/conformity."""
    tri = IncrementalDelaunay.from_rectangle(0, 0, 1, 1)
    tri.insert((0.5, 0.0))
    mesh = tri.to_mesh()
    assert mesh.total_area() == pytest.approx(1.0)
    assert mesh.is_conforming()


def test_insert_duplicate_returns_existing_index():
    tri = IncrementalDelaunay.from_rectangle(0, 0, 1, 1)
    first = tri.insert((0.3, 0.3))
    second = tri.insert((0.3, 0.3))
    assert first == second
    assert tri.num_vertices == 5


def test_locate_outside_raises():
    tri = IncrementalDelaunay.from_rectangle(0, 0, 1, 1)
    with pytest.raises(ValueError, match="outside"):
        tri.locate((2.0, 2.0))


def test_locate_finds_containing_triangle():
    tri = IncrementalDelaunay.from_rectangle(0, 0, 1, 1)
    for _ in range(20):
        tri.insert(tuple(np.random.default_rng(0).uniform(0.1, 0.9, 2)))
    tid = tri.locate((0.5, 0.5))
    i, j, k = tri.triangle_vertices(tid)
    from repro.mesh.geometry import point_in_triangle

    assert point_in_triangle(
        (0.5, 0.5), tri.vertex(i), tri.vertex(j), tri.vertex(k)
    )


def test_delaunay_property_random_points():
    rng = np.random.default_rng(3)
    pts = rng.uniform(-1, 1, (60, 2))
    mesh = delaunay_mesh(pts)
    assert delaunay_property_holds(mesh)


def test_delaunay_property_structured_grid_points():
    """Cocircular degeneracies (grid points) must not break the result."""
    xs, ys = np.meshgrid(np.linspace(0, 1, 5), np.linspace(0, 1, 5))
    pts = np.column_stack([xs.ravel(), ys.ravel()])
    mesh = delaunay_mesh(pts)
    assert mesh.is_conforming()
    # Area equals the padded bounding rectangle.
    assert mesh.total_area() == pytest.approx(
        (mesh.vertices[:, 0].max() - mesh.vertices[:, 0].min())
        * (mesh.vertices[:, 1].max() - mesh.vertices[:, 1].min())
    )


def test_delaunay_mesh_includes_all_points():
    rng = np.random.default_rng(4)
    pts = rng.uniform(0, 1, (25, 2))
    mesh = delaunay_mesh(pts)
    for p in pts:
        assert np.min(np.linalg.norm(mesh.vertices - p, axis=1)) < 1e-12


def test_delaunay_mesh_input_validation():
    with pytest.raises(ValueError, match=r"\(n, 2\)"):
        delaunay_mesh(np.zeros((3, 3)))
    with pytest.raises(ValueError, match="at least one point"):
        delaunay_mesh(np.zeros((0, 2)))


def test_boundary_edges_form_rectangle():
    tri = IncrementalDelaunay.from_rectangle(0, 0, 1, 1)
    for _ in range(10):
        tri.insert((np.random.default_rng(1).uniform(0.2, 0.8),
                    np.random.default_rng(2).uniform(0.2, 0.8)))
    boundary = tri.boundary_edges()
    # The rectangle keeps exactly 4 boundary edges until an edge is split.
    assert len(boundary) == 4


@given(st.lists(st.tuples(
    st.floats(min_value=0.05, max_value=0.95, allow_nan=False),
    st.floats(min_value=0.05, max_value=0.95, allow_nan=False)),
    min_size=1, max_size=25))
@settings(max_examples=25, deadline=None)
def test_incremental_insertion_invariants_property(points):
    """Area conservation + conformity after arbitrary interior insertions."""
    tri = IncrementalDelaunay.from_rectangle(0, 0, 1, 1)
    for p in points:
        tri.insert(p)
    mesh = tri.to_mesh()
    assert mesh.total_area() == pytest.approx(1.0, abs=1e-9)
    assert mesh.is_conforming()
