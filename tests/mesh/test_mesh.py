"""Tests for the TriangleMesh container."""

import numpy as np
import pytest

from repro.mesh.mesh import TriangleMesh, mesh_h_for_target_triangles

SQUARE_VERTS = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0]])
SQUARE_TRIS = np.array([[0, 1, 2], [0, 2, 3]])


@pytest.fixture()
def square_mesh():
    return TriangleMesh(SQUARE_VERTS, SQUARE_TRIS)


def test_basic_properties(square_mesh):
    assert square_mesh.num_vertices == 4
    assert square_mesh.num_triangles == 2
    assert len(square_mesh) == 2
    assert np.allclose(square_mesh.areas, [0.5, 0.5])
    assert square_mesh.total_area() == pytest.approx(1.0)


def test_centroids(square_mesh):
    assert np.allclose(square_mesh.centroids[0], [2.0 / 3.0, 1.0 / 3.0])
    assert np.allclose(square_mesh.centroids[1], [1.0 / 3.0, 2.0 / 3.0])


def test_cw_triangles_normalized_to_ccw():
    cw = np.array([[0, 2, 1], [0, 3, 2]])  # clockwise versions
    mesh = TriangleMesh(SQUARE_VERTS, cw)
    assert np.allclose(mesh.areas, [0.5, 0.5])
    # After normalization the signed area is positive for all triangles.
    a = mesh.vertices[mesh.triangles[:, 0]]
    b = mesh.vertices[mesh.triangles[:, 1]]
    c = mesh.vertices[mesh.triangles[:, 2]]
    signed = (b[:, 0] - a[:, 0]) * (c[:, 1] - a[:, 1]) - (
        b[:, 1] - a[:, 1]
    ) * (c[:, 0] - a[:, 0])
    assert np.all(signed > 0)


def test_arrays_read_only(square_mesh):
    with pytest.raises(ValueError):
        square_mesh.vertices[0, 0] = 99.0
    with pytest.raises(ValueError):
        square_mesh.areas[0] = 99.0


def test_side_lengths_and_h(square_mesh):
    assert square_mesh.max_side() == pytest.approx(np.sqrt(2.0))
    sides = square_mesh.side_lengths()
    assert sides.shape == (2, 3)


def test_min_angle(square_mesh):
    assert square_mesh.min_angle_degrees() == pytest.approx(45.0)


def test_quality_report(square_mesh):
    q = square_mesh.quality()
    assert q.num_triangles == 2
    assert q.min_angle_degrees == pytest.approx(45.0)
    assert q.total_area == pytest.approx(1.0)
    assert q.max_side == pytest.approx(np.sqrt(2.0))


def test_edge_use_counts_and_boundary(square_mesh):
    counts = square_mesh.edge_use_counts()
    assert counts[(0, 2)] == 2  # the shared diagonal
    boundary = square_mesh.boundary_edges()
    assert len(boundary) == 4
    assert square_mesh.is_conforming()


def test_contains_point(square_mesh):
    assert square_mesh.contains_point((0.5, 0.5))
    assert not square_mesh.contains_point((1.5, 0.5))


def test_validation_errors():
    with pytest.raises(ValueError, match="out of range"):
        TriangleMesh(SQUARE_VERTS, np.array([[0, 1, 7]]))
    with pytest.raises(ValueError, match="repeats"):
        TriangleMesh(SQUARE_VERTS, np.array([[0, 1, 1]]))
    with pytest.raises(ValueError, match="degenerate"):
        TriangleMesh(
            np.array([[0.0, 0.0], [1.0, 0.0], [2.0, 0.0]]),
            np.array([[0, 1, 2]]),
        )
    with pytest.raises(ValueError, match=r"\(nv, 2\)"):
        TriangleMesh(np.zeros((3, 3)), SQUARE_TRIS)
    with pytest.raises(ValueError, match=r"\(nt, 3\)"):
        TriangleMesh(SQUARE_VERTS, np.array([[0, 1]]))


def test_triangle_points_accessor(square_mesh):
    a, b, c = square_mesh.triangle_points(0)
    assert np.array_equal(a, [0.0, 0.0])
    assert np.array_equal(b, [1.0, 0.0])
    assert np.array_equal(c, [1.0, 1.0])


def test_mesh_h_estimate():
    h = mesh_h_for_target_triangles(4.0, 1546)
    # Equilateral triangles of area 4/1546: side ~0.077.
    assert 0.05 < h < 0.12
    with pytest.raises(ValueError):
        mesh_h_for_target_triangles(0.0, 10)


def test_repr(square_mesh):
    text = repr(square_mesh)
    assert "num_triangles=2" in text
