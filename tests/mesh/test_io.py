"""Tests for mesh persistence (.npz and Triangle .node/.ele formats)."""

import numpy as np
import pytest

from repro.mesh.io import (
    load_mesh_npz,
    load_mesh_triangle_format,
    save_mesh_npz,
    save_mesh_triangle_format,
)
from repro.mesh.structured import structured_rectangle_mesh


@pytest.fixture()
def mesh():
    return structured_rectangle_mesh(-1, -1, 1, 1, 3, 3)


def test_npz_roundtrip(mesh, tmp_path):
    path = str(tmp_path / "mesh.npz")
    save_mesh_npz(mesh, path)
    loaded = load_mesh_npz(path)
    assert np.array_equal(loaded.vertices, mesh.vertices)
    assert np.array_equal(loaded.triangles, mesh.triangles)


def test_triangle_format_roundtrip(mesh, tmp_path):
    base = str(tmp_path / "die")
    node_path, ele_path = save_mesh_triangle_format(mesh, base)
    assert node_path.endswith(".node")
    assert ele_path.endswith(".ele")
    loaded = load_mesh_triangle_format(base)
    assert np.allclose(loaded.vertices, mesh.vertices)
    assert np.array_equal(loaded.triangles, mesh.triangles)


def test_triangle_format_full_precision(mesh, tmp_path):
    base = str(tmp_path / "prec")
    save_mesh_triangle_format(mesh, base)
    loaded = load_mesh_triangle_format(base)
    assert np.array_equal(loaded.vertices, mesh.vertices)  # repr round-trip


def test_triangle_format_zero_based_files(tmp_path):
    """Triangle also emits 0-based files; the loader handles both."""
    (tmp_path / "z.node").write_text(
        "4 2 0 0\n0 0.0 0.0\n1 1.0 0.0\n2 1.0 1.0\n3 0.0 1.0\n"
    )
    (tmp_path / "z.ele").write_text("2 3 0\n0 0 1 2\n1 0 2 3\n")
    mesh = load_mesh_triangle_format(str(tmp_path / "z"))
    assert mesh.num_triangles == 2
    assert mesh.total_area() == pytest.approx(1.0)


def test_triangle_format_comments_ignored(tmp_path):
    (tmp_path / "c.node").write_text(
        "# header comment\n3 2 0 0\n1 0.0 0.0\n2 1.0 0.0  # inline\n3 0.0 1.0\n"
    )
    (tmp_path / "c.ele").write_text("1 3 0\n1 1 2 3\n")
    mesh = load_mesh_triangle_format(str(tmp_path / "c"))
    assert mesh.num_triangles == 1


def test_missing_files_raise(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_mesh_triangle_format(str(tmp_path / "nothere"))
