"""Tests for grid-indexed point location (Algorithm 2's triangle lookup)."""

import numpy as np
import pytest

from repro.mesh.geometry import point_in_triangle
from repro.mesh.locate import TriangleLocator
from repro.mesh.structured import structured_rectangle_mesh


@pytest.fixture(scope="module")
def mesh():
    return structured_rectangle_mesh(-1, -1, 1, 1, 8, 8)


@pytest.fixture(scope="module")
def locator(mesh):
    return TriangleLocator(mesh)


def test_located_triangle_contains_point(mesh, locator):
    rng = np.random.default_rng(0)
    for p in rng.uniform(-0.999, 0.999, (200, 2)):
        tri = locator.locate(p)
        a, b, c = mesh.triangle_points(tri)
        assert point_in_triangle(tuple(p), tuple(a), tuple(b), tuple(c))


def test_locate_many_matches_scalar(mesh, locator):
    rng = np.random.default_rng(1)
    pts = rng.uniform(-0.9, 0.9, (50, 2))
    batch = locator.locate_many(pts)
    for i, p in enumerate(pts):
        assert batch[i] == locator.locate(p)


def test_locate_on_vertex_and_edge(locator, mesh):
    # A grid vertex and an edge midpoint are inside some triangle.
    tri = locator.locate((0.0, 0.0))
    a, b, c = mesh.triangle_points(tri)
    assert point_in_triangle((0.0, 0.0), tuple(a), tuple(b), tuple(c))


def test_locate_corners(locator, mesh):
    for corner in [(-1, -1), (1, -1), (1, 1), (-1, 1)]:
        tri = locator.locate(corner)
        a, b, c = mesh.triangle_points(tri)
        assert point_in_triangle(corner, tuple(a), tuple(b), tuple(c))


def test_outside_point_raises(locator):
    with pytest.raises(ValueError, match="outside"):
        locator.locate((3.0, 0.0))


def test_locate_many_validates_shape(locator):
    with pytest.raises(ValueError, match=r"\(n, 2\)"):
        locator.locate_many(np.zeros(4))


def test_deterministic_on_shared_edges(mesh):
    """Points on shared edges resolve to the same triangle every time."""
    loc1 = TriangleLocator(mesh)
    loc2 = TriangleLocator(mesh)
    p = (0.25, 0.25)  # a grid diagonal point
    assert loc1.locate(p) == loc2.locate(p)


def test_custom_cells_per_axis(mesh):
    coarse = TriangleLocator(mesh, cells_per_axis=2)
    fine = TriangleLocator(mesh, cells_per_axis=32)
    rng = np.random.default_rng(2)
    pts = rng.uniform(-0.9, 0.9, (40, 2))
    assert np.array_equal(coarse.locate_many(pts), fine.locate_many(pts))


def test_invalid_cells_per_axis(mesh):
    with pytest.raises(ValueError, match=">= 1"):
        TriangleLocator(mesh, cells_per_axis=0)


def test_works_on_refined_mesh():
    from repro.mesh.refine import refine_rectangle

    mesh = refine_rectangle(-1, -1, 1, 1, max_area=0.05)
    locator = TriangleLocator(mesh)
    rng = np.random.default_rng(3)
    pts = rng.uniform(-0.99, 0.99, (100, 2))
    indices = locator.locate_many(pts)
    for p, tri in zip(pts, indices):
        a, b, c = mesh.triangle_points(tri)
        assert point_in_triangle(tuple(p), tuple(a), tuple(b), tuple(c))
