"""Tests for structured (uniform) rectangle meshes."""

import numpy as np
import pytest

from repro.mesh.structured import (
    structured_mesh_with_triangle_count,
    structured_rectangle_mesh,
)


def test_triangle_count():
    mesh = structured_rectangle_mesh(0, 0, 1, 1, 4, 3)
    assert mesh.num_triangles == 24
    assert mesh.num_vertices == 20


def test_total_area():
    mesh = structured_rectangle_mesh(-1, -1, 1, 1, 7, 5)
    assert mesh.total_area() == pytest.approx(4.0)


def test_uniform_areas():
    mesh = structured_rectangle_mesh(0, 0, 2, 1, 4, 4)
    assert np.allclose(mesh.areas, mesh.areas[0])


def test_conforming():
    mesh = structured_rectangle_mesh(0, 0, 1, 1, 5, 5)
    assert mesh.is_conforming()
    assert len(mesh.boundary_edges()) == 20  # 4 sides x 5 cells


def test_right_angle_quality():
    mesh = structured_rectangle_mesh(0, 0, 1, 1, 3, 3)
    assert mesh.min_angle_degrees() == pytest.approx(45.0)


def test_alternating_diagonals_changes_topology():
    flipped = structured_rectangle_mesh(0, 0, 1, 1, 2, 2)
    straight = structured_rectangle_mesh(
        0, 0, 1, 1, 2, 2, alternate_diagonals=False
    )
    assert not np.array_equal(flipped.triangles, straight.triangles)
    assert flipped.total_area() == pytest.approx(straight.total_area())


def test_count_targeting():
    mesh = structured_mesh_with_triangle_count(-1, -1, 1, 1, 200)
    assert abs(mesh.num_triangles - 200) <= 30


def test_count_targeting_respects_aspect():
    mesh = structured_mesh_with_triangle_count(0, 0, 4, 1, 128)
    # Cells should be near-square: ~4x more columns than rows.
    xs = np.unique(mesh.vertices[:, 0])
    ys = np.unique(mesh.vertices[:, 1])
    assert len(xs) > 2 * len(ys)


def test_validation():
    with pytest.raises(ValueError, match="positive width"):
        structured_rectangle_mesh(1, 0, 0, 1, 2, 2)
    with pytest.raises(ValueError, match=">= 1"):
        structured_rectangle_mesh(0, 0, 1, 1, 0, 2)
    with pytest.raises(ValueError, match="target_triangles"):
        structured_mesh_with_triangle_count(0, 0, 1, 1, 1)
