"""Tests for the geometric predicates and triangle primitives."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.geometry import (
    bounding_box,
    in_circumcircle,
    orient2d,
    orientation_sign,
    point_in_triangle,
    segment_encroached,
    triangle_angles,
    triangle_area,
    triangle_centroid,
    triangle_circumcenter,
    triangle_max_side,
    triangle_min_angle,
)

coords = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)
pts = st.tuples(coords, coords)


def test_orient2d_signs():
    assert orient2d((0, 0), (1, 0), (0, 1)) > 0  # CCW
    assert orient2d((0, 0), (0, 1), (1, 0)) < 0  # CW
    assert orient2d((0, 0), (1, 1), (2, 2)) == 0  # collinear


def test_orientation_sign_tolerance():
    assert orientation_sign((0, 0), (1, 0), (0.5, 1e-16)) == 0
    assert orientation_sign((0, 0), (1, 0), (0.5, 1e-3)) == 1
    assert orientation_sign((0, 0), (1, 0), (0.5, -1e-3)) == -1


@given(pts, pts, pts)
@settings(max_examples=60, deadline=None)
def test_orient2d_antisymmetry_property(a, b, c):
    assert orient2d(a, b, c) == pytest.approx(-orient2d(b, a, c), abs=1e-9)


def test_in_circumcircle_basic():
    a, b, c = (0.0, 0.0), (1.0, 0.0), (0.0, 1.0)
    assert in_circumcircle(a, b, c, (0.5, 0.5 - 1e-6))  # inside
    assert not in_circumcircle(a, b, c, (2.0, 2.0))  # outside
    # Cocircular point reports False (tie-break).
    assert not in_circumcircle(a, b, c, (1.0, 1.0))


def test_in_circumcircle_center_always_inside():
    a, b, c = (0.0, 0.0), (2.0, 0.0), (1.0, 1.5)
    center = triangle_circumcenter(a, b, c)
    assert in_circumcircle(a, b, c, center)


def test_triangle_area_known():
    assert triangle_area((0, 0), (2, 0), (0, 1)) == pytest.approx(1.0)
    assert triangle_area((0, 0), (0, 1), (2, 0)) == pytest.approx(1.0)


def test_triangle_centroid():
    cx, cy = triangle_centroid((0, 0), (3, 0), (0, 3))
    assert (cx, cy) == (1.0, 1.0)


def test_circumcenter_equidistant():
    a, b, c = (0.0, 0.0), (4.0, 0.0), (1.0, 3.0)
    center = triangle_circumcenter(a, b, c)
    da = math.dist(center, a)
    assert math.dist(center, b) == pytest.approx(da)
    assert math.dist(center, c) == pytest.approx(da)


def test_circumcenter_degenerate_raises():
    with pytest.raises(ValueError, match="degenerate"):
        triangle_circumcenter((0, 0), (1, 1), (2, 2))


def test_triangle_angles_sum_to_pi():
    angles = triangle_angles((0, 0), (3, 0), (0.5, 2.0))
    assert sum(angles) == pytest.approx(math.pi)


def test_equilateral_angles():
    a, b = (0.0, 0.0), (1.0, 0.0)
    c = (0.5, math.sqrt(3) / 2)
    for angle in triangle_angles(a, b, c):
        assert angle == pytest.approx(math.pi / 3)
    assert triangle_min_angle(a, b, c) == pytest.approx(math.pi / 3)


def test_degenerate_angles_raise():
    with pytest.raises(ValueError, match="zero-length"):
        triangle_angles((0, 0), (0, 0), (1, 1))


def test_triangle_max_side():
    assert triangle_max_side((0, 0), (3, 0), (0, 4)) == pytest.approx(5.0)


def test_point_in_triangle_inclusive():
    a, b, c = (0.0, 0.0), (1.0, 0.0), (0.0, 1.0)
    assert point_in_triangle((0.25, 0.25), a, b, c)
    assert point_in_triangle((0.0, 0.0), a, b, c)  # vertex
    assert point_in_triangle((0.5, 0.0), a, b, c)  # edge
    assert not point_in_triangle((0.6, 0.6), a, b, c)
    assert not point_in_triangle((-0.1, 0.5), a, b, c)


def test_point_in_triangle_orientation_independent():
    a, b, c = (0.0, 0.0), (1.0, 0.0), (0.0, 1.0)
    p = (0.2, 0.3)
    assert point_in_triangle(p, a, b, c) == point_in_triangle(p, a, c, b)


@given(pts, pts, pts)
@settings(max_examples=60, deadline=None)
def test_centroid_always_in_triangle_property(a, b, c):
    if abs(orient2d(a, b, c)) < 1e-6:
        return  # skip (near-)degenerate triangles
    assert point_in_triangle(triangle_centroid(a, b, c), a, b, c)


def test_segment_encroached():
    a, b = (0.0, 0.0), (2.0, 0.0)
    assert segment_encroached(a, b, (1.0, 0.5))  # inside diametral circle
    assert not segment_encroached(a, b, (1.0, 1.5))  # outside
    assert not segment_encroached(a, b, (1.0, 1.0))  # exactly on circle
    assert not segment_encroached(a, b, a)  # endpoint


def test_bounding_box():
    pts_arr = np.array([[0.0, 1.0], [-2.0, 3.0], [4.0, -1.0]])
    assert bounding_box(pts_arr) == (-2.0, -1.0, 4.0, 3.0)


def test_bounding_box_empty_raises():
    with pytest.raises(ValueError, match="empty"):
        bounding_box(np.zeros((0, 2)))
