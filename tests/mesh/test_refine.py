"""Tests for Ruppert-style quality refinement (the Triangle [24] stand-in)."""

import pytest

from repro.mesh.refine import (
    RefinementError,
    paper_mesh,
    refine_rectangle,
    refine_to_triangle_count,
)


@pytest.fixture(scope="module")
def coarse_quality_mesh():
    return refine_rectangle(-1, -1, 1, 1, min_angle_degrees=28.0, max_area=0.05)


def test_min_angle_bound_satisfied(coarse_quality_mesh):
    assert coarse_quality_mesh.min_angle_degrees() >= 28.0 - 1e-9


def test_max_area_bound_satisfied(coarse_quality_mesh):
    assert float(coarse_quality_mesh.areas.max()) <= 0.05 + 1e-12


def test_covers_die_exactly(coarse_quality_mesh):
    assert coarse_quality_mesh.total_area() == pytest.approx(4.0, abs=1e-9)


def test_conforming(coarse_quality_mesh):
    assert coarse_quality_mesh.is_conforming()


def test_boundary_edges_on_die_border(coarse_quality_mesh):
    verts = coarse_quality_mesh.vertices
    for u, v in coarse_quality_mesh.boundary_edges():
        for vid in (u, v):
            x, y = verts[vid]
            on_border = (
                abs(abs(x) - 1.0) < 1e-12 or abs(abs(y) - 1.0) < 1e-12
            )
            assert on_border


def test_angle_only_refinement():
    mesh = refine_rectangle(0, 0, 1, 1, min_angle_degrees=25.0)
    assert mesh.min_angle_degrees() >= 25.0 - 1e-9
    assert mesh.total_area() == pytest.approx(1.0)


def test_aspect_rectangle():
    mesh = refine_rectangle(0, 0, 4, 1, min_angle_degrees=28.0, max_area=0.2)
    assert mesh.total_area() == pytest.approx(4.0)
    assert mesh.min_angle_degrees() >= 28.0 - 1e-9


def test_paper_mesh_reproduces_paper_scale():
    """28° / 0.1 %-area knobs give a mesh in the paper's n = 1546 class."""
    mesh = paper_mesh()
    assert 1200 <= mesh.num_triangles <= 2000
    assert mesh.min_angle_degrees() >= 28.0 - 1e-9
    assert float(mesh.areas.max()) <= 0.004 + 1e-12
    assert mesh.total_area() == pytest.approx(4.0, abs=1e-9)


def test_smaller_max_area_more_triangles():
    coarse = refine_rectangle(0, 0, 1, 1, max_area=0.05)
    fine = refine_rectangle(0, 0, 1, 1, max_area=0.01)
    assert fine.num_triangles > coarse.num_triangles


def test_refine_to_triangle_count_hits_targets():
    for target in (100, 400):
        mesh = refine_to_triangle_count(-1, -1, 1, 1, target)
        assert abs(mesh.num_triangles - target) / target <= 0.25


def test_parameter_validation():
    with pytest.raises(ValueError, match="positive width"):
        refine_rectangle(1, 0, 0, 1)
    with pytest.raises(ValueError, match="max_area must be positive"):
        refine_rectangle(0, 0, 1, 1, max_area=-0.1)
    with pytest.raises(ValueError, match="not guaranteed to terminate"):
        refine_rectangle(0, 0, 1, 1, min_angle_degrees=34.0)
    with pytest.raises(ValueError, match="target_triangles"):
        refine_to_triangle_count(0, 0, 1, 1, 1)


def test_vertex_budget_enforced():
    with pytest.raises(RefinementError, match="max_vertices"):
        refine_rectangle(0, 0, 1, 1, max_area=1e-5, max_vertices=100)


def test_refinement_is_deterministic():
    m1 = refine_rectangle(0, 0, 1, 1, max_area=0.03)
    m2 = refine_rectangle(0, 0, 1, 1, max_area=0.03)
    assert m1.num_triangles == m2.num_triangles
    assert (m1.vertices == m2.vertices).all()


# ---------------------------------------------------------------------------
# Density-adaptive refinement (size fields).
# ---------------------------------------------------------------------------
def test_area_limit_fn_respected():
    from repro.mesh.refine import refine_rectangle

    def limit(x, _y):
        return 0.01 if x < 0 else 0.2

    mesh = refine_rectangle(-1, -1, 1, 1, area_limit_fn=limit)
    for area, centroid in zip(mesh.areas, mesh.centroids):
        assert area <= (0.01 if centroid[0] < 0 else 0.2) + 1e-12


def test_gate_density_size_field_concentrates_triangles():
    import numpy as np

    from repro.mesh.refine import gate_density_area_limit, refine_rectangle

    rng = np.random.default_rng(0)
    gates = np.concatenate(
        [rng.uniform(-1, 0, (400, 2)), rng.uniform(-1, 1, (40, 2))]
    )
    fn = gate_density_area_limit(
        gates, (-1, -1, 1, 1), dense_area=0.005, sparse_area=0.08
    )
    mesh = refine_rectangle(-1, -1, 1, 1, area_limit_fn=fn)
    dense = int(np.sum(mesh.centroids[:, 0] < 0))
    sparse = mesh.num_triangles - dense
    assert dense > 2.5 * sparse
    assert mesh.min_angle_degrees() >= 28.0 - 1e-9
    assert mesh.total_area() == pytest.approx(4.0, abs=1e-9)


def test_gate_density_size_field_validation():
    import numpy as np

    from repro.mesh.refine import gate_density_area_limit

    gates = np.zeros((3, 2))
    with pytest.raises(ValueError, match="positive"):
        gate_density_area_limit(
            gates, (-1, -1, 1, 1), dense_area=0.0, sparse_area=0.1
        )
    with pytest.raises(ValueError, match="must not exceed"):
        gate_density_area_limit(
            gates, (-1, -1, 1, 1), dense_area=0.2, sparse_area=0.1
        )


def test_empty_gate_set_gives_uniform_sparse_mesh():
    import numpy as np

    from repro.mesh.refine import gate_density_area_limit, refine_rectangle

    fn = gate_density_area_limit(
        np.zeros((0, 2)), (-1, -1, 1, 1), dense_area=0.01, sparse_area=0.1
    )
    mesh = refine_rectangle(-1, -1, 1, 1, area_limit_fn=fn)
    assert float(mesh.areas.max()) <= 0.1 + 1e-12


def test_nonpositive_area_limit_rejected():
    from repro.mesh.refine import refine_rectangle

    with pytest.raises(ValueError, match="strictly positive"):
        refine_rectangle(-1, -1, 1, 1, area_limit_fn=lambda x, y: 0.0)


# ---------------------------------------------------------------------------
# Property sweeps of the refinement knobs (hypothesis).
# ---------------------------------------------------------------------------
from hypothesis import given, settings
from hypothesis import strategies as st


@given(
    st.floats(min_value=15.0, max_value=30.0),
    st.floats(min_value=0.02, max_value=0.5),
)
@settings(max_examples=12, deadline=None)
def test_refinement_bounds_hold_property(min_angle, max_area):
    """For any legal knob combination: both bounds hold, the die is
    covered exactly, and the mesh conforms."""
    mesh = refine_rectangle(
        0, 0, 1, 1, min_angle_degrees=min_angle, max_area=max_area
    )
    assert mesh.min_angle_degrees() >= min_angle - 1e-9
    assert float(mesh.areas.max()) <= max_area + 1e-12
    assert mesh.total_area() == pytest.approx(1.0, abs=1e-9)
    assert mesh.is_conforming()


@given(
    st.floats(min_value=0.3, max_value=3.0),
    st.floats(min_value=0.3, max_value=3.0),
)
@settings(max_examples=10, deadline=None)
def test_refinement_rectangle_shapes_property(width, height):
    """Arbitrary aspect ratios refine correctly."""
    mesh = refine_rectangle(0, 0, width, height, max_area=0.1)
    assert mesh.total_area() == pytest.approx(width * height, rel=1e-9)
    assert mesh.min_angle_degrees() >= 28.0 - 1e-9
