"""Tests for the quadtree point-location index."""

import numpy as np
import pytest

from repro.mesh.geometry import point_in_triangle
from repro.mesh.locate import TriangleLocator
from repro.mesh.quadtree import QuadtreeLocator
from repro.mesh.refine import refine_rectangle
from repro.mesh.structured import structured_rectangle_mesh

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def meshes():
    return {
        "structured": structured_rectangle_mesh(*DIE, 8, 8),
        "refined": refine_rectangle(*DIE, max_area=0.03),
    }


@pytest.mark.parametrize("kind", ["structured", "refined"])
def test_located_triangle_contains_point(meshes, kind):
    mesh = meshes[kind]
    locator = QuadtreeLocator(mesh)
    rng = np.random.default_rng(0)
    for p in rng.uniform(-0.999, 0.999, (200, 2)):
        tri = locator.locate(p)
        a, b, c = mesh.triangle_points(tri)
        assert point_in_triangle(tuple(p), tuple(a), tuple(b), tuple(c))


@pytest.mark.parametrize("kind", ["structured", "refined"])
def test_agrees_with_grid_locator(meshes, kind):
    """Grid and quadtree indexes are drop-in interchangeable."""
    mesh = meshes[kind]
    grid = TriangleLocator(mesh)
    tree = QuadtreeLocator(mesh)
    rng = np.random.default_rng(1)
    pts = rng.uniform(-0.99, 0.99, (150, 2))
    grid_result = grid.locate_many(pts)
    tree_result = tree.locate_many(pts)
    # Both return *a* containing triangle; on shared edges they may differ,
    # but each must contain the point.
    for p, gi, ti in zip(pts, grid_result, tree_result):
        if gi != ti:
            a, b, c = mesh.triangle_points(ti)
            assert point_in_triangle(tuple(p), tuple(a), tuple(b), tuple(c))
            a, b, c = mesh.triangle_points(gi)
            assert point_in_triangle(tuple(p), tuple(a), tuple(b), tuple(c))


def test_outside_point_raises(meshes):
    locator = QuadtreeLocator(meshes["structured"])
    with pytest.raises(ValueError, match="outside"):
        locator.locate((5.0, 0.0))


def test_tree_actually_subdivides(meshes):
    locator = QuadtreeLocator(meshes["refined"], max_triangles_per_leaf=4)
    assert locator.depth() >= 2
    assert locator.leaf_count() > 4


def test_depth_budget_respected(meshes):
    locator = QuadtreeLocator(
        meshes["refined"], max_triangles_per_leaf=1, max_depth=3
    )
    assert locator.depth() <= 3


def test_corners_and_edges(meshes):
    mesh = meshes["structured"]
    locator = QuadtreeLocator(mesh)
    for corner in [(-1, -1), (1, -1), (1, 1), (-1, 1), (0.0, 0.0)]:
        tri = locator.locate(corner)
        a, b, c = mesh.triangle_points(tri)
        assert point_in_triangle(corner, tuple(a), tuple(b), tuple(c))


def test_validation(meshes):
    with pytest.raises(ValueError, match="max_triangles_per_leaf"):
        QuadtreeLocator(meshes["structured"], max_triangles_per_leaf=0)
    with pytest.raises(ValueError, match="max_depth"):
        QuadtreeLocator(meshes["structured"], max_depth=0)
    locator = QuadtreeLocator(meshes["structured"])
    with pytest.raises(ValueError, match=r"\(n, 2\)"):
        locator.locate_many(np.zeros(3))
