"""Tests for the terminal visualization helpers."""

import numpy as np
import pytest

from repro.viz import correlation_profile, decay_plot, heatmap


# ---------------------------------------------------------------------------
# heatmap
# ---------------------------------------------------------------------------
def test_heatmap_shape_and_legend():
    values = np.linspace(0.0, 1.0, 36).reshape(6, 6)
    art = heatmap(values, width=20)
    lines = art.splitlines()
    assert len(lines) == 7  # 6 rows + legend
    assert "=" in lines[-1]  # legend with bounds


def test_heatmap_extremes_use_extreme_shades():
    values = np.array([[0.0, 1.0]])
    art = heatmap(values, legend=False, symmetric=False)
    assert art.startswith("  ")  # min -> lightest shade (space)
    assert art.rstrip().endswith("@@")  # max -> darkest shade


def test_heatmap_row_zero_at_bottom():
    values = np.array([[1.0, 1.0], [0.0, 0.0]])  # row 0 is "south"
    art = heatmap(values, legend=False, symmetric=False)
    top, bottom = art.splitlines()
    assert top == "    "      # row 1 (zeros) prints first
    assert bottom == "@@@@"   # row 0 (ones) is the bottom line


def test_heatmap_symmetric_scale_centers_zero():
    values = np.array([[-2.0, 0.0, 2.0]])
    art = heatmap(values, legend=True)
    assert "-2" in art and "2" in art


def test_heatmap_subsampling_fits_width():
    values = np.random.default_rng(0).uniform(size=(100, 100))
    art = heatmap(values, width=30, legend=False)
    assert max(len(line) for line in art.splitlines()) <= 32


def test_heatmap_constant_field():
    art = heatmap(np.ones((3, 3)), legend=False, symmetric=False)
    assert set("".join(art.splitlines())) <= {" "}


def test_heatmap_validation():
    with pytest.raises(ValueError, match="2-D"):
        heatmap(np.zeros(5))
    with pytest.raises(ValueError, match="finite"):
        heatmap(np.full((2, 2), np.nan))


# ---------------------------------------------------------------------------
# decay_plot
# ---------------------------------------------------------------------------
def test_decay_plot_bars_decrease():
    values = 0.5 ** np.arange(20)
    art = decay_plot(values, height=8)
    lines = art.splitlines()
    # Top row has fewer bars than bottom row.
    assert lines[0].count("#") < lines[-3].count("#")


def test_decay_plot_marker_column():
    values = 0.7 ** np.arange(30)
    art = decay_plot(values, marker=10)
    assert "|" in art
    assert "r=10" in art


def test_decay_plot_linear_scale():
    art = decay_plot([3.0, 2.0, 1.0], log_scale=False)
    assert "linear scale" in art


def test_decay_plot_validation():
    with pytest.raises(ValueError, match="non-empty"):
        decay_plot([])
    with pytest.raises(ValueError, match="height"):
        decay_plot([1.0], height=1)


def test_decay_plot_handles_zero_values():
    art = decay_plot([1.0, 0.5, 0.0, 0.0])
    assert "#" in art


# ---------------------------------------------------------------------------
# correlation_profile
# ---------------------------------------------------------------------------
def test_correlation_profile_renders_data_and_model():
    d = np.linspace(0.0, 2.0, 15)
    empirical = np.exp(-d) + 0.01
    model = np.exp(-d)
    art = correlation_profile(d, empirical, model)
    assert "o" in art
    assert "." in art
    assert "distance" in art


def test_correlation_profile_data_overrides_model():
    d = np.array([1.0])
    art = correlation_profile(d, np.array([0.5]), np.array([0.5]), width=10,
                              height=5)
    grid_lines = art.splitlines()[:5]  # exclude axis/legend lines
    assert sum(line.count("o") for line in grid_lines) == 1
    assert sum(line.count(".") for line in grid_lines) == 0


def test_correlation_profile_validation():
    with pytest.raises(ValueError, match="share shape"):
        correlation_profile(np.zeros(3), np.zeros(4))


def test_correlation_profile_nan_tolerant():
    d = np.array([0.5, 1.0])
    art = correlation_profile(d, np.array([np.nan, 0.3]))
    assert "o" in art
