"""Shared fixtures: small meshes, kernels, circuits, and solved KLEs.

Expensive artifacts (mesh refinement, eigen-solves, placements) are
session-scoped so the suite stays fast while every module gets realistic
objects to test against.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.benchmarks import load_circuit
from repro.core.galerkin import solve_kle
from repro.core.kernels import GaussianKernel, SeparableExponentialKernel
from repro.mesh.refine import refine_rectangle
from repro.mesh.structured import structured_rectangle_mesh
from repro.place.placer import place_netlist

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="session")
def gaussian_kernel():
    """The experiment-style Gaussian kernel (decay close to the fitted c)."""
    return GaussianKernel(c=2.7)


@pytest.fixture(scope="session")
def separable_kernel():
    return SeparableExponentialKernel(c=1.0)


@pytest.fixture(scope="session")
def small_structured_mesh():
    """A 10x10 structured mesh (200 triangles) of the die."""
    return structured_rectangle_mesh(*DIE, 10, 10)


@pytest.fixture(scope="session")
def small_refined_mesh():
    """A coarse Ruppert mesh of the die (fast to build, quality-bounded)."""
    return refine_rectangle(*DIE, min_angle_degrees=28.0, max_area=0.03)


@pytest.fixture(scope="session")
def gaussian_kle(gaussian_kernel, small_structured_mesh):
    """Solved KLE of the Gaussian kernel on the small structured mesh."""
    return solve_kle(gaussian_kernel, small_structured_mesh, num_eigenpairs=60)


@pytest.fixture(scope="session")
def separable_kle(separable_kernel, small_structured_mesh):
    return solve_kle(separable_kernel, small_structured_mesh, num_eigenpairs=40)


@pytest.fixture(scope="session")
def c17():
    return load_circuit("c17")


@pytest.fixture(scope="session")
def c880():
    return load_circuit("c880")


@pytest.fixture(scope="session")
def c880_placement(c880):
    return place_netlist(c880, DIE, seed=11)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)
