"""Tests for the matrix-free randomized KLE eigensolver subsystem."""
