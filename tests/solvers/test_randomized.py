"""Randomized eigensolver accuracy, determinism and routing contracts.

Accuracy is judged the only way that is well-posed for this spectrum:
eigenvalues individually (they are simple to compare), eigenvector
*blocks* via principal subspace angles split at a spectral gap — the
Gaussian kernel on a square die has degenerate pairs, so per-vector
comparison against LAPACK is meaningless while the spanned subspace is
not.
"""

import numpy as np
import pytest

from repro.core.galerkin import GalerkinKLE, solve_kle
from repro.core.kernels import GaussianKernel
from repro.mesh.structured import structured_rectangle_mesh
from repro.solvers import (
    RandomizedSolveReport,
    make_kernel_operator,
    randomized_generalized_eigh,
    solve_randomized_kle,
)

KERNEL = GaussianKernel(c=1.4)
NUM_PAIRS = 16


def gap_boundary(eigenvalues, upper):
    """Largest-relative-gap split index in ``eigenvalues[1:upper+1]``.

    Comparing eigenvector blocks is only sign/rotation-invariant when the
    block boundary falls at a spectral gap; degenerate (multiplicity-2)
    pairs must never be split.
    """
    ratios = eigenvalues[1 : upper + 1] / eigenvalues[:upper]
    return int(np.argmin(ratios)) + 1


def principal_angles(block_a, block_b, phi):
    """Principal angles between two Φ-orthonormal column blocks."""
    overlap = block_a.T @ (phi[:, None] * block_b)
    singular = np.linalg.svd(overlap, compute_uv=False)
    return np.arccos(np.clip(singular, -1.0, 1.0))


@pytest.fixture(scope="module")
def mesh():
    return structured_rectangle_mesh(-1.0, -1.0, 1.0, 1.0, 9, 9)


@pytest.fixture(scope="module")
def dense_result(mesh):
    return solve_kle(KERNEL, mesh, num_eigenpairs=NUM_PAIRS, method="dense")


@pytest.fixture(scope="module")
def randomized(mesh):
    return solve_randomized_kle(
        KERNEL, mesh, NUM_PAIRS, oversampling=12, power_iterations=3, seed=0
    )


def test_leading_eigenvalues_match_dense(dense_result, randomized):
    result, _ = randomized
    np.testing.assert_allclose(
        result.eigenvalues, dense_result.eigenvalues, rtol=1e-6
    )


def test_eigenvector_subspace_matches_dense(mesh, dense_result, randomized):
    result, _ = randomized
    split = gap_boundary(dense_result.eigenvalues, NUM_PAIRS - 1)
    angles = principal_angles(
        dense_result.d_vectors[:, :split],
        result.d_vectors[:, :split],
        mesh.areas,
    )
    assert angles.max() < 1e-5


def test_d_vectors_are_phi_orthonormal(mesh, randomized):
    result, _ = randomized
    gram = result.d_vectors.T @ (mesh.areas[:, None] * result.d_vectors)
    np.testing.assert_allclose(gram, np.eye(NUM_PAIRS), atol=1e-12)


def test_same_seed_is_bitwise_reproducible(mesh, randomized):
    result, _ = randomized
    again, _ = solve_randomized_kle(
        KERNEL, mesh, NUM_PAIRS, oversampling=12, power_iterations=3, seed=0
    )
    np.testing.assert_array_equal(result.eigenvalues, again.eigenvalues)
    np.testing.assert_array_equal(result.d_vectors, again.d_vectors)


def test_different_seed_changes_the_sketch(mesh, randomized):
    result, _ = randomized
    other, _ = solve_randomized_kle(
        KERNEL, mesh, NUM_PAIRS, oversampling=12, power_iterations=3, seed=1
    )
    assert not np.array_equal(result.d_vectors, other.d_vectors)
    # ...while agreeing to solver accuracy, which is the whole point.
    np.testing.assert_allclose(
        result.eigenvalues, other.eigenvalues, rtol=1e-5
    )


def test_report_describes_the_solve(mesh, randomized):
    _, report = randomized
    assert isinstance(report, RandomizedSolveReport)
    assert report.num_triangles == mesh.num_triangles
    assert report.num_eigenpairs == NUM_PAIRS
    assert report.sketch_size == NUM_PAIRS + 12
    assert report.power_iterations == 3
    assert report.seed == 0
    assert report.operator_kind == "dense"
    assert report.matmat_passes == 5
    assert report.resident_bytes == 8 * NUM_PAIRS * (mesh.num_triangles + 1)
    assert 0 < report.peak_bytes
    assert report.dense_bytes == 3 * mesh.num_triangles**2 * 8


def test_forced_tiled_operator_agrees_with_dense_operator(mesh):
    via_tiled, tiled_report = solve_randomized_kle(
        KERNEL, mesh, NUM_PAIRS, seed=0, dense_threshold=0
    )
    via_dense, dense_report = solve_randomized_kle(KERNEL, mesh, NUM_PAIRS, seed=0)
    assert tiled_report.operator_kind == "tiled"
    assert dense_report.operator_kind == "dense"
    np.testing.assert_allclose(
        via_tiled.eigenvalues, via_dense.eigenvalues, rtol=1e-10
    )


def test_galerkin_solve_routes_randomized(mesh, randomized):
    result, _ = randomized
    routed = GalerkinKLE(KERNEL, mesh).solve(
        NUM_PAIRS, method="randomized", oversampling=12,
        power_iterations=3, solver_seed=0,
    )
    np.testing.assert_array_equal(routed.eigenvalues, result.eigenvalues)
    np.testing.assert_array_equal(routed.d_vectors, result.d_vectors)


def test_randomized_requires_explicit_rank(mesh):
    with pytest.raises(ValueError, match="num_eigenpairs"):
        GalerkinKLE(KERNEL, mesh).solve(method="randomized")


def test_solve_kle_rejects_unknown_method(mesh):
    with pytest.raises(ValueError, match="unknown KLE method"):
        solve_kle(KERNEL, mesh, num_eigenpairs=4, method="magic")


def test_option_validation(mesh):
    operator = make_kernel_operator(KERNEL, mesh)
    phi = mesh.areas
    with pytest.raises(ValueError, match="num_eigenpairs"):
        randomized_generalized_eigh(operator, phi, 0)
    with pytest.raises(ValueError, match="num_eigenpairs"):
        randomized_generalized_eigh(operator, phi, mesh.num_triangles + 1)
    with pytest.raises(ValueError, match="oversampling"):
        randomized_generalized_eigh(operator, phi, 4, oversampling=-1)
    with pytest.raises(ValueError, match="power_iterations"):
        randomized_generalized_eigh(operator, phi, 4, power_iterations=-1)
    with pytest.raises(ValueError, match="seed"):
        randomized_generalized_eigh(operator, phi, 4, seed=-1)
    with pytest.raises(ValueError, match="phi_diag"):
        randomized_generalized_eigh(operator, phi[:-1], 4)
    with pytest.raises(ValueError, match="positive"):
        randomized_generalized_eigh(operator, np.zeros_like(phi), 4)
