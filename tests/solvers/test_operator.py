"""KernelOperator contract: tiled == dense == assembled matrix.

The tiled operator is the load-bearing abstraction of the randomized
path — it must apply exactly the matrix `assemble_galerkin_matrix`
builds, for every quadrature rule, bitwise independently of the tile
size, while reporting honest working-set estimates.
"""

import numpy as np
import pytest

from repro.core.galerkin import assemble_galerkin_matrix
from repro.core.kernels import GaussianKernel
from repro.mesh.structured import structured_rectangle_mesh
from repro.solvers import (
    DENSE_OPERATOR_THRESHOLD,
    DenseKernelOperator,
    TiledKernelOperator,
    dense_solve_bytes,
    make_kernel_operator,
)

KERNEL = GaussianKernel(c=1.4)


@pytest.fixture(scope="module")
def mesh():
    return structured_rectangle_mesh(-1.0, -1.0, 1.0, 1.0, 8, 8)


@pytest.fixture(scope="module")
def operand(mesh):
    rng = np.random.default_rng(42)
    return rng.standard_normal((mesh.num_triangles, 5))


@pytest.mark.parametrize("rule", ["centroid", "three_point"])
def test_tiled_matmat_matches_assembled_matrix(mesh, operand, rule):
    matrix = assemble_galerkin_matrix(KERNEL, mesh, rule=rule)
    tiled = TiledKernelOperator(KERNEL, mesh, rule=rule, max_tile_bytes=8192)
    np.testing.assert_allclose(
        tiled.matmat(operand), matrix @ operand, rtol=0, atol=1e-13
    )


def test_dense_operator_matches_assembled_matrix(mesh, operand):
    matrix = assemble_galerkin_matrix(KERNEL, mesh)
    dense = DenseKernelOperator(KERNEL, mesh)
    np.testing.assert_array_equal(dense.matmat(operand), matrix @ operand)


def test_matmat_is_deterministic_per_tile_budget(mesh, operand):
    op = TiledKernelOperator(KERNEL, mesh, max_tile_bytes=8192)
    np.testing.assert_array_equal(op.matmat(operand), op.matmat(operand))


def test_tile_budgets_agree_to_rounding(mesh, operand):
    tiny = TiledKernelOperator(KERNEL, mesh, max_tile_bytes=1)
    huge = TiledKernelOperator(KERNEL, mesh, max_tile_bytes=1 << 30)
    assert tiny.tile_rows == 1
    assert huge.tile_rows == mesh.num_triangles
    np.testing.assert_allclose(
        tiny.matmat(operand), huge.matmat(operand), rtol=1e-12, atol=1e-15
    )


def test_matvec_is_the_single_column_matmat(mesh, operand):
    op = TiledKernelOperator(KERNEL, mesh, max_tile_bytes=4096)
    np.testing.assert_array_equal(
        op.matvec(operand[:, 0]), op.matmat(operand[:, :1])[:, 0]
    )
    with pytest.raises(ValueError, match="1-D"):
        op.matvec(operand)


def test_factory_picks_by_triangle_count(mesh):
    assert isinstance(
        make_kernel_operator(KERNEL, mesh), DenseKernelOperator
    )
    forced = make_kernel_operator(KERNEL, mesh, dense_threshold=0)
    assert isinstance(forced, TiledKernelOperator)
    assert mesh.num_triangles < DENSE_OPERATOR_THRESHOLD
    with pytest.raises(ValueError, match="dense_threshold"):
        make_kernel_operator(KERNEL, mesh, dense_threshold=-1)


def test_peak_bytes_estimates_are_sane(mesh):
    n = mesh.num_triangles
    tiled = TiledKernelOperator(KERNEL, mesh, max_tile_bytes=8192)
    dense = DenseKernelOperator(KERNEL, mesh)
    assert 0 < tiled.peak_bytes(8) < dense.peak_bytes(8)
    assert dense.peak_bytes(8) >= 8 * n * n
    # Bounded tiles: doubling the vector block must not scale the tile
    # term, only the vector term.
    assert tiled.peak_bytes(16) - tiled.peak_bytes(8) == 8 * 8 * (2 * n + n)
    with pytest.raises(ValueError, match="num_vectors"):
        tiled.peak_bytes(0)
    with pytest.raises(ValueError, match="num_vectors"):
        dense.peak_bytes(0)


def test_operand_shape_is_validated(mesh):
    op = TiledKernelOperator(KERNEL, mesh)
    with pytest.raises(ValueError, match="operand"):
        op.matmat(np.zeros((3, 2)))


def test_tile_budget_is_validated(mesh):
    with pytest.raises(ValueError, match="max_tile_bytes"):
        TiledKernelOperator(KERNEL, mesh, max_tile_bytes=0)


def test_dense_solve_bytes_counts_three_square_matrices():
    assert dense_solve_bytes(1000) == 3 * 1000 * 1000 * 8
    with pytest.raises(ValueError, match="num_triangles"):
        dense_solve_bytes(0)
