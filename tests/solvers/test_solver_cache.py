"""Cache-key discipline of the randomized eigensolve path.

A randomized solve is a pure function of (kernel, mesh, rank, rule,
oversampling, power iterations, seed) — so the disk cache must hit
bitwise on an identical tuple, miss on *any* changed coordinate, keep
the deterministic methods' keys byte-stable, and survive poisoned
entries by quarantine + rebuild (same contract as
``tests/utils/test_artifact_cache.py``).
"""

import os

import numpy as np
import pytest

from repro.core.galerkin import kle_cache_key, solve_kle
from repro.core.kernels import GaussianKernel
from repro.mesh.structured import structured_rectangle_mesh
from repro.utils.artifact_cache import ArtifactCache

KERNEL = GaussianKernel(c=1.4)
RANK = 10


@pytest.fixture(scope="module")
def mesh():
    return structured_rectangle_mesh(-1.0, -1.0, 1.0, 1.0, 7, 7)


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(str(tmp_path), name="kle-test")


def randomized_key(mesh, **overrides):
    params = dict(
        num_eigenpairs=RANK, method="randomized",
        oversampling=8, power_iterations=2, solver_seed=0,
    )
    params.update(overrides)
    return kle_cache_key(KERNEL, mesh, **params)


def test_same_parameters_hit_bitwise(mesh, cache):
    cold = solve_kle(
        KERNEL, mesh, num_eigenpairs=RANK, method="randomized", cache=cache
    )
    assert cache.stats.stores == 1
    warm = solve_kle(
        KERNEL, mesh, num_eigenpairs=RANK, method="randomized", cache=cache
    )
    assert cache.stats.hits == 1
    np.testing.assert_array_equal(cold.eigenvalues, warm.eigenvalues)
    np.testing.assert_array_equal(cold.d_vectors, warm.d_vectors)


def test_every_randomized_parameter_is_in_the_key(mesh):
    base = randomized_key(mesh)
    other_mesh = structured_rectangle_mesh(-1.0, -1.0, 1.0, 1.0, 8, 8)
    changed = {
        "kernel": kle_cache_key(
            GaussianKernel(c=2.0), mesh, num_eigenpairs=RANK,
            method="randomized", oversampling=8, power_iterations=2,
            solver_seed=0,
        ),
        "mesh": randomized_key(other_mesh),
        "rank": randomized_key(mesh, num_eigenpairs=RANK + 1),
        "oversampling": randomized_key(mesh, oversampling=9),
        "power_iterations": randomized_key(mesh, power_iterations=3),
        "seed": randomized_key(mesh, solver_seed=1),
        "method": kle_cache_key(KERNEL, mesh, num_eigenpairs=RANK),
    }
    assert all(key != base for key in changed.values()), changed
    assert len(set(changed.values())) == len(changed)


def test_changed_parameter_misses_the_cache(mesh, cache):
    solve_kle(
        KERNEL, mesh, num_eigenpairs=RANK, method="randomized",
        cache=cache, solver_seed=0,
    )
    solve_kle(
        KERNEL, mesh, num_eigenpairs=RANK, method="randomized",
        cache=cache, solver_seed=1,
    )
    assert cache.stats.hits == 0
    assert cache.stats.stores == 2


def test_deterministic_method_keys_ignore_solver_parameters(mesh):
    # Pre-existing dense/arpack entries must stay addressable: the new
    # arguments fold into the key only for method="randomized".
    plain = kle_cache_key(KERNEL, mesh, num_eigenpairs=RANK, method="dense")
    with_args = kle_cache_key(
        KERNEL, mesh, num_eigenpairs=RANK, method="dense",
        oversampling=31, power_iterations=7, solver_seed=99,
    )
    assert plain == with_args


def test_poisoned_entry_quarantines_and_rebuilds_bitwise(mesh, cache):
    cold = solve_kle(
        KERNEL, mesh, num_eigenpairs=RANK, method="randomized", cache=cache
    )
    key = randomized_key(mesh)
    path = cache.path_for(key)
    assert os.path.exists(path)
    blob = bytearray(open(path, "rb").read())
    blob[-10] ^= 0xFF  # flip a payload bit: checksum must catch it
    open(path, "wb").write(bytes(blob))

    rebuilt = solve_kle(
        KERNEL, mesh, num_eigenpairs=RANK, method="randomized", cache=cache
    )
    assert cache.stats.corruptions == 1
    assert os.path.exists(path + ".corrupt")
    np.testing.assert_array_equal(cold.eigenvalues, rebuilt.eigenvalues)
    np.testing.assert_array_equal(cold.d_vectors, rebuilt.d_vectors)
    # The rebuilt entry is healthy: next solve is a warm bitwise hit.
    hits_before = cache.stats.hits
    warm = solve_kle(
        KERNEL, mesh, num_eigenpairs=RANK, method="randomized", cache=cache
    )
    assert cache.stats.hits == hits_before + 1
    np.testing.assert_array_equal(cold.d_vectors, warm.d_vectors)
