"""Tests for the ``python -m repro.experiments`` CLI runner."""

import pytest

from repro.experiments.__main__ import EXHIBITS, RUNNERS, main


def test_every_exhibit_has_a_runner():
    assert set(EXHIBITS) == set(RUNNERS)


def test_cli_runs_fast_exhibits(capsys):
    exit_code = main(["fig1", "fig3"])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "Fig 1(a)" in out
    assert "gaussian wins: True" in out
    assert "max |error|" in out


def test_cli_fig45_renders_heatmaps(capsys):
    main(["fig45"])
    out = capsys.readouterr().out
    assert "r from the 1% criterion" in out
    assert "| marks r=" in out  # the decay plot marker
    assert "@@" in out  # heatmap shading present


def test_cli_all_keyword_selects_everything():
    import argparse

    parser_args = ["all"]
    # Don't actually run table1 (slow); just check expansion logic.
    from repro.experiments.__main__ import EXHIBITS

    selected = list(EXHIBITS) if "all" in parser_args else parser_args
    assert selected == list(EXHIBITS)
    del argparse


def test_cli_help_lists_mlmc_exhibit(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "mlmc" in out
    assert "table1" in out


def test_mlmc_exhibit_registered():
    assert "mlmc" in EXHIBITS
    assert "mlmc" in RUNNERS


def test_cli_rejects_unknown_exhibit():
    with pytest.raises(SystemExit):
        main(["fig99"])


def test_cli_save_writes_files(tmp_path, capsys):
    exit_code = main(["fig1", "--save", str(tmp_path)])
    assert exit_code == 0
    saved = (tmp_path / "fig1.txt").read_text()
    assert "Fig 1(a)" in saved
    # Output is still echoed to the console.
    assert "Fig 1(a)" in capsys.readouterr().out
