"""Small-configuration tests of the Fig. 6 sweep drivers.

The full-scale sweeps live in benchmarks/; here we verify the drivers'
mechanics (shapes, determinism, trend at drastic settings) cheaply.
"""

import pytest

from repro.experiments.fig6 import fig6a_error_vs_r, fig6b_error_vs_n


@pytest.fixture(scope="module")
def sweep_a():
    return fig6a_error_vs_r(
        circuit="c880", r_values=(2, 20), num_samples=400, seed=1
    )


def test_fig6a_structure(sweep_a):
    assert sweep_a.swept == "r"
    assert sweep_a.circuit == "c880"
    assert [p.swept_value for p in sweep_a.points] == [2, 20]
    assert sweep_a.num_samples == 400


def test_fig6a_trend_extreme_r(sweep_a):
    """r = 2 discards most field variance -> much larger sigma error."""
    errors = {p.swept_value: p.sigma_error_percent for p in sweep_a.points}
    assert errors[2] > errors[20]
    assert errors[2] > 5.0


def test_fig6a_reports_worst_metric_too(sweep_a):
    for point in sweep_a.points:
        assert point.worst_sigma_error_percent >= 0.0


def test_fig6b_structure_and_trend():
    sweep = fig6b_error_vs_n(
        circuit="c880", n_values=(24, 400), r=20, num_samples=400, seed=2
    )
    assert sweep.swept == "n"
    values = [p.swept_value for p in sweep.points]
    assert values[0] < values[1]  # actual triangle counts, ascending
    errors = [p.sigma_error_percent for p in sweep.points]
    assert errors[0] > errors[1]


def test_fig6a_deterministic():
    a = fig6a_error_vs_r(circuit="c880", r_values=(5,), num_samples=200, seed=3)
    b = fig6a_error_vs_r(circuit="c880", r_values=(5,), num_samples=200, seed=3)
    assert a.points[0].sigma_error_percent == pytest.approx(
        b.points[0].sigma_error_percent
    )
