"""Tests for the figure/table experiment drivers (small configurations).

These verify the *shape* claims of each exhibit at reduced sample counts;
the full-scale regeneration lives in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments.common import ExperimentContext
from repro.experiments.fig1 import fig1a_kernel_surface, fig1b_field_outcomes
from repro.experiments.fig3 import fig3a_kernel_fits, fig3b_reconstruction_error
from repro.experiments.fig45 import fig4_eigenfunctions, fig5_eigenvalue_decay
from repro.experiments.table1 import (
    default_table1_circuits,
    format_table1,
    run_table1,
)


@pytest.fixture(scope="module")
def context():
    return ExperimentContext()


def test_context_memoizes(context):
    assert context.kernel is context.kernel
    assert context.mesh is context.mesh
    assert context.circuit("c17") is context.circuit("c17")


def test_fig1a_surface_properties(context):
    data = fig1a_kernel_surface(context.kernel, resolution=31)
    assert data.values.shape == (31, 31)
    center = data.values[15, 15]
    assert center == pytest.approx(1.0)
    assert data.values.min() >= 0.0
    # Correlation decays away from the centre in every direction.
    assert data.values[0, 0] < 0.01


def test_fig1b_outcomes(context):
    data = fig1b_field_outcomes(context.kernel, resolution=16, num_outcomes=2,
                                seed=1)
    assert data.outcomes.shape == (2, 16, 16)
    assert not np.allclose(data.outcomes[0], data.outcomes[1])
    # Normalized field: std across the map near 1.
    assert 0.5 < data.outcomes.std() < 1.5


def test_fig3a_gaussian_wins():
    data = fig3a_kernel_fits()
    assert data.gaussian_wins
    assert data.gaussian.rmse < data.exponential.rmse


def test_fig3b_reconstruction_small_error(gaussian_kle):
    report = fig3b_reconstruction_error(gaussian_kle, r=25)
    assert report.max_abs_error < 0.05


def test_fig4_eigenfunction_maps(gaussian_kle):
    data = fig4_eigenfunctions(gaussian_kle, count=2, resolution=15)
    assert len(data.maps) == 2
    assert data.maps[0].shape == (15, 15)
    # First eigenfunction sign-definite, second oscillates (Fourier-like).
    assert np.all(data.maps[0] > 0) or np.all(data.maps[0] < 0)
    assert np.any(data.maps[1] > 0) and np.any(data.maps[1] < 0)


def test_fig5_decay_and_truncation(gaussian_kle):
    data = fig5_eigenvalue_decay(gaussian_kle)
    assert data.selected_r < data.eigenvalues.shape[0]
    assert data.variance_captured > 0.97
    # Rapid decay: the 30th eigenvalue is tiny relative to the first.
    assert data.eigenvalues[29] < 0.02 * data.eigenvalues[0]


def test_fig4_count_validation(gaussian_kle):
    with pytest.raises(ValueError, match="count"):
        fig4_eigenfunctions(gaussian_kle, count=0)


def test_default_table1_circuits_respects_gate(monkeypatch):
    monkeypatch.delenv("REPRO_FULL", raising=False)
    names = default_table1_circuits()
    assert "s35932" not in names
    assert "c880" in names
    monkeypatch.setenv("REPRO_FULL", "1")
    assert "s35932" in default_table1_circuits()


def test_run_table1_unknown_circuit_fails_fast():
    with pytest.raises(KeyError, match="unknown benchmark"):
        run_table1(circuits=["c9999"], num_samples=10)


def test_format_table1_layout():
    rows = run_table1(circuits=["c880"], num_samples=60, seed=0)
    text = format_table1(rows)
    assert "c880" in text
    assert "e_sigma" in text.splitlines()[0] or "e_sigma" in text
    assert len(text.splitlines()) == 3


def test_run_table1_parallel_matches_serial():
    serial = run_table1(circuits=["c880"], num_samples=60, seed=0, r=10)
    parallel = run_table1(
        circuits=["c880"], num_samples=60, seed=0, r=10, parallel=2
    )
    assert parallel[0].reference_mean == serial[0].reference_mean
    assert parallel[0].kle_std == serial[0].kle_std
    assert parallel[0].circuit == "c880"


def test_run_table1_parallel_validation():
    import pytest as _pytest

    with _pytest.raises(ValueError, match="parallel must be"):
        run_table1(circuits=["c880"], num_samples=10, parallel=0)


def test_default_engine_env(monkeypatch):
    from repro.experiments.common import default_engine

    assert default_engine() == "compiled"
    monkeypatch.setenv("REPRO_ENGINE", "reference")
    assert default_engine() == "reference"
    monkeypatch.setenv("REPRO_ENGINE", "turbo")
    import pytest as _pytest

    with _pytest.raises(ValueError, match="REPRO_ENGINE"):
        default_engine()


def test_run_table1_row_chunked():
    from repro.experiments.table1 import run_table1_row

    row = run_table1_row(
        "c880", num_samples=90, seed=0, r=10, chunk_size=40
    )
    assert row.num_samples == 90
    assert row.e_mu_percent >= 0.0


def test_default_kle_method_env(monkeypatch):
    import pytest as _pytest

    from repro.experiments.common import ExperimentContext, default_kle_method

    monkeypatch.delenv("REPRO_KLE_METHOD", raising=False)
    assert default_kle_method() == "dense"
    monkeypatch.setenv("REPRO_KLE_METHOD", "")
    assert default_kle_method() == "dense"
    for method in ("dense", "arpack", "randomized"):
        monkeypatch.setenv("REPRO_KLE_METHOD", method)
        assert default_kle_method() == method
        assert ExperimentContext()._solver_method() == method
    monkeypatch.setenv("REPRO_KLE_METHOD", "quantum")
    with _pytest.raises(ValueError, match="REPRO_KLE_METHOD"):
        default_kle_method()
    # An explicit context argument wins over the environment...
    assert ExperimentContext(kle_method="dense")._solver_method() == "dense"
    # ...and a bogus one fails at construction, not at first solve.
    with _pytest.raises(ValueError, match="kle_method"):
        ExperimentContext(kle_method="quantum")
