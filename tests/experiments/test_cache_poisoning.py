"""Regression locks for the seed's poisoned-cache failure mode.

The original seed shipped a ``.repro_cache/`` full of truncated ``.npz``
files; ``np.load`` raised ``zipfile.BadZipFile`` out of
``ExperimentContext.placement`` and seven tests died.  These tests seed a
deliberately poisoned cache directory and assert the experiment drivers
sail through it: quarantine, regenerate, re-store, and serve warm hits
afterwards.
"""

import os

import numpy as np
import pytest

from repro.core.galerkin import kle_cache_key, solve_kle
from repro.experiments.common import (
    ExperimentContext,
    PLACEMENT_SEED,
    cache_dir,
    get_context,
    kle_cache,
    placement_cache,
)
from repro.utils.artifact_cache import get_cache, reset_cache_registry


@pytest.fixture()
def poisoned_cache_dir(tmp_path, monkeypatch):
    """A REPRO_CACHE_DIR pre-seeded with corrupt entries (as the seed was)."""
    directory = tmp_path / "poisoned_cache"
    directory.mkdir()
    # Truncated zip header — exactly the corruption the seed shipped.
    for name in ("c17", "c880"):
        entry = directory / f"placement_{name}_seed{PLACEMENT_SEED}.npz"
        entry.write_bytes(b"PK\x03\x04 truncated beyond recovery")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(directory))
    reset_cache_registry()
    yield directory
    reset_cache_registry()


def test_cache_dir_honours_env(poisoned_cache_dir):
    assert cache_dir() == str(poisoned_cache_dir)
    assert placement_cache().directory == str(poisoned_cache_dir)
    assert kle_cache().directory == str(poisoned_cache_dir)


def test_placement_survives_poisoned_cache(poisoned_cache_dir):
    """The seed bug: a corrupt placement entry must regenerate, not raise."""
    context = ExperimentContext()
    placement = context.placement("c17")
    assert placement.gate_locations().shape[1] == 2
    # The poisoned entry was quarantined and a valid one re-stored.
    entry = poisoned_cache_dir / f"placement_c17_seed{PLACEMENT_SEED}.npz"
    assert (poisoned_cache_dir / (entry.name + ".corrupt")).exists()
    stats = placement_cache().stats
    assert stats.corruptions >= 1
    assert stats.stores >= 1
    # A fresh context now gets a warm hit off the regenerated entry.
    rebuilt = ExperimentContext().placement("c17")
    assert np.allclose(rebuilt.gate_locations(), placement.gate_locations())
    assert placement_cache().stats.hits >= 1


def test_fig6_driver_survives_poisoned_cache(poisoned_cache_dir):
    """End-to-end: the fig6 sweep driver used to die on the seed cache."""
    from repro.experiments.fig6 import fig6a_error_vs_r

    sweep = fig6a_error_vs_r(circuit="c17", r_values=(3,), num_samples=40, seed=0)
    assert len(sweep.points) == 1
    assert sweep.points[0].sigma_error_percent >= 0.0


def test_table1_driver_survives_poisoned_cache(poisoned_cache_dir):
    """End-to-end: the table1 driver used to die on the seed cache."""
    from repro.experiments.table1 import format_table1, run_table1

    rows = run_table1(circuits=["c880"], num_samples=40, seed=0)
    assert format_table1(rows)


def test_kle_disk_cache_poisoning_and_warm_hit(poisoned_cache_dir):
    """The KLE eigensolve cache also quarantines and then serves hits."""
    context = get_context()
    kernel = context.kernel
    from repro.mesh.structured import structured_rectangle_mesh

    mesh = structured_rectangle_mesh(-1, -1, 1, 1, 5, 5)
    cache = get_cache("kle", str(poisoned_cache_dir))
    key = kle_cache_key(kernel, mesh, num_eigenpairs=8)
    # Poison the exact entry this solve will look up.
    with open(cache.path_for(key), "wb") as handle:
        handle.write(b"\x00" * 100)

    first = solve_kle(kernel, mesh, num_eigenpairs=8, cache=cache)
    assert cache.stats.corruptions == 1
    assert os.path.exists(cache.path_for(key) + ".corrupt")

    second = solve_kle(kernel, mesh, num_eigenpairs=8, cache=cache)
    assert cache.stats.hits == 1
    assert np.allclose(first.eigenvalues, second.eigenvalues)
    assert np.allclose(first.d_vectors, second.d_vectors)
