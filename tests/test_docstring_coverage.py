"""Documentation-quality enforcement: every public symbol is documented.

Walks the package's public surface (everything re-exported through the
subpackage ``__all__`` lists) and asserts each module, class, function and
public method carries a docstring.  Keeps deliverable (e) honest as the
library grows.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.mesh",
    "repro.field",
    "repro.circuit",
    "repro.place",
    "repro.timing",
    "repro.mlmc",
    "repro.experiments",
    "repro.service",
    "repro.solvers",
    "repro.utils",
    "repro.viz",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_module_docstring(package_name):
    module = importlib.import_module(package_name)
    assert module.__doc__ and module.__doc__.strip(), (
        f"{package_name} lacks a module docstring"
    )


def _public_symbols():
    for package_name in PACKAGES:
        module = importlib.import_module(package_name)
        for name in getattr(module, "__all__", []):
            yield package_name, name, getattr(module, name)


@pytest.mark.parametrize(
    "package_name,name,symbol",
    [
        pytest.param(p, n, s, id=f"{p}.{n}")
        for p, n, s in _public_symbols()
        if inspect.isclass(s) or inspect.isfunction(s)
    ],
)
def test_public_symbol_documented(package_name, name, symbol):
    assert symbol.__doc__ and symbol.__doc__.strip(), (
        f"{package_name}.{name} lacks a docstring"
    )


@pytest.mark.parametrize(
    "package_name,name,symbol",
    [
        pytest.param(p, n, s, id=f"{p}.{n}")
        for p, n, s in _public_symbols()
        if inspect.isclass(s)
    ],
)
def test_public_methods_documented(package_name, name, symbol):
    undocumented = []
    for method_name, member in inspect.getmembers(symbol):
        if method_name.startswith("_"):
            continue
        if inspect.isfunction(member) or inspect.ismethod(member):
            # Only require docs for methods defined in this project;
            # inspect.getdoc follows the MRO, so a documented base-class
            # contract covers its overrides.
            if getattr(member, "__module__", "").startswith("repro"):
                doc = inspect.getdoc(member)
                if not (doc and doc.strip()):
                    undocumented.append(method_name)
    assert not undocumented, (
        f"{package_name}.{name} has undocumented methods: {undocumented}"
    )
