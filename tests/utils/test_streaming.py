"""Differential tests for the streaming statistics utilities."""

import numpy as np
import pytest

from repro.utils.streaming import P2Quantile, RunningMoments


class TestRunningMoments:
    def test_matches_numpy_across_batches(self, rng):
        values = rng.normal(5.0, 2.0, size=1000)
        moments = RunningMoments()
        for chunk in np.array_split(values, 13):
            moments.push(chunk)
        assert moments.count == 1000
        assert moments.mean == pytest.approx(values.mean(), rel=1e-12)
        assert moments.variance == pytest.approx(
            values.var(ddof=1), rel=1e-10
        )
        assert moments.std == pytest.approx(values.std(), rel=1e-10)
        assert moments.sem == pytest.approx(
            np.sqrt(values.var(ddof=1) / 1000), rel=1e-10
        )

    def test_empty_and_singleton(self):
        moments = RunningMoments()
        assert moments.count == 0
        assert moments.sem == 0.0
        moments.push(np.array([3.5]))
        assert moments.mean == 3.5
        assert moments.sem == float("inf")


class TestP2Quantile:
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.95])
    def test_differential_vs_exact_quantile(self, rng, p):
        """P² must track the exact sorted quantile on a large stream."""
        values = rng.normal(0.0, 1.0, size=20_000)
        estimator = P2Quantile(p)
        for chunk in np.array_split(values, 37):
            estimator.update(chunk)
        exact = float(np.quantile(values, p))
        assert estimator.value() == pytest.approx(exact, abs=0.03)

    def test_small_streams_are_exact(self, rng):
        estimator = P2Quantile(0.5)
        estimator.update(np.array([3.0, 1.0, 2.0]))
        assert estimator.value() == 2.0
        assert np.isnan(P2Quantile(0.5).value())

    def test_skewed_distribution(self, rng):
        """Heavier tails: the marker heights must still converge."""
        values = rng.lognormal(0.0, 1.0, size=30_000)
        estimator = P2Quantile(0.95)
        estimator.update(values)
        exact = float(np.quantile(values, 0.95))
        assert estimator.value() == pytest.approx(exact, rel=0.03)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestRunningMomentsMerge:
    def test_merge_equals_single_stream(self, rng):
        """Chan-merging per-worker accumulators must equal one big push."""
        values = rng.normal(-2.0, 3.0, size=900)
        workers = []
        for chunk in np.array_split(values, 7):
            worker = RunningMoments()
            worker.push(chunk)
            workers.append(worker)
        combined = RunningMoments()
        for worker in workers:
            combined.merge(worker)
        reference = RunningMoments()
        reference.push(values)
        assert combined.count == reference.count == 900
        assert combined.mean == pytest.approx(reference.mean, rel=1e-12)
        assert combined.variance == pytest.approx(reference.variance, rel=1e-10)

    def test_merge_empty_is_noop_both_directions(self, rng):
        populated = RunningMoments()
        populated.push(rng.normal(size=50))
        mean, var, count = populated.mean, populated.variance, populated.count
        populated.merge(RunningMoments())
        assert (populated.mean, populated.variance, populated.count) == (
            mean, var, count
        )
        empty = RunningMoments()
        empty.merge(populated)
        assert empty.count == count
        assert empty.mean == pytest.approx(mean, rel=1e-12)
        assert empty.variance == pytest.approx(var, rel=1e-12)
        # Two empties stay empty and NaN-free.
        both = RunningMoments()
        both.merge(RunningMoments())
        assert both.count == 0
        assert both.mean == 0.0

    def test_merge_singletons(self):
        """Single-sample accumulators merge to exact two-point moments."""
        a, b = RunningMoments(), RunningMoments()
        a.push(np.array([1.0]))
        b.push(np.array([3.0]))
        a.merge(b)
        assert a.count == 2
        assert a.mean == 2.0
        assert a.variance == 2.0
        assert a.variance_population == 1.0


class TestP2QuantileEmptyBatches:
    def test_empty_batch_is_noop(self, rng):
        estimator = P2Quantile(0.9)
        estimator.update(np.array([]))
        assert estimator.count == 0
        assert np.isnan(estimator.value())
        values = rng.normal(size=5_000)
        estimator.update(values)
        before = estimator.value()
        estimator.update(np.array([]))
        assert estimator.count == 5_000
        assert estimator.value() == before

    def test_single_observation_batches_match_bulk(self, rng):
        """Feeding one observation at a time is the canonical P² update;
        batched feeding must be bitwise-identical to it."""
        values = rng.normal(size=400)
        one_by_one = P2Quantile(0.75)
        for value in values:
            one_by_one.update(np.array([value]))
        bulk = P2Quantile(0.75)
        bulk.update(values)
        assert one_by_one.count == bulk.count == 400
        assert one_by_one.value() == bulk.value()
