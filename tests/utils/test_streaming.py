"""Differential tests for the streaming statistics utilities."""

import numpy as np
import pytest

from repro.utils.streaming import P2Quantile, RunningMoments


class TestRunningMoments:
    def test_matches_numpy_across_batches(self, rng):
        values = rng.normal(5.0, 2.0, size=1000)
        moments = RunningMoments()
        for chunk in np.array_split(values, 13):
            moments.push(chunk)
        assert moments.count == 1000
        assert moments.mean == pytest.approx(values.mean(), rel=1e-12)
        assert moments.variance == pytest.approx(
            values.var(ddof=1), rel=1e-10
        )
        assert moments.std == pytest.approx(values.std(), rel=1e-10)
        assert moments.sem == pytest.approx(
            np.sqrt(values.var(ddof=1) / 1000), rel=1e-10
        )

    def test_empty_and_singleton(self):
        moments = RunningMoments()
        assert moments.count == 0
        assert moments.sem == 0.0
        moments.push(np.array([3.5]))
        assert moments.mean == 3.5
        assert moments.sem == float("inf")


class TestP2Quantile:
    @pytest.mark.parametrize("p", [0.5, 0.9, 0.95])
    def test_differential_vs_exact_quantile(self, rng, p):
        """P² must track the exact sorted quantile on a large stream."""
        values = rng.normal(0.0, 1.0, size=20_000)
        estimator = P2Quantile(p)
        for chunk in np.array_split(values, 37):
            estimator.update(chunk)
        exact = float(np.quantile(values, p))
        assert estimator.value() == pytest.approx(exact, abs=0.03)

    def test_small_streams_are_exact(self, rng):
        estimator = P2Quantile(0.5)
        estimator.update(np.array([3.0, 1.0, 2.0]))
        assert estimator.value() == 2.0
        assert np.isnan(P2Quantile(0.5).value())

    def test_skewed_distribution(self, rng):
        """Heavier tails: the marker heights must still converge."""
        values = rng.lognormal(0.0, 1.0, size=30_000)
        estimator = P2Quantile(0.95)
        estimator.update(values)
        exact = float(np.quantile(values, 0.95))
        assert estimator.value() == pytest.approx(exact, rel=0.03)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)
