"""Tests for linear-algebra helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.linalg import (
    cholesky_with_jitter,
    is_positive_semidefinite,
    nearest_psd,
    symmetric_generalized_eigh,
)


def spd_matrix(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


def test_cholesky_plain_spd():
    mat = spd_matrix(6, 0)
    upper = cholesky_with_jitter(mat)
    assert np.allclose(upper.T @ upper, mat)
    assert np.allclose(np.tril(upper, -1), 0.0)


def test_cholesky_jitter_rescues_singular():
    """A rank-deficient PSD matrix fails plain Cholesky but succeeds with
    jitter (the correlated-field covariance case)."""
    v = np.array([[1.0], [1.0], [1.0]])
    mat = v @ v.T  # rank 1
    upper = cholesky_with_jitter(mat)
    assert np.allclose(upper.T @ upper, mat, atol=1e-4)


def test_cholesky_rejects_hopeless_matrix():
    mat = -np.eye(4)
    with pytest.raises(np.linalg.LinAlgError):
        cholesky_with_jitter(mat, max_tries=3)


def test_cholesky_rejects_nonsquare():
    with pytest.raises(ValueError, match="square"):
        cholesky_with_jitter(np.zeros((2, 3)))


def test_is_psd_true_cases():
    assert is_positive_semidefinite(np.eye(3))
    assert is_positive_semidefinite(spd_matrix(5, 1))
    assert is_positive_semidefinite(np.zeros((3, 3)))


def test_is_psd_false_cases():
    assert not is_positive_semidefinite(-np.eye(2))
    asym = np.array([[1.0, 2.0], [0.0, 1.0]])
    assert not is_positive_semidefinite(asym)


def test_is_psd_tolerates_roundoff():
    mat = np.eye(3)
    mat[0, 0] = 1.0 - 1e-12
    mat -= 1e-12 * np.ones((3, 3))
    sym = 0.5 * (mat + mat.T)
    assert is_positive_semidefinite(sym)


def test_nearest_psd_projects():
    mat = np.array([[1.0, 0.99], [0.99, 1.0]])
    mat[0, 1] = mat[1, 0] = 1.5  # invalid correlation
    fixed = nearest_psd(mat)
    assert is_positive_semidefinite(fixed)


def test_nearest_psd_identity_on_psd():
    mat = spd_matrix(4, 2)
    assert np.allclose(nearest_psd(mat), mat, atol=1e-10)


def test_generalized_eigh_diagonal_phi():
    """K d = λ Φ d with diagonal Φ equals scipy's dense GEP solution."""
    import scipy.linalg

    rng = np.random.default_rng(3)
    n = 12
    k = spd_matrix(n, 4)
    phi = rng.uniform(0.5, 2.0, n)
    eigvals, d = symmetric_generalized_eigh(k, phi)
    ref_vals = scipy.linalg.eigh(k, np.diag(phi), eigvals_only=True)[::-1]
    assert np.allclose(eigvals, ref_vals, atol=1e-9)
    # Residual check K d = λ Φ d.
    for j in range(n):
        assert np.allclose(
            k @ d[:, j], eigvals[j] * phi * d[:, j], atol=1e-8
        )


def test_generalized_eigh_phi_normalization():
    k = spd_matrix(8, 5)
    phi = np.random.default_rng(6).uniform(0.5, 2.0, 8)
    _, d = symmetric_generalized_eigh(k, phi)
    gram = d.T @ (phi[:, None] * d)
    assert np.allclose(gram, np.eye(8), atol=1e-9)


def test_generalized_eigh_truncation():
    k = spd_matrix(10, 7)
    phi = np.ones(10)
    eigvals, d = symmetric_generalized_eigh(k, phi, num_eigenpairs=4)
    assert eigvals.shape == (4,)
    assert d.shape == (10, 4)
    full_vals, _ = symmetric_generalized_eigh(k, phi)
    assert np.allclose(eigvals, full_vals[:4])


def test_generalized_eigh_validation():
    with pytest.raises(ValueError, match="square"):
        symmetric_generalized_eigh(np.zeros((2, 3)), np.ones(2))
    with pytest.raises(ValueError, match="incompatible"):
        symmetric_generalized_eigh(np.eye(3), np.ones(2))
    with pytest.raises(ValueError, match="positive"):
        symmetric_generalized_eigh(np.eye(2), np.array([1.0, 0.0]))
    with pytest.raises(ValueError, match="num_eigenpairs"):
        symmetric_generalized_eigh(np.eye(2), np.ones(2), num_eigenpairs=0)


@given(st.integers(min_value=2, max_value=8), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_cholesky_roundtrip_property(n, seed):
    mat = spd_matrix(n, seed)
    upper = cholesky_with_jitter(mat)
    assert np.allclose(upper.T @ upper, mat, rtol=1e-8, atol=1e-8)


@given(st.integers(min_value=2, max_value=8), st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_generalized_eigh_trace_property(n, seed):
    """Σ λ_j = trace(Φ⁻¹K): eigenvalue sum is preserved by the transform."""
    mat = spd_matrix(n, seed)
    phi = np.random.default_rng(seed).uniform(0.5, 2.0, n)
    eigvals, _ = symmetric_generalized_eigh(mat, phi)
    assert np.sum(eigvals) == pytest.approx(np.sum(np.diag(mat) / phi), rel=1e-9)


def test_generalized_eigh_arpack_matches_dense():
    """Iterative Lanczos path agrees with LAPACK on the leading pairs."""
    k = spd_matrix(40, 11)
    phi = np.random.default_rng(12).uniform(0.5, 2.0, 40)
    dense_vals, dense_vecs = symmetric_generalized_eigh(
        k, phi, num_eigenpairs=6
    )
    arpack_vals, arpack_vecs = symmetric_generalized_eigh(
        k, phi, num_eigenpairs=6, method="arpack"
    )
    assert np.allclose(arpack_vals, dense_vals, rtol=1e-8)
    # Eigenvectors match up to sign.
    for j in range(6):
        dot = abs(
            np.dot(phi * dense_vecs[:, j], arpack_vecs[:, j])
        )
        assert dot == pytest.approx(1.0, abs=1e-6)


def test_generalized_eigh_arpack_requires_k():
    with pytest.raises(ValueError, match="requires num_eigenpairs"):
        symmetric_generalized_eigh(
            np.eye(5), np.ones(5), method="arpack"
        )


def test_generalized_eigh_unknown_method():
    with pytest.raises(ValueError, match="dense.*arpack|arpack.*dense"):
        symmetric_generalized_eigh(
            np.eye(3), np.ones(3), method="magma"
        )
