"""Unit tests for the noise-disciplined bench timer."""

import pytest

from repro.utils.bench import TimingStats, timed_median


def test_counts_warmup_and_timed_calls_separately():
    calls = []
    stats = timed_median(lambda: calls.append(1), repeats=4, warmup=2)
    assert len(calls) == 6
    assert stats.repeats == 4
    assert stats.warmup == 2
    assert len(stats.samples) == 4


def test_order_statistics_are_consistent():
    stats = timed_median(lambda: None, repeats=7, warmup=0)
    assert stats.best <= stats.median <= stats.worst
    assert stats.iqr >= 0.0
    assert stats.best == min(stats.samples)
    assert stats.worst == max(stats.samples)


def test_single_repeat_degenerates_cleanly():
    stats = timed_median(lambda: None, repeats=1, warmup=0)
    assert stats.median == stats.best == stats.worst == stats.samples[0]
    assert stats.iqr == 0.0


def test_to_dict_is_json_shaped():
    record = timed_median(lambda: None, repeats=3).to_dict()
    assert set(record) == {
        "median_s",
        "iqr_s",
        "best_s",
        "worst_s",
        "repeats",
        "warmup",
        "samples_s",
    }
    assert record["repeats"] == 3
    assert len(record["samples_s"]) == 3


@pytest.mark.parametrize("kwargs", [dict(repeats=0), dict(warmup=-1)])
def test_invalid_parameters_are_rejected(kwargs):
    with pytest.raises(ValueError):
        timed_median(lambda: None, **kwargs)


def test_timing_stats_is_immutable():
    stats = timed_median(lambda: None, repeats=2)
    with pytest.raises(AttributeError):
        stats.median = 0.0  # type: ignore[misc]
    assert isinstance(stats, TimingStats)
