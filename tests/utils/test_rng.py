"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


def test_as_generator_from_int():
    a = as_generator(7)
    b = as_generator(7)
    assert a.standard_normal(5).tolist() == b.standard_normal(5).tolist()


def test_as_generator_passthrough():
    rng = np.random.default_rng(0)
    assert as_generator(rng) is rng


def test_as_generator_none_gives_fresh_stream():
    a = as_generator(None).standard_normal(8)
    b = as_generator(None).standard_normal(8)
    assert not np.array_equal(a, b)


def test_as_generator_seed_sequence():
    seq = np.random.SeedSequence(3)
    a = as_generator(seq).standard_normal(4)
    b = as_generator(np.random.SeedSequence(3)).standard_normal(4)
    assert np.array_equal(a, b)


def test_spawn_generators_independent_and_reproducible():
    first = spawn_generators(11, 3)
    second = spawn_generators(11, 3)
    draws_first = [g.standard_normal(6) for g in first]
    draws_second = [g.standard_normal(6) for g in second]
    for a, b in zip(draws_first, draws_second):
        assert np.array_equal(a, b)
    # Streams differ from each other.
    assert not np.array_equal(draws_first[0], draws_first[1])


def test_spawn_generators_from_generator_consumes_state():
    rng = np.random.default_rng(5)
    first = spawn_generators(rng, 2)
    second = spawn_generators(rng, 2)
    a = first[0].standard_normal(4)
    b = second[0].standard_normal(4)
    assert not np.array_equal(a, b)


def test_spawn_generators_count_zero():
    assert spawn_generators(1, 0) == []


def test_spawn_generators_negative_count():
    with pytest.raises(ValueError, match="non-negative"):
        spawn_generators(1, -1)


def test_spawn_seed_sequences_reproducible_for_int_seed():
    from repro.utils.rng import spawn_seed_sequences

    first = spawn_seed_sequences(11, 3)
    second = spawn_seed_sequences(11, 3)
    for a, b in zip(first, second):
        assert np.array_equal(
            np.random.default_rng(a).standard_normal(6),
            np.random.default_rng(b).standard_normal(6),
        )


def test_spawn_seed_sequences_children_are_independent():
    from repro.utils.rng import spawn_seed_sequences

    children = spawn_seed_sequences(5, 3)
    draws = [np.random.default_rng(c).standard_normal(8) for c in children]
    assert not np.array_equal(draws[0], draws[1])
    assert not np.array_equal(draws[1], draws[2])


def test_spawn_seed_sequences_none_draws_entropy_once():
    from repro.utils.rng import spawn_seed_sequences

    children = spawn_seed_sequences(None, 2)
    draws = [np.random.default_rng(c).standard_normal(8) for c in children]
    assert not np.array_equal(draws[0], draws[1])


def test_spawn_seed_sequences_consumes_spawn_state():
    from repro.utils.rng import spawn_seed_sequences

    root = np.random.SeedSequence(9)
    first = spawn_seed_sequences(root, 2)
    second = spawn_seed_sequences(root, 2)
    a = np.random.default_rng(first[0]).standard_normal(4)
    b = np.random.default_rng(second[0]).standard_normal(4)
    assert not np.array_equal(a, b)


def test_spawn_seed_sequences_negative_count():
    from repro.utils.rng import spawn_seed_sequences

    with pytest.raises(ValueError, match="non-negative"):
        spawn_seed_sequences(0, -1)
