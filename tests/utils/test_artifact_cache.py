"""Fault-injection suite for the artifact cache.

Deliberately truncates, bit-flips, version-skews and schema-corrupts cache
entries and asserts the cache *always* degrades gracefully: every scenario
ends in quarantine + regeneration, never an exception out of the cache
layer.
"""

import json
import os
import struct
import threading

import numpy as np
import pytest

from repro.utils.artifact_cache import (
    FORMAT_VERSION,
    MAGIC,
    ArtifactCache,
    CorruptArtifactError,
    _pack_container,
    cache_stats,
    format_cache_stats,
    get_cache,
    read_artifact,
    reset_cache_registry,
    write_artifact,
)

PAYLOAD = {"values": np.arange(12.0).reshape(3, 4), "labels": np.array(["a", "b"])}
SCHEMA = "test-v1"


@pytest.fixture()
def cache(tmp_path):
    return ArtifactCache(str(tmp_path), name="test")


def fresh():
    return {k: np.array(v) for k, v in PAYLOAD.items()}


def assert_roundtrip(arrays):
    assert np.array_equal(arrays["values"], PAYLOAD["values"])
    assert [str(x) for x in arrays["labels"]] == ["a", "b"]


# ----------------------------------------------------------------------
# Happy path.
# ----------------------------------------------------------------------
def test_store_load_roundtrip(cache):
    assert cache.store("entry", fresh(), schema=SCHEMA)
    arrays = cache.load("entry", schema=SCHEMA)
    assert_roundtrip(arrays)
    assert cache.stats.hits == 1
    assert cache.stats.stores == 1
    assert cache.stats.corruptions == 0


def test_absent_key_is_a_plain_miss(cache):
    assert cache.load("nothing", schema=SCHEMA) is None
    assert cache.stats.misses == 1
    assert cache.stats.corruptions == 0


def test_bad_key_rejected(cache):
    with pytest.raises(ValueError, match="bare file stem"):
        cache.path_for("../escape")


# ----------------------------------------------------------------------
# Corruption scenarios.  Each must quarantine + regenerate, never raise.
# ----------------------------------------------------------------------
def corrupt_cases():
    def truncate(path):
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])

    def truncate_header(path):
        open(path, "wb").write(open(path, "rb").read()[: len(MAGIC) + 2])

    def bitflip(path):
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0xFF  # inside the compressed payload
        open(path, "wb").write(bytes(blob))

    def version_skew(path):
        blob = _pack_container(fresh(), schema=SCHEMA, format_version=FORMAT_VERSION + 7)
        open(path, "wb").write(blob)

    def schema_skew(path):
        blob = _pack_container(fresh(), schema="someone-elses-schema")
        open(path, "wb").write(blob)

    def missing_key(path):
        blob = _pack_container({"values": PAYLOAD["values"]}, schema=SCHEMA)
        open(path, "wb").write(blob)

    def empty_file(path):
        open(path, "wb").close()

    def garbage(path):
        open(path, "wb").write(b"this is not an artifact container at all")

    def legacy_plain_npz(path):
        np.savez_compressed(path.replace(".npz", ""), **fresh())

    def header_garbage(path):
        header = b"\xff\xfe not json"
        open(path, "wb").write(MAGIC + struct.pack(">I", len(header)) + header)

    return [
        ("truncated", truncate),
        ("truncated-header", truncate_header),
        ("bit-flipped", bitflip),
        ("version-skew", version_skew),
        ("schema-skew", schema_skew),
        ("missing-key", missing_key),
        ("empty", empty_file),
        ("garbage", garbage),
        ("legacy-plain-npz", legacy_plain_npz),
        ("header-garbage", header_garbage),
    ]


@pytest.mark.parametrize("label,poison", corrupt_cases(), ids=lambda c: c if isinstance(c, str) else "")
def test_corruption_quarantines_and_regenerates(cache, label, poison):
    cache.store("entry", fresh(), schema=SCHEMA)
    poison(cache.path_for("entry"))

    regenerated = {"count": 0}

    def factory():
        regenerated["count"] += 1
        return fresh()

    arrays = cache.get_or_create(
        "entry", factory, schema=SCHEMA, required_keys=("values", "labels")
    )
    assert_roundtrip(arrays)
    assert regenerated["count"] == 1, label
    assert cache.stats.corruptions == 1, label
    assert os.path.exists(cache.path_for("entry") + ".corrupt"), label
    # The regenerated entry is valid: the next load is a clean hit.
    assert cache.load("entry", schema=SCHEMA, required_keys=("values",)) is not None
    assert cache.stats.hits >= 1


def test_read_artifact_reports_failure_kind(tmp_path):
    path = str(tmp_path / "a.npz")
    write_artifact(path, fresh(), schema=SCHEMA)
    blob = bytearray(open(path, "rb").read())
    blob[-5] ^= 0x01
    open(path, "wb").write(bytes(blob))
    with pytest.raises(CorruptArtifactError) as excinfo:
        read_artifact(path, schema=SCHEMA)
    assert excinfo.value.kind == "checksum"


def test_version_skew_kind(tmp_path):
    path = str(tmp_path / "a.npz")
    open(path, "wb").write(
        _pack_container(fresh(), schema=SCHEMA, format_version=99)
    )
    with pytest.raises(CorruptArtifactError) as excinfo:
        read_artifact(path, schema=SCHEMA)
    assert excinfo.value.kind == "version"


def test_checksum_matches_recorded_header(tmp_path):
    """The header's digest really is the SHA-256 of the payload bytes."""
    import hashlib

    path = str(tmp_path / "a.npz")
    write_artifact(path, fresh(), schema=SCHEMA)
    blob = open(path, "rb").read()
    header_len = struct.unpack(">I", blob[len(MAGIC) : len(MAGIC) + 4])[0]
    header = json.loads(blob[len(MAGIC) + 4 : len(MAGIC) + 4 + header_len])
    payload = blob[len(MAGIC) + 4 + header_len :]
    assert header["sha256"] == hashlib.sha256(payload).hexdigest()
    assert header["payload_bytes"] == len(payload)
    assert header["format"] == FORMAT_VERSION


# ----------------------------------------------------------------------
# Atomicity / concurrency.
# ----------------------------------------------------------------------
def test_concurrent_writers_leave_one_complete_entry(cache):
    """Racing writers must end with a complete entry and no temp litter."""
    payload_a = {"values": np.zeros((64, 64)), "labels": np.array(["a"])}
    payload_b = {"values": np.ones((64, 64)), "labels": np.array(["b"])}
    errors = []

    def writer(payload):
        try:
            for _ in range(20):
                cache.store("entry", payload, schema=SCHEMA)
        except Exception as exc:  # pragma: no cover - the assertion target
            errors.append(exc)

    threads = [
        threading.Thread(target=writer, args=(p,))
        for p in (payload_a, payload_b)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    arrays = cache.load("entry", schema=SCHEMA, required_keys=("values",))
    assert arrays is not None  # never a torn write
    assert str(arrays["labels"][0]) in ("a", "b")
    leftovers = [f for f in os.listdir(cache.directory) if ".tmp" in f]
    assert leftovers == []


def test_store_is_best_effort_on_unusable_dir(tmp_path):
    """A cache dir that cannot be created degrades to a no-op store.

    (A plain file sits where the directory should be — works even when
    the suite runs as root, unlike a chmod-based read-only check.)
    """
    blocker = tmp_path / "blocker"
    blocker.write_text("not a directory")
    cache = ArtifactCache(str(blocker), name="ro")
    assert cache.store("entry", fresh(), schema=SCHEMA) is False
    assert cache.stats.store_failures == 1
    assert cache.stats.stores == 0


# ----------------------------------------------------------------------
# Registry + observability.
# ----------------------------------------------------------------------
def test_registry_and_stats(tmp_path):
    reset_cache_registry()
    try:
        cache = get_cache("unit-test", str(tmp_path))
        assert get_cache("unit-test", str(tmp_path)) is cache
        cache.store("k", fresh(), schema=SCHEMA)
        cache.load("k", schema=SCHEMA)
        cache.load("absent", schema=SCHEMA)
        snapshot = cache_stats("unit-test")["unit-test"]
        assert snapshot["hits"] == 1
        assert snapshot["misses"] == 1
        assert snapshot["stores"] == 1
        assert snapshot["load_seconds"] >= 0.0
        assert "unit-test" in format_cache_stats()
        # Repointing the directory (as REPRO_CACHE_DIR monkeypatching does)
        # swaps in a fresh cache with fresh counters.
        other = get_cache("unit-test", str(tmp_path / "elsewhere"))
        assert other is not cache
        assert cache_stats("unit-test")["unit-test"]["hits"] == 0
    finally:
        reset_cache_registry()


def test_stats_snapshot_is_detached(cache):
    cache.store("k", fresh(), schema=SCHEMA)
    snapshot = cache.stats.as_dict()
    cache.load("k", schema=SCHEMA)
    assert snapshot["hits"] == 0
    assert cache.stats.hits == 1


# ----------------------------------------------------------------------
# Read-only guarantee: loaded entries are frozen shared state.
# ----------------------------------------------------------------------
def test_loaded_arrays_are_read_only(cache):
    cache.store("entry", fresh(), schema=SCHEMA)
    arrays = cache.load("entry", schema=SCHEMA)
    for name, array in arrays.items():
        assert not array.flags.writeable, name
    with pytest.raises(ValueError, match="read-only"):
        arrays["values"][0, 0] = 99.0
    # The bytes on disk (and any future load) are unaffected either way.
    assert_roundtrip(cache.load("entry", schema=SCHEMA))


def test_read_artifact_arrays_are_read_only(tmp_path):
    path = str(tmp_path / "direct.npz")
    write_artifact(path, fresh(), schema=SCHEMA)
    arrays = read_artifact(path, schema=SCHEMA)
    assert all(not a.flags.writeable for a in arrays.values())
    with pytest.raises(ValueError, match="read-only"):
        arrays["values"] += 1.0


def test_get_or_create_is_read_only_on_both_paths(cache):
    # Cold path: the factory result comes back frozen...
    cold = cache.get_or_create("entry", fresh, schema=SCHEMA)
    with pytest.raises(ValueError, match="read-only"):
        cold["values"][:] = 0.0
    # ...and the warm (cache-hit) path behaves identically.
    warm = cache.get_or_create(
        "entry", lambda: pytest.fail("factory on a warm hit"), schema=SCHEMA
    )
    with pytest.raises(ValueError, match="read-only"):
        warm["values"][:] = 0.0
    assert_roundtrip(warm)


def test_read_only_copy_is_writable_again(cache):
    # The sanctioned escape hatch: np.array(...) gives a private copy.
    cache.store("entry", fresh(), schema=SCHEMA)
    arrays = cache.load("entry", schema=SCHEMA)
    copy = np.array(arrays["values"])
    copy[0, 0] = 99.0
    assert arrays["values"][0, 0] == 0.0
