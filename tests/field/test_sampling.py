"""Tests for the Algorithm 1 / Algorithm 2 sample generators."""

import numpy as np
import pytest

from repro.core.kernels import GaussianKernel
from repro.field.sampling import CholeskySampleGenerator, KLESampleGenerator


@pytest.fixture(scope="module")
def gate_locations():
    rng = np.random.default_rng(21)
    return rng.uniform(-0.95, 0.95, (50, 2))


@pytest.fixture(scope="module")
def kernels(gaussian_kernel):
    return {name: gaussian_kernel for name in ("L", "W", "Vt", "tox")}


def test_cholesky_generator_shapes(kernels, gate_locations):
    generator = CholeskySampleGenerator(kernels)
    result = generator.generate(gate_locations, 30, seed=0)
    assert set(result.samples) == {"L", "W", "Vt", "tox"}
    for matrix in result.samples.values():
        assert matrix.shape == (30, 50)
    assert result.total_seconds >= 0.0


def test_cholesky_parameters_mutually_independent(kernels, gate_locations):
    generator = CholeskySampleGenerator(kernels)
    result = generator.generate(gate_locations, 20000, seed=1)
    l_vals = result.samples["L"][:, 0]
    w_vals = result.samples["W"][:, 0]
    assert abs(np.corrcoef(l_vals, w_vals)[0, 1]) < 0.03


def test_cholesky_covariance_matches_kernel(kernels, gate_locations, gaussian_kernel):
    generator = CholeskySampleGenerator(kernels)
    result = generator.generate(gate_locations, 30000, seed=2)
    empirical = np.cov(result.samples["L"].T)
    expected = gaussian_kernel.matrix(gate_locations)
    assert np.max(np.abs(empirical - expected)) < 0.07


def test_cholesky_setup_cached(kernels, gate_locations):
    generator = CholeskySampleGenerator(kernels)
    first = generator.generate(gate_locations, 5, seed=3)
    second = generator.generate(gate_locations, 5, seed=3)
    assert first.setup_seconds > 0.0
    assert second.setup_seconds == 0.0
    # Shared kernel object -> one factorization for all four parameters.
    assert len(generator._factor_cache) == 1


def test_cholesky_relocation_invalidates_cache(kernels, gate_locations):
    generator = CholeskySampleGenerator(kernels)
    generator.generate(gate_locations, 5, seed=3)
    moved = gate_locations + 0.01
    again = generator.generate(moved, 5, seed=3)
    assert again.setup_seconds > 0.0


def test_kle_generator_shapes(gaussian_kle, gate_locations):
    generator = KLESampleGenerator(
        {name: gaussian_kle for name in ("L", "W", "Vt", "tox")}, r=20
    )
    result = generator.generate(gate_locations, 40, seed=4)
    for matrix in result.samples.values():
        assert matrix.shape == (40, 50)


def test_kle_generator_default_r_uses_criterion(gaussian_kle, gate_locations):
    generator = KLESampleGenerator({"L": gaussian_kle})
    assert generator.r["L"] == gaussian_kle.select_truncation()


def test_kle_covariance_matches_model_and_kernel(
    gaussian_kle, gate_locations, gaussian_kernel
):
    r = gaussian_kle.select_truncation()
    generator = KLESampleGenerator({"L": gaussian_kle}, r=r)
    result = generator.generate(gate_locations, 30000, seed=5)
    empirical = np.cov(result.samples["L"].T)
    # Tight agreement with the KLE's own triangle-level covariance
    # (only MC noise separates them) ...
    tri = gaussian_kle.locator.locate_many(gate_locations)
    model = gaussian_kle.covariance_on_triangles(r=r)[np.ix_(tri, tri)]
    assert np.max(np.abs(empirical - model)) < 0.07
    # ... and agreement with the kernel up to the O(h) piecewise-constant
    # bias of the coarse test mesh (h ~ 0.28 here).
    expected = gaussian_kernel.matrix(gate_locations)
    h = gaussian_kle.mesh.max_side()
    assert np.max(np.abs(empirical - expected)) < 1.2 * h


def test_kle_same_triangle_gates_identical(gaussian_kle):
    """Algorithm 2 assigns one value per triangle: co-located gates match."""
    pts = np.array([[0.01, 0.01], [0.012, 0.012]])
    generator = KLESampleGenerator({"L": gaussian_kle}, r=10)
    result = generator.generate(pts, 50, seed=6)
    tri = gaussian_kle.locator.locate_many(pts)
    if tri[0] == tri[1]:
        assert np.array_equal(
            result.samples["L"][:, 0], result.samples["L"][:, 1]
        )


def test_kle_parameters_independent(gaussian_kle, gate_locations):
    generator = KLESampleGenerator(
        {"L": gaussian_kle, "Vt": gaussian_kle}, r=15
    )
    result = generator.generate(gate_locations, 20000, seed=7)
    corr = np.corrcoef(
        result.samples["L"][:, 0], result.samples["Vt"][:, 0]
    )[0, 1]
    assert abs(corr) < 0.03


def test_generators_deterministic(kernels, gaussian_kle, gate_locations):
    for generator in (
        CholeskySampleGenerator(kernels),
        KLESampleGenerator({"L": gaussian_kle}, r=5),
    ):
        a = generator.generate(gate_locations, 10, seed=42).samples
        b = generator.generate(gate_locations, 10, seed=42).samples
        for name in a:
            assert np.array_equal(a[name], b[name])


def test_empty_parameter_maps_rejected():
    with pytest.raises(ValueError, match="at least one"):
        CholeskySampleGenerator({})
    with pytest.raises(ValueError, match="at least one"):
        KLESampleGenerator({})


def test_bad_r_rejected(gaussian_kle):
    with pytest.raises(ValueError, match="outside"):
        KLESampleGenerator({"L": gaussian_kle}, r=10_000)


def test_bad_num_samples_rejected(kernels, gaussian_kle, gate_locations):
    with pytest.raises(ValueError, match="num_samples"):
        CholeskySampleGenerator(kernels).generate(gate_locations, 0)
    with pytest.raises(ValueError, match="num_samples"):
        KLESampleGenerator({"L": gaussian_kle}, r=3).generate(
            gate_locations, 0
        )


# ---------------------------------------------------------------------------
# Cross-correlated parameters (the C ⊗ K extension).
# ---------------------------------------------------------------------------
def _cross_matrix(rho):
    c = np.eye(4)
    c[0, 1] = c[1, 0] = rho  # L-W coupling
    return c


def test_cross_correlation_cholesky_generator(kernels, gate_locations):
    generator = CholeskySampleGenerator(
        kernels, cross_correlation=_cross_matrix(-0.6)
    )
    result = generator.generate(gate_locations, 20000, seed=10)
    l_vals = result.samples["L"][:, 0]
    w_vals = result.samples["W"][:, 0]
    assert np.corrcoef(l_vals, w_vals)[0, 1] == pytest.approx(-0.6, abs=0.03)
    # Uncoupled pair stays independent.
    vt = result.samples["Vt"][:, 0]
    assert abs(np.corrcoef(l_vals, vt)[0, 1]) < 0.03
    # Marginals stay unit-variance.
    assert w_vals.std() == pytest.approx(1.0, abs=0.03)


def test_cross_correlation_kle_generator(gaussian_kle, gate_locations):
    kles = {name: gaussian_kle for name in ("L", "W", "Vt", "tox")}
    generator = KLESampleGenerator(
        kles, r=20, cross_correlation=_cross_matrix(0.7)
    )
    result = generator.generate(gate_locations, 20000, seed=11)
    l_vals = result.samples["L"][:, 3]
    w_vals = result.samples["W"][:, 3]
    assert np.corrcoef(l_vals, w_vals)[0, 1] == pytest.approx(0.7, abs=0.04)


def test_cross_correlation_preserves_spatial_structure(
    kernels, gate_locations, gaussian_kernel
):
    """The coupled model is separable: spatial correlation is unchanged."""
    generator = CholeskySampleGenerator(
        kernels, cross_correlation=_cross_matrix(0.5)
    )
    result = generator.generate(gate_locations, 30000, seed=12)
    empirical = np.cov(result.samples["W"].T)
    expected = gaussian_kernel.matrix(gate_locations)
    assert np.max(np.abs(empirical - expected)) < 0.08


def test_cross_correlation_validation(kernels, gaussian_kernel, gaussian_kle):
    with pytest.raises(ValueError, match="must be \\(4, 4\\)"):
        CholeskySampleGenerator(kernels, cross_correlation=np.eye(3))
    bad = np.eye(4)
    bad[0, 1] = 0.5  # asymmetric
    with pytest.raises(ValueError, match="symmetric"):
        CholeskySampleGenerator(kernels, cross_correlation=bad)
    bad_diag = np.eye(4) * 2.0
    with pytest.raises(ValueError, match="unit diagonal"):
        CholeskySampleGenerator(kernels, cross_correlation=bad_diag)
    # Distinct kernel objects: the separable model is ill-defined.
    from repro.core.kernels import GaussianKernel

    distinct = {
        "L": GaussianKernel(2.7),
        "W": GaussianKernel(2.7),
        "Vt": gaussian_kernel,
        "tox": gaussian_kernel,
    }
    with pytest.raises(ValueError, match="share one"):
        CholeskySampleGenerator(distinct, cross_correlation=np.eye(4))


# ---------------------------------------------------------------------------
# Variance-reduced sampling (antithetic / Sobol QMC).
# ---------------------------------------------------------------------------
def test_antithetic_pairs_mirror(gaussian_kle, gate_locations):
    generator = KLESampleGenerator(
        {"L": gaussian_kle}, r=10, sampler="antithetic"
    )
    result = generator.generate(gate_locations, 40, seed=1)
    values = result.samples["L"]
    assert np.allclose(values[:20], -values[20:])


def test_antithetic_odd_sample_count(gaussian_kle, gate_locations):
    generator = KLESampleGenerator(
        {"L": gaussian_kle}, r=10, sampler="antithetic"
    )
    result = generator.generate(gate_locations, 41, seed=1)
    assert result.samples["L"].shape == (41, 50)


def test_sobol_marginals_standard_normal(gaussian_kle, gate_locations):
    generator = KLESampleGenerator(
        {"L": gaussian_kle}, r=15, sampler="sobol"
    )
    result = generator.generate(gate_locations, 1024, seed=2)
    values = result.samples["L"]
    assert abs(values.mean()) < 0.05
    assert values.var(axis=0).mean() == pytest.approx(1.0, abs=0.08)


def test_sobol_parameters_stay_independent(gaussian_kle, gate_locations):
    """The joint-engine construction must not correlate distinct
    parameters (the independently-scrambled-engines pitfall)."""
    kles = {name: gaussian_kle for name in ("L", "W", "Vt", "tox")}
    generator = KLESampleGenerator(kles, r=15, sampler="sobol")
    result = generator.generate(gate_locations, 4096, seed=3)
    for other in ("W", "Vt", "tox"):
        corr = np.corrcoef(
            result.samples["L"][:, 0], result.samples[other][:, 0]
        )[0, 1]
        assert abs(corr) < 0.06


def test_sobol_beats_pseudo_on_mean_estimation(gaussian_kle, gate_locations):
    """QMC pays off in the reduced dimension: the per-location mean
    estimate converges visibly faster than pseudo-MC."""
    kles = {"L": gaussian_kle}
    errors = {}
    for sampler in ("pseudo", "sobol"):
        reps = []
        for rep in range(6):
            generator = KLESampleGenerator(kles, r=20, sampler=sampler)
            values = generator.generate(
                gate_locations, 256, seed=100 + rep
            ).samples["L"]
            reps.append(np.abs(values.mean(axis=0)).mean())
        errors[sampler] = float(np.mean(reps))
    assert errors["sobol"] < 0.5 * errors["pseudo"]


def test_unknown_sampler_rejected(gaussian_kle):
    with pytest.raises(ValueError, match="sampler must be"):
        KLESampleGenerator({"L": gaussian_kle}, r=5, sampler="halton")
