"""Tests for the grid-less random-field model (exact Cholesky sampling)."""

import numpy as np
import pytest

from repro.core.kernels import GaussianKernel
from repro.field.random_field import RandomField

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def field():
    return RandomField(GaussianKernel(2.7))


@pytest.fixture(scope="module")
def sample_points(rng=None):
    generator = np.random.default_rng(10)
    return generator.uniform(-1, 1, (40, 2))


def test_sample_shapes(field, sample_points):
    samples = field.sample(sample_points, 100, seed=0)
    assert samples.shape == (100, 40)


def test_sample_determinism(field, sample_points):
    a = field.sample(sample_points, 10, seed=5)
    b = field.sample(sample_points, 10, seed=5)
    assert np.array_equal(a, b)


def test_sample_covariance_matches_kernel(field, sample_points):
    """Empirical covariance of exact samples converges to K(points)."""
    samples = field.sample(sample_points, 40000, seed=1)
    empirical = np.cov(samples.T)
    expected = field.kernel.matrix(sample_points)
    assert np.max(np.abs(empirical - expected)) < 0.06


def test_cholesky_factor_reproduces_covariance(field, sample_points):
    upper = field.cholesky_factor(sample_points)
    assert np.allclose(
        upper.T @ upper, field.kernel.matrix(sample_points), atol=1e-8
    )


def test_precomputed_cholesky_matches(field, sample_points):
    upper = field.cholesky_factor(sample_points)
    a = field.sample(sample_points, 8, seed=3, cholesky_upper=upper)
    b = field.sample(sample_points, 8, seed=3)
    assert np.allclose(a, b)


def test_cholesky_shape_mismatch_rejected(field, sample_points):
    with pytest.raises(ValueError, match="does not match"):
        field.sample(sample_points, 4, cholesky_upper=np.eye(3))


def test_denormalization():
    field = RandomField(GaussianKernel(2.0), mean=90.0, std=5.0)
    pts = np.array([[0.0, 0.0], [0.5, 0.5]])
    samples = field.sample(pts, 20000, seed=2)
    assert samples.mean() == pytest.approx(90.0, abs=0.2)
    assert samples.std() == pytest.approx(5.0, abs=0.2)


def test_invalid_std_rejected():
    with pytest.raises(ValueError, match="std"):
        RandomField(GaussianKernel(1.0), std=0.0)


def test_sample_on_grid(field):
    points, samples = field.sample_on_grid(DIE, 12, 3, seed=4)
    assert points.shape == (144, 2)
    assert samples.shape == (3, 144)


def test_grid_outcomes_spatially_smooth(field):
    """Fig. 1(b) behaviour: neighbouring grid values are close, distant
    values are not systematically so."""
    points, samples = field.sample_on_grid(DIE, 20, 1, seed=6)
    outcome = samples[0].reshape(20, 20)
    neighbour_diff = np.abs(np.diff(outcome, axis=0)).mean()
    far_diff = np.abs(outcome[0] - outcome[-1]).mean()
    assert neighbour_diff < far_diff


def test_conditional_sampling_pins_observations(field):
    observed = np.array([[0.0, 0.0], [0.5, 0.5]])
    values = np.array([1.2, -0.4])
    samples = field.conditional_sample(observed, values, observed, 500, seed=7)
    assert np.allclose(samples.mean(axis=0), values, atol=0.05)
    assert samples.std(axis=0).max() < 0.05  # exact observations pin the field


def test_conditional_sampling_interpolates(field):
    """Midway between two observations the conditional mean lies between."""
    observed = np.array([[-0.2, 0.0], [0.2, 0.0]])
    values = np.array([1.0, 1.0])
    query = np.array([[0.0, 0.0]])
    samples = field.conditional_sample(observed, values, query, 2000, seed=8)
    assert samples.mean() == pytest.approx(1.0, abs=0.1)


def test_conditional_validation(field):
    with pytest.raises(ValueError, match="length mismatch"):
        field.conditional_sample(
            np.zeros((2, 2)), np.zeros(3), np.zeros((1, 2)), 5
        )
    with pytest.raises(ValueError, match="noise_variance"):
        field.conditional_sample(
            np.zeros((1, 2)), np.zeros(1), np.zeros((1, 2)), 5,
            noise_variance=-1.0,
        )


def test_empirical_correlation_tracks_kernel(field):
    rng = np.random.default_rng(11)
    pts = rng.uniform(-1, 1, (60, 2))
    samples = field.sample(pts, 5000, seed=12)
    centers, empirical, theoretical = field.empirical_correlation(
        samples, pts, num_bins=10
    )
    mask = ~np.isnan(empirical)
    assert np.max(np.abs(empirical[mask] - theoretical[mask])) < 0.12


def test_empirical_correlation_validates_shapes(field):
    with pytest.raises(ValueError, match=r"samples must be"):
        field.empirical_correlation(np.zeros((5, 3)), np.zeros((4, 2)))
