"""Tests for the grid-based correlation model and its PCA reduction."""

import numpy as np
import pytest

from repro.core.kernels import GaussianKernel
from repro.field.grid_model import (
    GridModel,
    GridPCA,
    adhoc_taper_grid_model,
    grid_model_from_kernel,
)

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def kernel_grid():
    return grid_model_from_kernel(GaussianKernel(2.7), DIE, 6, 6)


def test_cell_centers_layout():
    model = GridModel(DIE, 2, 2, np.eye(4))
    centers = model.cell_centers()
    assert centers.shape == (4, 2)
    assert np.allclose(centers[0], [-0.5, -0.5])
    assert np.allclose(centers[3], [0.5, 0.5])


def test_cell_of_points_row_major():
    model = GridModel(DIE, 2, 2, np.eye(4))
    pts = np.array([[-0.9, -0.9], [0.9, -0.9], [-0.9, 0.9], [0.9, 0.9]])
    assert model.cell_of_points(pts).tolist() == [0, 1, 2, 3]


def test_cell_of_points_boundary_clamped():
    model = GridModel(DIE, 3, 3, np.eye(9))
    assert model.cell_of_points(np.array([[1.0, 1.0]]))[0] == 8


def test_cell_of_points_outside_raises():
    model = GridModel(DIE, 2, 2, np.eye(4))
    with pytest.raises(ValueError, match="outside"):
        model.cell_of_points(np.array([[2.0, 0.0]]))


def test_kernel_grid_is_valid(kernel_grid):
    assert kernel_grid.is_valid()


def test_adhoc_taper_can_be_invalid():
    """The paper's §2.1 warning: intuitive grid correlations need not be
    PSD in 2-D."""
    model = adhoc_taper_grid_model(DIE, 8, 8, correlation_distance=1.0)
    assert not model.is_valid()


def test_repair_makes_valid():
    model = adhoc_taper_grid_model(DIE, 8, 8, correlation_distance=1.0)
    fixed = model.repaired()
    assert fixed.is_valid()
    assert np.allclose(np.diag(fixed.correlation), 1.0)


def test_repair_distorts_offdiagonals():
    model = adhoc_taper_grid_model(DIE, 8, 8, correlation_distance=1.0)
    fixed = model.repaired()
    assert not np.allclose(fixed.correlation, model.correlation, atol=1e-6)


def test_grid_model_validation():
    with pytest.raises(ValueError, match="positive-area"):
        GridModel((0, 0, 0, 1), 2, 2, np.eye(4))
    with pytest.raises(ValueError, match="at least one cell"):
        GridModel(DIE, 0, 2, np.eye(0))
    with pytest.raises(ValueError, match="correlation must be"):
        GridModel(DIE, 2, 2, np.eye(3))


# ---------------------------------------------------------------------------
# PCA reduction (paper eq. (1)).
# ---------------------------------------------------------------------------
def test_pca_eigen_descending(kernel_grid):
    pca = GridPCA(kernel_grid)
    assert np.all(np.diff(pca.eigenvalues) <= 1e-12)


def test_pca_full_rank_variance(kernel_grid):
    pca = GridPCA(kernel_grid)
    assert pca.variance_captured(kernel_grid.num_cells) == pytest.approx(1.0)


def test_pca_components_needed_monotone(kernel_grid):
    pca = GridPCA(kernel_grid)
    assert pca.components_needed(0.5) <= pca.components_needed(0.99)


def test_pca_reconstruction_matrix_reproduces_correlation(kernel_grid):
    pca = GridPCA(kernel_grid)
    full = pca.reconstruction_matrix(kernel_grid.num_cells)
    assert np.allclose(full @ full.T, kernel_grid.correlation, atol=1e-8)


def test_pca_sampling_statistics(kernel_grid):
    pca = GridPCA(kernel_grid)
    r = pca.components_needed(0.99)
    samples = pca.sample_cell_values(20000, r, seed=0)
    assert samples.shape == (20000, kernel_grid.num_cells)
    empirical = np.cov(samples.T)
    assert np.max(np.abs(empirical - kernel_grid.correlation)) < 0.08


def test_pca_sample_at_points(kernel_grid):
    pca = GridPCA(kernel_grid)
    pts = np.array([[-0.9, -0.9], [0.9, 0.9]])
    samples = pca.sample_at_points(pts, 30, 5, seed=1)
    assert samples.shape == (30, 2)
    cells = kernel_grid.cell_of_points(pts)
    direct = pca.sample_cell_values(30, 5, seed=1)
    assert np.allclose(samples, direct[:, cells])


def test_pca_same_cell_perfectly_correlated(kernel_grid):
    """The grid model's granularity artifact: two gates in one cell get
    identical values — exactly what the grid-less model avoids."""
    pca = GridPCA(kernel_grid)
    pts = np.array([[-0.95, -0.95], [-0.99, -0.99]])  # same corner cell
    samples = pca.sample_at_points(pts, 100, 10, seed=2)
    assert np.array_equal(samples[:, 0], samples[:, 1])


def test_pca_r_validation(kernel_grid):
    pca = GridPCA(kernel_grid)
    with pytest.raises(ValueError, match="r must be in"):
        pca.reconstruction_matrix(0)
    with pytest.raises(ValueError, match="fraction"):
        pca.components_needed(1.5)
    with pytest.raises(ValueError, match="num_samples"):
        pca.sample_cell_values(0, 2)
