"""MLMC estimator tests: exact degenerate limit, telescoping, allocation."""

import json

import numpy as np
import pytest

from repro.mlmc import (
    KLERankHierarchy,
    MLMCEstimator,
    SurrogateKLEHierarchy,
    optimal_allocation,
)
from repro.timing.ssta import MonteCarloSSTA


@pytest.fixture(scope="module")
def rank_estimator(c880, c880_placement, gaussian_kle):
    hierarchy = KLERankHierarchy(gaussian_kle, [8, 20])
    return MLMCEstimator(c880, c880_placement, hierarchy)


def test_degenerate_single_level_is_bitwise_plain_mc(
    c880, c880_placement, gaussian_kernel, gaussian_kle
):
    """L=0 MLMC with an integer seed must reproduce MonteCarloSSTA.run_kle
    exactly — same normals, same fields, same worst delays."""
    hierarchy = KLERankHierarchy(gaussian_kle, [20])
    estimator = MLMCEstimator(c880, c880_placement, hierarchy)
    result = estimator.run(n_samples=[150], seed=42, keep_samples=True)
    plain = MonteCarloSSTA(
        c880, c880_placement, gaussian_kernel, gaussian_kle, r=20
    ).run_kle(150, seed=42)
    np.testing.assert_array_equal(
        result.level_worst_delays[0], plain.sta.worst_delay
    )
    assert result.mean == plain.sta.mean_worst_delay()
    assert result.levels[0].coarse_mean is None
    assert result.consistency.passed  # vacuous for one level
    assert result.rates.alpha is None


def test_two_level_run_matches_single_level_statistically(
    rank_estimator, c880, c880_placement, gaussian_kernel, gaussian_kle
):
    result = rank_estimator.run(
        n_samples=[600, 300], seed=3, quantiles=(0.95,)
    )
    plain = MonteCarloSSTA(
        c880, c880_placement, gaussian_kernel, gaussian_kle, r=20
    ).run_kle(2000, seed=11)
    mean_plain = plain.sta.mean_worst_delay()
    spread = np.hypot(
        result.estimator_sem, plain.sta.std_worst_delay() / np.sqrt(2000)
    )
    assert abs(result.mean - mean_plain) < 5.0 * spread
    assert result.consistency.passed
    assert result.total_samples == 900
    assert result.levels[1].coarse_mean is not None
    assert 0.95 in result.quantiles
    assert result.quantiles[0.95] > result.mean


def test_variance_decays_up_the_ladder(rank_estimator):
    result = rank_estimator.run(n_samples=[400, 200], seed=8)
    assert result.levels[1].variance < 0.2 * result.levels[0].variance


def test_adaptive_run_hits_tolerance(rank_estimator):
    result = rank_estimator.run(eps=20.0, seed=5, initial_samples=64)
    assert result.eps == 20.0
    assert result.target_met
    assert result.estimator_sem <= 20.0
    # Coarse level is cheap-ish but high-variance: it must get the bulk.
    assert result.levels[0].num_samples >= result.levels[1].num_samples


def test_surrogate_hierarchy_agrees_with_plain_mc(
    c880, c880_placement, gaussian_kernel, gaussian_kle
):
    hierarchy = SurrogateKLEHierarchy(gaussian_kle, r=20)
    estimator = MLMCEstimator(c880, c880_placement, hierarchy)
    result = estimator.run(n_samples=[3000, 200], seed=2)
    plain = MonteCarloSSTA(
        c880, c880_placement, gaussian_kernel, gaussian_kle, r=20
    ).run_kle(3000, seed=13)
    spread = np.hypot(
        result.estimator_sem, plain.sta.std_worst_delay() / np.sqrt(3000)
    )
    assert abs(result.mean - plain.sta.mean_worst_delay()) < 5.0 * spread
    assert result.levels[0].timer == "linear"
    # The surrogate level must be much cheaper per sample than full STA.
    assert (
        result.levels[0].cost_per_sample
        < 0.5 * result.levels[1].cost_per_sample
    )
    assert result.setup_seconds > 0.0


def test_chunked_run_matches_unchunked_statistics(rank_estimator):
    chunked = rank_estimator.run(n_samples=[256, 64], seed=21, chunk_size=50)
    assert chunked.total_samples == 320
    assert np.isfinite(chunked.mean)
    assert chunked.std > 0.0


def test_result_to_dict_is_json_serializable(rank_estimator):
    result = rank_estimator.run(n_samples=[64, 32], seed=1, quantiles=(0.9,))
    payload = json.dumps(result.to_dict())
    parsed = json.loads(payload)
    assert parsed["total_samples"] == 96
    assert len(parsed["levels"]) == 2
    assert "consistency" in parsed and "rates" in parsed
    assert "report" not in parsed
    assert "0.9" in parsed["quantiles_ps"]


def test_format_report_mentions_levels(rank_estimator):
    result = rank_estimator.run(n_samples=[64, 32], seed=1)
    report = result.format_report()
    assert "rank-8" in report and "rank-20" in report
    assert "telescoping consistency" in report


def test_run_argument_validation(rank_estimator):
    with pytest.raises(ValueError, match="exactly one"):
        rank_estimator.run()
    with pytest.raises(ValueError, match="exactly one"):
        rank_estimator.run(eps=1.0, n_samples=[10, 10])
    with pytest.raises(ValueError, match="entries"):
        rank_estimator.run(n_samples=[10])
    with pytest.raises(ValueError, match="eps must be positive"):
        rank_estimator.run(eps=-1.0)


def test_optimal_allocation_formula():
    """N_l = ceil(eps^-2 sqrt(V_l/C_l) * sum sqrt(V_k C_k)), floored at 2."""
    eps, v, c = 0.1, [4.0, 1.0], [1.0, 4.0]
    counts = optimal_allocation(eps, v, c)
    total = np.sqrt(4.0 * 1.0) + np.sqrt(1.0 * 4.0)  # = 4
    assert counts[0] == int(np.ceil(100 * np.sqrt(4.0) * total))
    assert counts[1] == int(np.ceil(100 * np.sqrt(0.25) * total))
    # Achieves the variance target: sum V_l / N_l <= eps^2.
    assert sum(vv / nn for vv, nn in zip(v, counts)) <= eps**2
    assert optimal_allocation(1e9, v, c).min() >= 2
    with pytest.raises(ValueError, match="positive"):
        optimal_allocation(0.0, v, c)
