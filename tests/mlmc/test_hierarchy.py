"""Level-hierarchy construction and validation tests."""

import pytest

from repro.mesh.structured import structured_rectangle_mesh
from repro.mlmc import (
    KLERankHierarchy,
    LevelModel,
    MeshKLEHierarchy,
    SurrogateKLEHierarchy,
)

DIE = (-1.0, -1.0, 1.0, 1.0)


class TestLevelModel:
    def test_rank_bounds_enforced(self, gaussian_kle):
        with pytest.raises(ValueError, match="outside"):
            LevelModel(
                kles={"L": gaussian_kle},
                ranks={"L": gaussian_kle.num_eigenpairs + 1},
                label="bad",
                parameter=1.0,
            )

    def test_timer_validated(self, gaussian_kle):
        with pytest.raises(ValueError, match="timer"):
            LevelModel(
                kles={"L": gaussian_kle},
                ranks={"L": 5},
                label="bad",
                parameter=5.0,
                timer="quadratic",
            )

    def test_total_rank(self, gaussian_kle):
        model = LevelModel(
            kles={"L": gaussian_kle, "W": gaussian_kle},
            ranks={"L": 5, "W": 7},
            label="ok",
            parameter=7.0,
        )
        assert model.total_rank() == 12
        assert model.parameter_names == ("L", "W")


class TestKLERankHierarchy:
    def test_broadcasts_to_all_parameters(self, gaussian_kle):
        hierarchy = KLERankHierarchy(gaussian_kle, [5, 10, 20])
        assert hierarchy.num_levels == 3
        assert hierarchy.ranks == (5, 10, 20)
        models = hierarchy.models()
        assert models[0].parameter_names == ("L", "W", "Vt", "tox")
        assert all(models[1].ranks[name] == 10 for name in models[1].ranks)
        assert hierarchy.describe() == "rank-5 -> rank-10 -> rank-20"

    def test_requires_strictly_increasing_ranks(self, gaussian_kle):
        with pytest.raises(ValueError, match="strictly increasing"):
            KLERankHierarchy(gaussian_kle, [10, 10])
        with pytest.raises(ValueError, match="at least one"):
            KLERankHierarchy(gaussian_kle, [])

    def test_degenerate_single_level(self, gaussian_kle):
        hierarchy = KLERankHierarchy(gaussian_kle, [25])
        assert hierarchy.num_levels == 1


class TestMeshKLEHierarchy:
    def test_two_mesh_ladder(self, gaussian_kernel):
        coarse = structured_rectangle_mesh(*DIE, 4, 4)
        fine = structured_rectangle_mesh(*DIE, 8, 8)
        hierarchy = MeshKLEHierarchy(
            gaussian_kernel, [coarse, fine], rank=8, num_eigenpairs=16
        )
        assert hierarchy.num_levels == 2
        models = hierarchy.models()
        assert models[0].parameter == coarse.num_triangles
        assert models[1].parameter == fine.num_triangles
        assert all(r <= 8 for r in models[0].ranks.values())

    def test_rejects_unordered_meshes(self, gaussian_kernel):
        coarse = structured_rectangle_mesh(*DIE, 4, 4)
        fine = structured_rectangle_mesh(*DIE, 8, 8)
        with pytest.raises(ValueError, match="coarse-to-fine"):
            MeshKLEHierarchy(gaussian_kernel, [fine, coarse], rank=8)

    def test_auto_solver_selection_switches_at_threshold(self, gaussian_kernel):
        coarse = structured_rectangle_mesh(*DIE, 4, 4)  # 32 triangles
        fine = structured_rectangle_mesh(*DIE, 8, 8)  # 128 triangles
        hierarchy = MeshKLEHierarchy(
            gaussian_kernel,
            [coarse, fine],
            rank=8,
            num_eigenpairs=16,
            randomized_threshold=64,
        )
        assert hierarchy.solver_methods == ("dense", "randomized")
        # The default threshold keeps small ladders fully dense.
        dense_ladder = MeshKLEHierarchy(
            gaussian_kernel, [coarse, fine], rank=8, num_eigenpairs=16
        )
        assert dense_ladder.solver_methods == ("dense", "dense")

    def test_auto_is_bitwise_identical_to_the_explicit_methods(
        self, gaussian_kernel
    ):
        # "auto" is pure routing — each level's eigenpairs must be the
        # exact arrays the explicitly chosen solver produces, bit for
        # bit, or the mode silently changes every downstream estimate.
        coarse = structured_rectangle_mesh(*DIE, 4, 4)  # 32 triangles
        fine = structured_rectangle_mesh(*DIE, 8, 8)  # 128 triangles
        common = dict(rank=8, num_eigenpairs=16, solver_seed=7)
        auto = MeshKLEHierarchy(
            gaussian_kernel,
            [coarse, fine],
            randomized_threshold=64,
            **common,
        )
        assert auto.solver_methods == ("dense", "randomized")
        dense = MeshKLEHierarchy(
            gaussian_kernel, [coarse], solver_method="dense", **common
        )
        randomized = MeshKLEHierarchy(
            gaussian_kernel, [fine], solver_method="randomized", **common
        )
        for name, kle in auto.models()[0].kles.items():
            explicit = dense.models()[0].kles[name]
            assert (kle.eigenvalues == explicit.eigenvalues).all()
            assert (kle.d_vectors == explicit.d_vectors).all()
        for name, kle in auto.models()[1].kles.items():
            explicit = randomized.models()[0].kles[name]
            assert (kle.eigenvalues == explicit.eigenvalues).all()
            assert (kle.d_vectors == explicit.d_vectors).all()

    def test_explicit_solver_method_applies_to_every_level(
        self, gaussian_kernel
    ):
        coarse = structured_rectangle_mesh(*DIE, 4, 4)
        fine = structured_rectangle_mesh(*DIE, 8, 8)
        hierarchy = MeshKLEHierarchy(
            gaussian_kernel,
            [coarse, fine],
            rank=8,
            num_eigenpairs=16,
            solver_method="randomized",
            solver_seed=3,
        )
        assert hierarchy.solver_methods == ("randomized", "randomized")
        with pytest.raises(ValueError, match="solver_method"):
            MeshKLEHierarchy(
                gaussian_kernel, [coarse], rank=8, solver_method="nope"
            )
        with pytest.raises(ValueError, match="randomized_threshold"):
            MeshKLEHierarchy(
                gaussian_kernel, [coarse], rank=8, randomized_threshold=-1
            )


class TestSurrogateKLEHierarchy:
    def test_two_levels_with_linear_base(self, gaussian_kle):
        hierarchy = SurrogateKLEHierarchy(gaussian_kle, r=20)
        models = hierarchy.models()
        assert [m.timer for m in models] == ["linear", "sta"]
        assert models[0].ranks == models[1].ranks
        assert hierarchy.r == 20
