"""Diagnostics unit tests: consistency check and convergence-rate fits."""

import numpy as np
import pytest

from repro.mlmc import (
    MLMCLevelStats,
    fit_convergence_rates,
    format_level_table,
    telescoping_check,
)


def _stats(level, parameter, *, fine_mean, fine_sem, coarse_mean=None,
           coarse_sem=None, mean_correction=1.0, variance=1.0,
           cost=1e-3, n=100):
    return MLMCLevelStats(
        level=level,
        label=f"lvl-{level}",
        parameter=parameter,
        timer="sta",
        num_samples=n,
        mean_correction=mean_correction,
        variance=variance,
        cost_per_sample=cost,
        generate_seconds=0.01,
        evaluate_seconds=0.09,
        fine_mean=fine_mean,
        fine_sem=fine_sem,
        fine_std=fine_sem * np.sqrt(n),
        coarse_mean=coarse_mean,
        coarse_sem=coarse_sem,
    )


class TestTelescopingCheck:
    def test_consistent_levels_pass(self):
        levels = [
            _stats(0, 8, fine_mean=100.0, fine_sem=1.0),
            _stats(1, 16, fine_mean=102.0, fine_sem=1.0,
                   coarse_mean=100.5, coarse_sem=1.0),
        ]
        check = telescoping_check(levels)
        assert check.passed
        assert check.z_scores[0] == pytest.approx(0.5 / np.hypot(1, 1))

    def test_broken_coupling_fails(self):
        levels = [
            _stats(0, 8, fine_mean=100.0, fine_sem=0.5),
            _stats(1, 16, fine_mean=102.0, fine_sem=0.5,
                   coarse_mean=110.0, coarse_sem=0.5),
        ]
        check = telescoping_check(levels)
        assert not check.passed
        assert check.max_z > 10.0

    def test_missing_coarse_stats_rejected(self):
        levels = [
            _stats(0, 8, fine_mean=1.0, fine_sem=0.1),
            _stats(1, 16, fine_mean=1.0, fine_sem=0.1),
        ]
        with pytest.raises(ValueError, match="coarse statistics"):
            telescoping_check(levels)

    def test_single_level_is_vacuous(self):
        check = telescoping_check([_stats(0, 8, fine_mean=1.0, fine_sem=0.1)])
        assert check.passed and check.max_z == 0.0


class TestConvergenceRates:
    def test_known_power_laws_recovered(self):
        levels = [_stats(0, 4, fine_mean=1.0, fine_sem=0.1)]
        for index, m in enumerate([8, 16, 32], start=1):
            levels.append(
                _stats(
                    index,
                    m,
                    fine_mean=1.0,
                    fine_sem=0.1,
                    coarse_mean=1.0,
                    coarse_sem=0.1,
                    mean_correction=m ** -1.0,
                    variance=m ** -2.0,
                    cost=1e-4 * m,
                )
            )
        rates = fit_convergence_rates(levels)
        assert rates.alpha == pytest.approx(1.0, abs=1e-9)
        assert rates.beta == pytest.approx(2.0, abs=1e-9)
        assert rates.gamma == pytest.approx(1.0, abs=1e-9)

    def test_equal_parameters_yield_none(self):
        """Model-fidelity ladders (same rank at both levels) can't be fit."""
        levels = [
            _stats(0, 25, fine_mean=1.0, fine_sem=0.1),
            _stats(1, 25, fine_mean=1.0, fine_sem=0.1,
                   coarse_mean=1.0, coarse_sem=0.1),
        ]
        rates = fit_convergence_rates(levels)
        assert rates.alpha is None
        assert rates.beta is None
        assert rates.gamma is None

    def test_too_few_correction_levels_yield_none(self):
        levels = [
            _stats(0, 8, fine_mean=1.0, fine_sem=0.1),
            _stats(1, 16, fine_mean=1.0, fine_sem=0.1,
                   coarse_mean=1.0, coarse_sem=0.1),
        ]
        assert fit_convergence_rates(levels).beta is None


def test_format_level_table_lists_all_levels():
    levels = [
        _stats(0, 8, fine_mean=1.0, fine_sem=0.1),
        _stats(1, 16, fine_mean=1.0, fine_sem=0.1,
               coarse_mean=1.0, coarse_sem=0.1),
    ]
    table = format_level_table(levels)
    assert "lvl-0" in table and "lvl-1" in table
    assert "E[Y_l]" in table and "V_l" in table
