"""Coupled-sampler tests: covariance preservation and prefix coupling."""

import numpy as np
import pytest

from repro.mlmc import KLERankHierarchy
from repro.mlmc.sampler import CoupledLevelSampler


@pytest.fixture(scope="module")
def gate_points(rng_module):
    """A few dozen pseudo-gate locations spread over the die."""
    return rng_module.uniform(-0.95, 0.95, size=(40, 2))


@pytest.fixture(scope="module")
def rng_module():
    return np.random.default_rng(77)


@pytest.fixture(scope="module")
def coupled(gaussian_kle, gate_points):
    """One coupled level: rank-6 coarse, rank-14 fine."""
    models = KLERankHierarchy(gaussian_kle, [6, 14]).models()
    return CoupledLevelSampler(models[1], models[0], gate_points)


def test_covariance_preservation_property(coupled):
    """Sample covariance of each coupled stream matches its truncated-KLE
    covariance: rank-14 for the fine draws, rank-6 for the coarse prefix,
    and the fine/coarse *cross*-covariance equals the coarse covariance
    (the defining property of nested-prefix coupling)."""
    draw = coupled.generate(40_000, seed=5)
    fine = draw.fine_fields["L"]
    coarse = draw.coarse_fields["L"]
    fine_centered = fine - fine.mean(axis=0)
    coarse_centered = coarse - coarse.mean(axis=0)
    n = fine.shape[0]

    sample_fine = fine_centered.T @ fine_centered / (n - 1)
    sample_coarse = coarse_centered.T @ coarse_centered / (n - 1)
    sample_cross = fine_centered.T @ coarse_centered / (n - 1)

    np.testing.assert_allclose(
        sample_fine, coupled.covariance_fine(), atol=0.06
    )
    np.testing.assert_allclose(
        sample_coarse, coupled.covariance_coarse(), atol=0.06
    )
    np.testing.assert_allclose(
        sample_cross, coupled.covariance_coarse(), atol=0.06
    )


def test_coarse_is_prefix_of_fine_xi(coupled):
    """The coarse field must be a deterministic function of the fine ξ
    prefix — regenerate it by hand from the returned normals."""
    draw = coupled.generate(50, seed=9)
    cmaps = coupled._coarse_maps
    for name, xi in draw.xi.items():
        cmap = cmaps[name]
        expected = (xi[:, : cmap.rank] @ cmap.d_lambda.T)[:, cmap.triangles]
        np.testing.assert_array_equal(draw.coarse_fields[name], expected)


def test_same_seed_reproduces_draw(coupled):
    one = coupled.generate(20, seed=123)
    two = coupled.generate(20, seed=123)
    for name in one.xi:
        np.testing.assert_array_equal(one.xi[name], two.xi[name])
        np.testing.assert_array_equal(
            one.fine_fields[name], two.fine_fields[name]
        )


def test_field_gathers_can_be_skipped(coupled):
    draw = coupled.generate(10, seed=1, need_fine_fields=False)
    assert draw.fine_fields is None
    assert draw.coarse_fields is not None
    xi = draw.xi_concat()
    assert xi.shape == (10, 4 * 14)
    prefix = draw.xi_concat(ranks={"L": 6, "W": 6, "Vt": 6, "tox": 6})
    assert prefix.shape == (10, 4 * 6)


def test_validation_errors(gaussian_kle, gate_points):
    models = KLERankHierarchy(gaussian_kle, [6, 14]).models()
    with pytest.raises(ValueError, match="coarse rank exceeds"):
        CoupledLevelSampler(models[0], models[1], gate_points)
    sampler = CoupledLevelSampler(models[1], models[0], gate_points)
    with pytest.raises(ValueError, match="num_samples"):
        sampler.generate(0)
    with pytest.raises(ValueError, match="no coarse member"):
        CoupledLevelSampler(models[1], None, gate_points).covariance_coarse()
