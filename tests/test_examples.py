"""Smoke tests: the example scripts run end to end.

Only the fast examples run here (the SSTA/timing walkthroughs are
exercised by the benchmarks); each must complete and print its headline
result.  Keeps deliverable (b) executable at all times.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, argv=None, capsys=None):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, name))
    old_argv = sys.argv
    sys.argv = [path] + (argv or [])
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


def test_quickstart_example(capsys):
    out = run_example("quickstart.py", capsys=capsys)
    assert "truncation: r =" in out
    assert "kernel reconstruction" in out


def test_placement_flow_example(capsys):
    out = run_example("placement_flow.py", capsys=capsys)
    assert "HPWL mincut" in out
    assert "% shorter" in out
    assert "elmore[sink]" in out


def test_ssta_flow_example_small(capsys):
    out = run_example("ssta_flow.py", argv=["c880", "300"], capsys=capsys)
    assert "speedup" in out
    assert "e_mu" in out


@pytest.mark.parametrize(
    "name",
    ["kernel_analysis.py"],
)
def test_analysis_examples(name, capsys):
    out = run_example(name, capsys=capsys)
    assert "better fit: gaussian" in out


def test_mlmc_flow_example(capsys):
    out = run_example("mlmc_flow.py", argv=["c880", "400"], capsys=capsys)
    assert "telescoping consistency" in out
    assert "surrogate MLMC" in out
    assert "speedup" in out


def test_advanced_variation_example(capsys):
    out = run_example("advanced_variation.py", argv=["256"], capsys=capsys)
    assert "isotropic? False" in out
    assert "flows agree" in out
