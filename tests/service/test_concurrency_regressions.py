"""Regression tests for the races the lock-discipline pass flagged.

REPRO-LOCK001 findings on the live tree (unlocked ``Scheduler._workers``
/ ``_pool`` access, ``ResultStream._result`` / ``_cancel_reason`` reads
outside the lock) were fixed at the source; these tests pin the
*observable* guarantees those fixes restore: exact fault counters under
thread hammering, atomic injector snapshots, and a producer that can
never strand a chunk past ``cancel()``.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from repro.service import (
    AnalysisRequest,
    ArtifactRegistry,
    FaultInjector,
    InjectedFault,
    ResultStream,
    Scheduler,
)
from repro.service.request import ChunkResult, RequestStatus

from tests.service.conftest import tiny_config


def _chunk(index: int) -> ChunkResult:
    return ChunkResult(
        request_id="t-0",
        index=index,
        start=index * 4,
        num_samples=4,
        worst_delay=np.zeros(4),
    )


class TestFaultInjectorUnderContention:
    def test_counts_are_exact_when_hammered_from_many_threads(self):
        faults = FaultInjector()
        armed = 64
        faults.arm("kle", times=armed)
        raised = []
        errors = []

        def hammer() -> None:
            local = 0
            for _ in range(200):
                try:
                    faults.fire("kle")
                except InjectedFault:
                    local += 1
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
            raised.append(local)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert not errors
        # Exactly the armed count raised — never double-consumed, never
        # lost — and the stage ends fully disarmed.
        assert sum(raised) == armed
        assert faults.fired("kle") == armed
        assert faults.remaining("kle") == 0

    def test_snapshot_is_atomic_against_concurrent_fire(self):
        faults = FaultInjector()
        armed = 500
        faults.arm("sweep", times=armed)
        stop = threading.Event()
        torn = []

        def observe() -> None:
            while not stop.is_set():
                remaining, fired = faults.snapshot()
                total = remaining.get("sweep", 0) + fired.get("sweep", 0)
                if total != armed:
                    torn.append(total)

        observer = threading.Thread(target=observe)
        observer.start()
        for _ in range(armed):
            try:
                faults.fire("sweep")
            except InjectedFault:
                pass
        stop.set()
        observer.join()
        # remaining+fired is conserved at every instant; a snapshot
        # assembled from two separate lock acquisitions would tear.
        assert torn == []


class TestResultStreamCancelVsOffer:
    def test_cancel_unblocks_a_backpressured_producer(self):
        stream = ResultStream(
            AnalysisRequest(circuit="c17"),
            "t-0",
            buffer_chunks=1,
            put_timeout_s=30.0,
        )
        assert stream.offer(_chunk(0)) is True  # fills the buffer
        outcome = {}

        def producer() -> None:
            begin = time.monotonic()
            outcome["accepted"] = stream.offer(_chunk(1))
            outcome["elapsed"] = time.monotonic() - begin

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.2)  # let the producer block on the full buffer
        stream.cancel("client went away")
        t.join(timeout=10.0)
        assert not t.is_alive()
        # The blocked put returned well before put_timeout_s, and the
        # producer was told to stop.
        assert outcome["accepted"] is False
        assert outcome["elapsed"] < 10.0
        assert stream.status() is RequestStatus.CANCELLED
        assert stream.cancel_reason == "client went away"

    def test_no_chunk_is_stranded_across_a_cancel_race(self):
        # Hammer the offer/cancel interleaving: whatever instant cancel()
        # lands at, the producer must observe refusal and the buffer must
        # end empty (the post-put re-check drains a just-stranded chunk).
        for trial in range(50):
            stream = ResultStream(
                AnalysisRequest(circuit="c17"),
                f"t-{trial}",
                buffer_chunks=2,
                put_timeout_s=5.0,
            )
            refused = threading.Event()

            def producer() -> None:
                index = 0
                while index < 10_000:
                    if not stream.offer(_chunk(index)):
                        refused.set()
                        return
                    index += 1

            t = threading.Thread(target=producer)
            t.start()
            time.sleep(0.001 * (trial % 5))
            stream.cancel("race trial")
            t.join(timeout=10.0)
            assert not t.is_alive()
            assert refused.is_set()
            # cancel() + the offer-side re-check leave nothing buffered.
            stream._drain()  # idempotent; the queue must already be empty
            assert stream._chunks.qsize() == 0
            assert list(stream.chunks()) == []


class TestSchedulerStartStopPublication:
    def test_running_is_lock_published_and_consistent_while_live(self):
        config = tiny_config(num_workers=2)
        registry = ArtifactRegistry(config)
        scheduler = Scheduler(config, registry, FaultInjector())
        assert scheduler.running is False
        scheduler.start()
        try:
            assert scheduler.running is True
            # `running` reads `_pool` under the same lock start()/stop()
            # publish it with — poll from side threads while live; no
            # reader may observe a half-started scheduler.
            observed = []

            def poll() -> None:
                for _ in range(200):
                    observed.append(scheduler.running)

            threads = [threading.Thread(target=poll) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert all(observed)
        finally:
            scheduler.stop()
        assert scheduler.running is False
        assert scheduler.queue_depth() == 0
