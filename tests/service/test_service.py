"""General service-layer tests: schema validation, scheduling, streams,
residency accounting, the cold baseline, and the CLI entry point.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.service import (
    AnalysisRequest,
    ArtifactRegistry,
    FaultInjector,
    RequestStatus,
    ResultStream,
    Scheduler,
    ServiceClient,
    ServiceConfig,
    SSTAService,
    run_cold_request,
)
from repro.service.__main__ import build_parser, main
from repro.service.request import ChunkResult, ServiceResult

from tests.service.conftest import make_active, tiny_config


class TestRequestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(circuit=""),
            dict(circuit="c17", kernel="no-such-kernel"),
            dict(circuit="c17", flow="bogus"),
            dict(circuit="c17", num_samples=0),
            dict(circuit="c17", chunk_size=0),
            dict(circuit="c17", r=0),
            dict(circuit="c17", timeout_s=0.0),
            dict(circuit="c17", quantiles=(0.5, 1.5)),
        ],
    )
    def test_malformed_requests_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            AnalysisRequest(**kwargs).validate(ServiceConfig())

    def test_batch_key_ignores_size_seed_and_chunking(self):
        base = AnalysisRequest(circuit="c17", r=5)
        peer = AnalysisRequest(
            circuit="c17", r=5, num_samples=9, seed=3, chunk_size=2, priority=7
        )
        other = AnalysisRequest(circuit="c17", r=6)
        assert base.batch_key() == peer.batch_key()
        assert base.batch_key() != other.batch_key()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(engine="no-such-engine"),
            dict(kernels={}),
            dict(num_workers=0),
            dict(max_queue=0),
            dict(max_batch_requests=0),
            dict(stream_buffer_chunks=0),
            dict(kernel_threads=0),
            dict(kle_method="no-such-solver"),
            dict(kle_solver_seed=-1),
        ],
    )
    def test_malformed_configs_are_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServiceConfig(**kwargs).validate()

    def test_submit_requires_a_started_service(self):
        service = SSTAService(tiny_config())
        with pytest.raises(RuntimeError):
            service.submit(AnalysisRequest(circuit="c17"))


class TestSchedulerOrdering:
    def _scheduler(self, **overrides):
        config = tiny_config(**overrides)
        faults = FaultInjector()
        return Scheduler(config, ArtifactRegistry(config, faults), faults)

    def test_higher_priority_is_served_first(self):
        scheduler = self._scheduler()
        low = make_active(
            AnalysisRequest(circuit="c17", seed=1, priority=0), "t-low"
        )
        high = make_active(
            AnalysisRequest(circuit="c880", seed=2, priority=5), "t-high"
        )
        scheduler.submit(low)
        scheduler.submit(high)
        first = scheduler.next_batch(wait_timeout_s=0.01)
        assert [a.stream.request_id for a in first] == ["t-high"]
        second = scheduler.next_batch(wait_timeout_s=0.01)
        assert [a.stream.request_id for a in second] == ["t-low"]

    def test_equal_priority_is_fifo(self):
        scheduler = self._scheduler()
        for i in range(3):
            scheduler.submit(
                make_active(
                    AnalysisRequest(circuit="c17", seed=i, r=i + 1),
                    f"t-{i:06d}",
                )
            )
        order = []
        for _ in range(3):
            batch = scheduler.next_batch(wait_timeout_s=0.01)
            order.extend(a.stream.request_id for a in batch)
        assert order == ["t-000000", "t-000001", "t-000002"]

    def test_compatible_requests_coalesce_into_one_batch(self):
        scheduler = self._scheduler()
        for i in range(3):
            scheduler.submit(
                make_active(
                    AnalysisRequest(circuit="c17", seed=i), f"t-same{i}"
                )
            )
        scheduler.submit(
            make_active(AnalysisRequest(circuit="c880", seed=9), "t-other")
        )
        batch = scheduler.next_batch(wait_timeout_s=0.01)
        assert sorted(a.stream.request_id for a in batch) == [
            "t-same0",
            "t-same1",
            "t-same2",
        ]
        rest = scheduler.next_batch(wait_timeout_s=0.01)
        assert [a.stream.request_id for a in rest] == ["t-other"]

    def test_batch_width_is_capped(self):
        scheduler = self._scheduler(max_batch_requests=2)
        for i in range(3):
            scheduler.submit(
                make_active(AnalysisRequest(circuit="c17", seed=i), f"t-{i}")
            )
        assert len(scheduler.next_batch(wait_timeout_s=0.01)) == 2
        assert len(scheduler.next_batch(wait_timeout_s=0.01)) == 1

    def test_empty_queue_times_out_to_none(self):
        assert self._scheduler().next_batch(wait_timeout_s=0.01) is None


class TestResultStream:
    def _chunk(self, index):
        return ChunkResult(
            request_id="t-0",
            index=index,
            start=index,
            num_samples=1,
            worst_delay=np.asarray([float(index)]),
        )

    def test_offer_then_finish_round_trips(self):
        stream = ResultStream(AnalysisRequest(circuit="c17"), "t-0")
        assert stream.offer(self._chunk(0))
        stream.finish(
            ServiceResult(request_id="t-0", status=RequestStatus.DONE)
        )
        chunks = list(stream.chunks(timeout_s=1.0))
        assert [c.index for c in chunks] == [0]
        assert stream.result(timeout_s=1.0).ok
        assert stream.status() is RequestStatus.DONE

    def test_result_timeout_raises(self):
        stream = ResultStream(AnalysisRequest(circuit="c17"), "t-0")
        with pytest.raises(TimeoutError):
            stream.result(timeout_s=0.01)
        with pytest.raises(TimeoutError):
            next(iter(stream.chunks(timeout_s=0.01)))

    def test_cancel_is_idempotent_and_rejects_offers(self):
        stream = ResultStream(AnalysisRequest(circuit="c17"), "t-0")
        stream.cancel("gone")
        stream.cancel("still gone")
        assert stream.cancel_reason == "gone"
        assert stream.status() is RequestStatus.CANCELLED
        assert not stream.offer(self._chunk(0))
        assert list(stream.chunks(timeout_s=0.5)) == []

    def test_full_buffer_auto_cancels_after_put_timeout(self):
        stream = ResultStream(
            AnalysisRequest(circuit="c17"),
            "t-0",
            buffer_chunks=1,
            put_timeout_s=0.05,
        )
        assert stream.offer(self._chunk(0))
        assert not stream.offer(self._chunk(1))
        assert stream.cancelled
        assert "failed to drain" in (stream.cancel_reason or "")


class TestResidency:
    def test_stats_track_hits_misses_and_resident_bytes(self):
        service = SSTAService(tiny_config())
        with service:
            service.warm_up("c17")
            stats = service.stats()
            assert stats["misses"] > 0
            assert stats["resident"]["harnesses"] == 1
            assert stats["resident_bytes"] > 0
            assert stats["quarantined"] == {}
            assert stats["queue_depth"] == 0
            assert stats["running"] is True
            before_hits = stats["hits"]
            service.warm_up("c17")
            assert service.stats()["hits"] > before_hits
        assert service.stats()["running"] is False

    def test_kernel_threads_pin_reaches_engine_and_stats(self):
        service = SSTAService(tiny_config(kernel_threads=2))
        with service:
            harness = service.warm_up("c17")
            assert harness.engine.native_threads == 2
            stats = service.stats()
            assert stats["kernel_threads"] == 2
            # resident_bytes must account the per-thread native scratch a
            # sweep allocates at the pinned lane count, on top of the
            # program's arenas and the resident KLE eigenpair arrays.
            program = harness.engine.program
            kle = next(iter(harness.kles.values()))
            assert stats["resident_bytes"] == (
                program.resident_bytes()
                + program.native_scratch_bytes(2)
                + kle.eigenvalues.nbytes
                + kle.d_vectors.nbytes
            )
            assert program.native_scratch_bytes(2) > 0

    def test_randomized_kle_method_reaches_residency(self):
        import numpy as np

        from repro.service import ArtifactRegistry
        from repro.solvers import solve_randomized_kle

        config = tiny_config(kle_method="randomized", kle_solver_seed=7)
        registry = ArtifactRegistry(config)
        resident = registry.kle("gaussian")
        expected, _ = solve_randomized_kle(
            config.kernels["gaussian"],
            registry.mesh(),
            config.num_eigenpairs,
            seed=7,
        )
        np.testing.assert_array_equal(resident.eigenvalues, expected.eigenvalues)
        np.testing.assert_array_equal(resident.d_vectors, expected.d_vectors)
        stats = registry.stats()
        assert stats["kle_method"] == "randomized"
        assert stats["resident_bytes"] >= (
            resident.eigenvalues.nbytes + resident.d_vectors.nbytes
        )

    def test_same_key_requests_reuse_one_resident_harness(self):
        service = SSTAService(tiny_config())
        with service:
            client = ServiceClient(service)
            for seed in (1, 2):
                assert client.analyze(
                    AnalysisRequest(circuit="c17", num_samples=8, seed=seed),
                    timeout_s=60.0,
                ).ok
            assert service.stats()["resident"]["harnesses"] == 1

    def test_analyze_async_returns_a_live_stream(self):
        service = SSTAService(tiny_config())
        with service:
            stream = ServiceClient(service).analyze_async(
                AnalysisRequest(circuit="c17", num_samples=8, seed=3)
            )
            assert stream.result(timeout_s=60.0).ok


class TestColdPath:
    def test_cold_request_is_bitwise_equal_to_warm_service(self):
        config = tiny_config()
        request = AnalysisRequest(circuit="c17", num_samples=32, seed=11)
        cold = run_cold_request(request, config)
        assert cold.ok
        with SSTAService(config) as service:
            warm = ServiceClient(service).analyze(request, timeout_s=60.0)
        assert warm.ok
        assert np.array_equal(cold.sta.worst_delay, warm.sta.worst_delay)

    def test_cold_chunked_request_completes_without_a_consumer(self):
        # Regression guard: the cold path buffers the whole stream up
        # front, so a many-chunk request cannot deadlock on backpressure.
        config = tiny_config(stream_buffer_chunks=2, stream_put_timeout_s=0.2)
        result = run_cold_request(
            AnalysisRequest(
                circuit="c17", num_samples=64, seed=12, chunk_size=4
            ),
            config,
        )
        assert result.ok
        assert result.num_samples == 64


class TestCli:
    def test_once_serves_a_request_and_prints_json(self, capsys):
        rc = main(
            [
                "once",
                "--circuit",
                "c17",
                "--num-samples",
                "8",
                "--seed",
                "1",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out.strip())
        assert payload["status"] == "done"
        assert payload["num_samples"] == 8
        assert np.isfinite(payload["mean_worst_delay_ps"])

    def test_bench_parser_exposes_the_ci_assertion_gates(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "bench",
                "--circuit",
                "c880",
                "--assert-speedup",
                "5.0",
                "--assert-p99-ms",
                "2000",
                "--assert-determinism",
            ]
        )
        assert args.command == "bench"
        assert args.assert_speedup == 5.0
        assert args.assert_determinism is True
        assert args.output == "BENCH_pr6.json"
