"""Fault-injection suite: every failure degrades gracefully.

ISSUE 6, satellite 2: client disconnect mid-stream, a poisoned artifact
cache entry during warm-up (the ``*.corrupt`` quarantine from PR 1),
kernel build failure mid-request, and queue-full rejection — in every
case the queue must keep serving subsequent requests.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.service import (
    AnalysisRequest,
    ArtifactBuildError,
    ArtifactRegistry,
    FaultInjector,
    InjectedFault,
    QueueFullError,
    Scheduler,
    SSTAService,
)
from repro.service.request import RequestStatus

from tests.service.conftest import make_active, tiny_config


def _tiny_service(**overrides):
    faults = FaultInjector()
    return SSTAService(tiny_config(**overrides), faults=faults), faults


class TestClientDisconnect:
    def test_disconnect_mid_stream_cancels_and_queue_keeps_serving(self):
        service, _ = _tiny_service(stream_buffer_chunks=4)
        with service:
            service.warm_up("c17")
            stream = service.submit(
                AnalysisRequest(
                    circuit="c17", num_samples=128, seed=1, chunk_size=8
                )
            )
            first = next(iter(stream.chunks(timeout_s=60.0)))
            assert first.num_samples == 8
            stream.cancel("client went away")
            result = stream.result(timeout_s=60.0)
            assert result.status is RequestStatus.CANCELLED
            assert result.sta is None
            assert "client went away" in (result.error or "")
            # The worker survived the disconnect: a follow-up request on
            # the same service completes normally.
            follow_up = service.submit(
                AnalysisRequest(circuit="c17", num_samples=16, seed=2)
            ).result(timeout_s=60.0)
            assert follow_up.ok

    def test_slow_consumer_is_auto_cancelled_not_wedged(self):
        # A consumer that never drains: the bounded buffer fills, the
        # producer's put times out, and the stream is cancelled with a
        # recorded reason instead of blocking the worker forever.
        service, _ = _tiny_service(
            stream_buffer_chunks=1, stream_put_timeout_s=0.2
        )
        with service:
            service.warm_up("c17")
            stream = service.submit(
                AnalysisRequest(
                    circuit="c17", num_samples=64, seed=3, chunk_size=4
                )
            )
            result = stream.result(timeout_s=60.0)
            assert result.status is RequestStatus.CANCELLED
            assert "failed to drain" in (result.error or "")
            assert service.submit(
                AnalysisRequest(circuit="c17", num_samples=16, seed=4)
            ).result(timeout_s=60.0).ok


class TestPoisonedCache:
    def test_corrupt_kle_cache_entry_is_quarantined_on_warm_up(self, tmp_path):
        # First service populates the on-disk KLE cache...
        config = tiny_config(cache_directory=str(tmp_path))
        ArtifactRegistry(config).warm_up("c17")
        cache_files = list(tmp_path.rglob("*.npz"))
        assert cache_files
        # ...which we then poison byte-wise.
        for path in cache_files:
            path.write_bytes(b"\x00garbage, not an npz\xff" * 16)
        # A fresh service warm-up must quarantine the poisoned entries
        # (the PR-1 `*.corrupt` contract) and still come up serving.
        service = SSTAService(config)
        with service:
            service.warm_up("c17")
            corrupt = list(tmp_path.rglob("*.corrupt"))
            assert corrupt, "poisoned cache entry was not quarantined"
            result = service.submit(
                AnalysisRequest(circuit="c17", num_samples=16, seed=5)
            ).result(timeout_s=60.0)
            assert result.ok


class TestKernelBuildFailure:
    def test_warm_kle_failure_falls_back_cold_and_serves(self):
        service, faults = _tiny_service()
        faults.arm("kle", times=1)
        with service:
            result = service.submit(
                AnalysisRequest(circuit="c17", num_samples=16, seed=6)
            ).result(timeout_s=60.0)
            assert result.ok
            assert faults.fired("kle") == 1
            assert "kle:gaussian" in service.registry.quarantined()

    def test_cold_kle_failure_fails_request_but_not_the_queue(self):
        service, faults = _tiny_service()
        faults.arm("kle", times=2)  # warm AND cold fallback both die
        with service:
            failed = service.submit(
                AnalysisRequest(circuit="c17", num_samples=16, seed=7)
            ).result(timeout_s=60.0)
            assert failed.status is RequestStatus.FAILED
            assert "ArtifactBuildError" in (failed.error or "")
            assert faults.fired("kle") == 2
            # Injector is spent; the very next request must succeed on
            # the same (previously failing) artifact key.
            recovered = service.submit(
                AnalysisRequest(circuit="c17", num_samples=16, seed=8)
            ).result(timeout_s=60.0)
            assert recovered.ok

    def test_cold_failure_surfaces_a_typed_error_at_the_registry(self):
        faults = FaultInjector()
        registry = ArtifactRegistry(tiny_config(), faults)
        faults.arm("kle", times=2)
        with pytest.raises(ArtifactBuildError):
            registry.kle("gaussian")
        # One cold retry later the artifact builds and stays resident.
        solved = registry.kle("gaussian")
        assert solved is registry.kle("gaussian")

    def test_sweep_failure_is_contained_to_its_batch(self):
        service, faults = _tiny_service()
        with service:
            service.warm_up("c17")
            faults.arm("sweep", times=1)
            failed = service.submit(
                AnalysisRequest(circuit="c17", num_samples=16, seed=9)
            ).result(timeout_s=60.0)
            assert failed.status is RequestStatus.FAILED
            assert "sweep failed" in (failed.error or "")
            assert service.submit(
                AnalysisRequest(circuit="c17", num_samples=16, seed=10)
            ).result(timeout_s=60.0).ok


class TestAdmissionBackpressure:
    def test_queue_full_rejects_then_drains_once_started(self):
        config = tiny_config(max_queue=2)
        faults = FaultInjector()
        registry = ArtifactRegistry(config, faults)
        scheduler = Scheduler(config, registry, faults)
        actives = [
            make_active(
                AnalysisRequest(circuit="c17", num_samples=8, seed=20 + i),
                f"t-{i:06d}",
            )
            for i in range(3)
        ]
        scheduler.submit(actives[0])
        scheduler.submit(actives[1])
        with pytest.raises(QueueFullError):
            scheduler.submit(actives[2])
        assert scheduler.queue_depth() == 2
        # Backpressure was admission-only: starting the workers drains
        # the admitted requests to completion.
        scheduler.start()
        try:
            for active in actives[:2]:
                assert active.stream.result(timeout_s=60.0).ok
        finally:
            scheduler.stop()
        assert not scheduler.running

    def test_queue_wait_timeout_is_terminal_before_any_sweep(self):
        config = tiny_config()
        faults = FaultInjector()
        scheduler = Scheduler(config, ArtifactRegistry(config, faults), faults)
        expired = make_active(
            AnalysisRequest(
                circuit="c17", num_samples=8, seed=30, timeout_s=0.01
            ),
            deadline=time.monotonic() + 0.01,
        )
        scheduler.submit(expired)
        time.sleep(0.05)
        assert scheduler.next_batch(wait_timeout_s=0.01) is None
        result = expired.stream.result(timeout_s=1.0)
        assert result.status is RequestStatus.TIMED_OUT
        assert "admission queue" in (result.error or "")

    def test_stop_fails_queued_requests_with_a_reason(self):
        config = tiny_config()
        faults = FaultInjector()
        scheduler = Scheduler(config, ArtifactRegistry(config, faults), faults)
        active = make_active(
            AnalysisRequest(circuit="c17", num_samples=8, seed=31)
        )
        scheduler.submit(active)
        scheduler.stop()
        result = active.stream.result(timeout_s=1.0)
        assert result.status is RequestStatus.FAILED
        assert "service stopped" in (result.error or "")
        with pytest.raises(RuntimeError):
            scheduler.submit(active)


class TestFaultInjector:
    def test_unknown_stage_and_bad_count_are_rejected(self):
        faults = FaultInjector()
        with pytest.raises(ValueError):
            faults.arm("no-such-stage")
        with pytest.raises(ValueError):
            faults.arm("kle", times=0)

    def test_fire_consumes_exactly_the_armed_count(self):
        faults = FaultInjector()
        faults.arm("sweep", times=2)
        for _ in range(2):
            with pytest.raises(InjectedFault):
                faults.fire("sweep")
        faults.fire("sweep")  # disarmed: no-op
        assert faults.fired("sweep") == 2

    def test_clear_disarms_but_keeps_counters(self):
        faults = FaultInjector()
        faults.arm("netlist", times=5)
        with pytest.raises(InjectedFault):
            faults.fire("netlist")
        faults.clear()
        faults.fire("netlist")
        assert faults.fired("netlist") == 1


def test_determinism_survives_a_faulty_neighbour(service, c880_harness):
    # A cancelled peer in the same shared sweep must not perturb the
    # surviving request's sample stream (generation-order independence).
    from repro.service.batcher import execute_batch

    victim = make_active(
        AnalysisRequest(
            circuit="c880", r=10, num_samples=60, seed=888, chunk_size=15
        ),
        "t-victim",
    )
    doomed = make_active(
        AnalysisRequest(
            circuit="c880", r=10, num_samples=60, seed=889, chunk_size=15
        ),
        "t-doomed",
    )
    doomed.stream.cancel("simulated disconnect")
    execute_batch([victim, doomed], c880_harness, FaultInjector())
    assert (
        doomed.stream.result(timeout_s=0.0).status is RequestStatus.CANCELLED
    )
    survivor = victim.stream.result(timeout_s=0.0)
    assert survivor.ok
    serial = c880_harness.run_kle(60, seed=888, chunk_size=15)
    rows = np.concatenate([c.worst_delay for c in victim.stream.chunks(0.1)])
    assert rows.shape == (60,)
    assert survivor.sta.mean_worst_delay() == serial.sta.mean_worst_delay()
    assert survivor.sta.std_worst_delay() == serial.sta.std_worst_delay()
