"""Shared fixtures for the SSTA service test layer.

One session-scoped, already-started daemon (small mesh/KLE so the whole
layer runs in seconds) serves the determinism and general suites; fault
tests build their own throwaway services from :func:`tiny_config` so an
injected failure can never leak residency into another test.
"""

from __future__ import annotations

import time
from typing import Optional

import pytest

from repro.service import AnalysisRequest, ServiceConfig, SSTAService
from repro.service.batcher import ActiveRequest
from repro.service.stream import ResultStream
from repro.utils.rng import SeedLike

#: The determinism suite's circuit and KLE truncation order.
CIRCUIT = "c880"
R = 10


def tiny_config(**overrides: object) -> ServiceConfig:
    """A deliberately small config for per-test throwaway services."""
    settings = dict(
        mesh_divisions=(8, 8),
        num_eigenpairs=16,
        num_workers=1,
        stream_put_timeout_s=5.0,
    )
    settings.update(overrides)
    return ServiceConfig(**settings)  # type: ignore[arg-type]


def make_active(
    request: AnalysisRequest,
    request_id: str = "t-000000",
    *,
    seed: SeedLike = None,
    deadline: Optional[float] = None,
    buffer_chunks: int = 64,
    put_timeout_s: float = 5.0,
) -> ActiveRequest:
    """Build a scheduler-level ActiveRequest without a running service."""
    stream = ResultStream(
        request,
        request_id,
        buffer_chunks=buffer_chunks,
        put_timeout_s=put_timeout_s,
    )
    return ActiveRequest(
        request=request,
        stream=stream,
        seed=seed if seed is not None else request.seed,
        submitted_at=time.monotonic(),
        deadline=deadline,
    )


@pytest.fixture(scope="session")
def service_config():
    """Config shared by the session service and serial comparisons."""
    return ServiceConfig(
        mesh_divisions=(10, 10), num_eigenpairs=40, num_workers=2
    )


@pytest.fixture(scope="session")
def service(service_config):
    """A started daemon, pre-warmed for c880 (r=10) and c17."""
    with SSTAService(service_config) as svc:
        svc.warm_up(CIRCUIT, "gaussian", R)
        svc.warm_up("c17")
        yield svc


@pytest.fixture(scope="session")
def c880_harness(service):
    """The *same* resident harness the daemon serves c880 requests with."""
    return service.warm_up(CIRCUIT, "gaussian", R)
