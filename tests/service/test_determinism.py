"""Determinism suite: service answers are bitwise-identical to serial runs.

The service's contract (ISSUE 6, satellite 1): a request's result is a
pure function of its request tuple — concurrent interleaved submission,
fusion into a shared sweep, and chunk-boundary splits must all produce
results bitwise identical to the same request run serially through
:class:`~repro.timing.ssta.MonteCarloSSTA`.
"""

from __future__ import annotations

import numpy as np

from repro.service import AnalysisRequest
from repro.service.batcher import execute_batch
from repro.service.faults import FaultInjector
from repro.service.request import RequestStatus
from repro.service.server import SSTAService
from repro.utils.rng import as_generator

from tests.service.conftest import CIRCUIT, R, make_active, tiny_config


def _assert_sta_bitwise(service_sta, serial_sta):
    """Exact (bitwise) equality of two full STA results."""
    assert np.array_equal(service_sta.worst_delay, serial_sta.worst_delay)
    assert set(service_sta.end_arrivals) == set(serial_sta.end_arrivals)
    for net, values in serial_sta.end_arrivals.items():
        assert np.array_equal(service_sta.end_arrivals[net], values)


class TestConcurrentInterleaved:
    def test_concurrent_unchunked_requests_match_serial_bitwise(
        self, service, c880_harness
    ):
        seeds = [1101, 1102, 1103, 1104]
        streams = [
            service.submit(
                AnalysisRequest(
                    circuit=CIRCUIT, r=R, num_samples=96, seed=seed
                )
            )
            for seed in seeds
        ]
        results = [stream.result(timeout_s=120.0) for stream in streams]
        for seed, result in zip(seeds, results):
            assert result.ok, result.error
            serial = c880_harness.run_kle(96, seed=seed)
            _assert_sta_bitwise(result.sta, serial.sta)

    def test_interleaved_mixed_flows_and_circuits_match_serial(
        self, service, c880_harness
    ):
        # Interleave incompatible batch keys: kle vs reference flow on
        # c880, plus a different circuit entirely.  Each must still be a
        # pure function of its own request tuple.
        c17_harness = service.warm_up("c17")
        submissions = [
            AnalysisRequest(circuit=CIRCUIT, r=R, num_samples=48, seed=21),
            AnalysisRequest(
                circuit=CIRCUIT, r=R, num_samples=48, seed=21, flow="reference"
            ),
            AnalysisRequest(circuit="c17", num_samples=64, seed=5),
            AnalysisRequest(circuit=CIRCUIT, r=R, num_samples=32, seed=22),
        ]
        streams = [service.submit(request) for request in submissions]
        results = [stream.result(timeout_s=120.0) for stream in streams]
        assert all(result.ok for result in results)
        expected = [
            c880_harness.run_kle(48, seed=21),
            c880_harness.run_reference(48, seed=21),
            c17_harness.run_kle(64, seed=5),
            c880_harness.run_kle(32, seed=22),
        ]
        for result, serial in zip(results, expected):
            _assert_sta_bitwise(result.sta, serial.sta)

    def test_streamed_chunks_carry_the_serial_sample_rows(
        self, service, c880_harness
    ):
        # include_samples=True attaches per-end-point rows to each chunk;
        # concatenated across the stream they must equal the serial run's
        # arrays exactly.
        stream = service.submit(
            AnalysisRequest(
                circuit=CIRCUIT,
                r=R,
                num_samples=40,
                seed=77,
                include_samples=True,
            )
        )
        chunks = list(stream.chunks(timeout_s=120.0))
        result = stream.result(timeout_s=120.0)
        assert result.ok
        assert sum(chunk.num_samples for chunk in chunks) == 40
        serial = c880_harness.run_kle(40, seed=77)
        worst = np.concatenate([chunk.worst_delay for chunk in chunks])
        assert np.array_equal(worst, serial.sta.worst_delay)
        for net, values in serial.sta.end_arrivals.items():
            streamed = np.concatenate(
                [chunk.end_arrivals[net] for chunk in chunks]
            )
            assert np.array_equal(streamed, values)


class TestSharedSweepBatching:
    def test_fused_batch_is_bitwise_equal_to_serial_runs(self, c880_harness):
        # Deterministic batching: drive the batcher directly so all four
        # requests are guaranteed to share the sweeps.
        specs = [(64, 501), (96, 502), (32, 503), (80, 504)]
        actives = [
            make_active(
                AnalysisRequest(
                    circuit=CIRCUIT, r=R, num_samples=n, seed=seed
                ),
                f"t-{i:06d}",
            )
            for i, (n, seed) in enumerate(specs)
        ]
        execute_batch(actives, c880_harness, FaultInjector())
        for active, (n, seed) in zip(actives, specs):
            result = active.stream.result(timeout_s=0.0)
            assert result.ok
            assert result.batch_size == 4
            serial = c880_harness.run_kle(n, seed=seed)
            _assert_sta_bitwise(result.sta, serial.sta)

    def test_forced_service_level_batch_matches_serial(
        self, service_config, c880_harness
    ):
        # End to end with one worker: a long-running blocker with an
        # incompatible batch key occupies the only worker while four
        # compatible requests queue up, so the next pop coalesces all
        # four into one shared sweep.
        config = tiny_config(
            mesh_divisions=service_config.mesh_divisions,
            num_eigenpairs=service_config.num_eigenpairs,
            num_workers=1,
        )
        with SSTAService(config) as svc:
            harness = svc.warm_up(CIRCUIT, "gaussian", R)
            svc.warm_up(CIRCUIT, "gaussian", None)
            blocker = svc.submit(
                AnalysisRequest(circuit=CIRCUIT, num_samples=2048, seed=9)
            )
            seeds = [601, 602, 603, 604]
            streams = [
                svc.submit(
                    AnalysisRequest(
                        circuit=CIRCUIT, r=R, num_samples=64, seed=seed
                    )
                )
                for seed in seeds
            ]
            results = [stream.result(timeout_s=120.0) for stream in streams]
            assert blocker.result(timeout_s=120.0).ok
        for seed, result in zip(seeds, results):
            assert result.ok
            assert result.batch_size == 4
            serial = harness.run_kle(64, seed=seed)
            _assert_sta_bitwise(result.sta, serial.sta)

    def test_batch_composition_does_not_change_a_chunked_stream(
        self, c880_harness
    ):
        # The same chunked request run alone and fused with a peer of a
        # different size/chunking must emit the identical chunk rows and
        # identical streaming statistics.
        def chunked_request():
            return AnalysisRequest(
                circuit=CIRCUIT,
                r=R,
                num_samples=90,
                seed=314,
                chunk_size=13,
                quantiles=(0.5, 0.9),
            )

        alone = make_active(chunked_request(), "t-alone0")
        execute_batch([alone], c880_harness, FaultInjector())

        fused = make_active(chunked_request(), "t-fused0")
        peer = make_active(
            AnalysisRequest(
                circuit=CIRCUIT, r=R, num_samples=50, seed=999, chunk_size=20
            ),
            "t-peer00",
        )
        execute_batch([fused, peer], c880_harness, FaultInjector())

        rows_alone = [c.worst_delay for c in alone.stream.chunks(0.1)]
        rows_fused = [c.worst_delay for c in fused.stream.chunks(0.1)]
        assert len(rows_alone) == len(rows_fused) == 7  # ceil(90 / 13)
        for left, right in zip(rows_alone, rows_fused):
            assert np.array_equal(left, right)

        sta_alone = alone.stream.result(timeout_s=0.0).sta
        sta_fused = fused.stream.result(timeout_s=0.0).sta
        assert sta_alone.mean_worst_delay() == sta_fused.mean_worst_delay()
        assert sta_alone.std_worst_delay() == sta_fused.std_worst_delay()
        assert sta_alone.quantile_worst_delay(
            0.9
        ) == sta_fused.quantile_worst_delay(0.9)
        assert peer.stream.result(timeout_s=0.0).ok


class TestChunkBoundaries:
    def test_chunked_request_matches_serial_chunked_run(
        self, service, c880_harness
    ):
        # N=90 over chunk_size=13 exercises a ragged final chunk; the
        # streaming statistics must be bitwise those of the serial
        # chunked flow (same generator threading, same merge order).
        stream = service.submit(
            AnalysisRequest(
                circuit=CIRCUIT,
                r=R,
                num_samples=90,
                seed=2718,
                chunk_size=13,
                quantiles=(0.5, 0.9),
            )
        )
        result = stream.result(timeout_s=120.0)
        assert result.ok
        serial = c880_harness.run_kle(
            90, seed=2718, chunk_size=13, quantiles=(0.5, 0.9)
        )
        assert result.sta.mean_worst_delay() == serial.sta.mean_worst_delay()
        assert result.sta.std_worst_delay() == serial.sta.std_worst_delay()
        for q in (0.5, 0.9):
            assert result.sta.quantile_worst_delay(
                q
            ) == serial.sta.quantile_worst_delay(q)
        assert result.sta.output_mean() == serial.sta.output_mean()
        assert result.sta.output_sigma() == serial.sta.output_sigma()

    def test_chunk_rows_equal_a_manual_serial_chunk_loop(self, c880_harness):
        # Reconstruct the serial chunked flow by hand: one persistent
        # generator threaded through per-chunk generate() calls.  The
        # service's chunk stream must reproduce those rows exactly.
        seed, total, chunk = 424242, 70, 16
        active = make_active(
            AnalysisRequest(
                circuit=CIRCUIT,
                r=R,
                num_samples=total,
                seed=seed,
                chunk_size=chunk,
            ),
            "t-manual",
        )
        execute_batch([active], c880_harness, FaultInjector())
        streamed = [c.worst_delay for c in active.stream.chunks(0.1)]

        rng = as_generator(seed)
        produced = 0
        expected = []
        while produced < total:
            rows = min(chunk, total - produced)
            generated = c880_harness.kle_generator.generate(
                c880_harness.gate_locations, rows, seed=rng
            )
            sta = c880_harness.engine.run(dict(generated.samples))
            expected.append(sta.worst_delay)
            produced += rows
        assert len(streamed) == len(expected)
        for left, right in zip(streamed, expected):
            assert np.array_equal(left, right)

    def test_unchunked_when_n_fits_one_chunk(self, service, c880_harness):
        # N <= chunk_size takes the one-shot exact path, same as serial.
        stream = service.submit(
            AnalysisRequest(
                circuit=CIRCUIT, r=R, num_samples=24, seed=55, chunk_size=64
            )
        )
        result = stream.result(timeout_s=120.0)
        assert result.ok
        serial = c880_harness.run_kle(24, seed=55, chunk_size=64)
        _assert_sta_bitwise(result.sta, serial.sta)


class TestSeedPolicy:
    def test_seedless_requests_are_independent(self, service):
        streams = [
            service.submit(AnalysisRequest(circuit="c17", num_samples=32))
            for _ in range(2)
        ]
        first, second = [s.result(timeout_s=120.0) for s in streams]
        assert first.ok and second.ok
        assert not np.array_equal(
            first.sta.worst_delay, second.sta.worst_delay
        )

    def test_root_seed_makes_seedless_requests_reproducible(self):
        def run_two(config):
            with SSTAService(config) as svc:
                svc.warm_up("c17")
                streams = [
                    svc.submit(AnalysisRequest(circuit="c17", num_samples=32))
                    for _ in range(2)
                ]
                return [s.result(timeout_s=120.0) for s in streams]

        first = run_two(tiny_config(root_seed=7))
        second = run_two(tiny_config(root_seed=7))
        assert all(r.status is RequestStatus.DONE for r in first + second)
        for left, right in zip(first, second):
            assert np.array_equal(
                left.sta.worst_delay, right.sta.worst_delay
            )
        assert not np.array_equal(
            first[0].sta.worst_delay, first[1].sta.worst_delay
        )
