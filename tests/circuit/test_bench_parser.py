"""Tests for the ISCAS .bench parser/writer."""

import pytest

from repro.circuit.bench_parser import (
    BenchParseError,
    parse_bench,
    read_bench,
    save_bench,
    write_bench,
)
from repro.circuit.benchmarks import C17_BENCH


def test_parse_c17():
    netlist = parse_bench(C17_BENCH, name="c17")
    assert netlist.num_gates == 6
    assert netlist.primary_inputs == ["1", "2", "3", "6", "7"]
    assert netlist.primary_outputs == ["22", "23"]
    assert all(g.gate_type == "NAND" for g in netlist.gates)


def test_parse_case_insensitive_keywords():
    text = "input(a)\noutput(y)\ny = nand(a, a2)\ninput(a2)\n"
    netlist = parse_bench(text)
    assert netlist.num_gates == 1
    assert netlist.gates[0].gate_type == "NAND"


def test_parse_aliases():
    text = (
        "INPUT(a)\nOUTPUT(y)\n"
        "n1 = INV(a)\n"
        "n2 = BUF(n1)\n"
        "y = NOT(n2)\n"
    )
    netlist = parse_bench(text)
    assert netlist.gate("n1").gate_type == "NOT"
    assert netlist.gate("n2").gate_type == "BUFF"


def test_parse_dff():
    text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"
    netlist = parse_bench(text)
    assert netlist.is_sequential
    assert netlist.gates[0].gate_type == "DFF"


def test_parse_whitespace_and_comments():
    text = (
        "# full line comment\n"
        "  INPUT( a )\n"
        "\n"
        "OUTPUT(y)\n"
        "y = AND(a, b) # trailing comment\n"
        "INPUT(b)\n"
    )
    netlist = parse_bench(text)
    assert netlist.num_gates == 1
    assert netlist.gates[0].inputs == ("a", "b")


def test_parse_wide_gate():
    text = (
        "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\n"
        "y = NAND(a, b, c, d)\n"
    )
    netlist = parse_bench(text)
    assert netlist.gates[0].num_inputs == 4


def test_parse_errors():
    with pytest.raises(BenchParseError, match="line 1"):
        parse_bench("garbage line\n")
    with pytest.raises(BenchParseError, match="unknown gate type"):
        parse_bench("INPUT(a)\ny = LATCH(a)\n")
    with pytest.raises(BenchParseError, match="no inputs"):
        parse_bench("y = NAND()\n")
    with pytest.raises(BenchParseError, match="undriven"):
        parse_bench("OUTPUT(y)\ny = NOT(ghost)\n")


def test_roundtrip_c17():
    original = parse_bench(C17_BENCH, name="c17")
    again = parse_bench(write_bench(original), name="c17")
    assert again.primary_inputs == original.primary_inputs
    assert again.primary_outputs == original.primary_outputs
    assert len(again.gates) == len(original.gates)
    for a, b in zip(again.gates, original.gates):
        assert (a.name, a.gate_type, a.inputs) == (b.name, b.gate_type, b.inputs)


def test_roundtrip_generated_circuit():
    from repro.circuit.generate import generate_circuit

    netlist = generate_circuit("rt", 80, 8, 4, num_dffs=6, seed=1)
    again = parse_bench(write_bench(netlist), name="rt")
    assert again.num_gates == 80
    assert len(again.sequential_gates()) == 6


def test_file_roundtrip(tmp_path):
    netlist = parse_bench(C17_BENCH, name="c17")
    path = str(tmp_path / "c17.bench")
    save_bench(netlist, path)
    loaded = read_bench(path)
    assert loaded.name == "c17"
    assert loaded.num_gates == 6
