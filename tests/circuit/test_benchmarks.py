"""Tests for the Table 1 benchmark registry."""

import pytest

from repro.circuit.benchmarks import (
    TABLE1_SPECS,
    benchmark_names,
    get_spec,
    load_circuit,
)

# The paper's Table 1 N_g column, verbatim.
PAPER_GATE_COUNTS = {
    "c880": 383,
    "c1355": 546,
    "c1908": 880,
    "c3540": 1669,
    "c5315": 2307,
    "c6288": 2416,
    "s5378": 2779,
    "c7552": 3512,
    "s9234": 5597,
    "s13207": 7951,
    "s15850": 9772,
    "s35932": 16065,
    "s38584": 19253,
    "s38417": 22179,
}


def test_registry_covers_table1():
    assert benchmark_names() == list(PAPER_GATE_COUNTS)


def test_specs_match_paper_counts():
    for spec in TABLE1_SPECS:
        assert spec.num_gates == PAPER_GATE_COUNTS[spec.name]


def test_s_series_sequential_c_series_not():
    for spec in TABLE1_SPECS:
        assert spec.is_sequential == spec.name.startswith("s")


@pytest.mark.parametrize("name", ["c880", "c1355", "s5378"])
def test_loaded_circuits_match_spec(name):
    spec = get_spec(name)
    netlist = load_circuit(name)
    assert netlist.num_gates == spec.num_gates
    assert len(netlist.primary_inputs) == spec.num_inputs
    assert len(netlist.primary_outputs) == spec.num_outputs
    assert len(netlist.sequential_gates()) == spec.num_dffs


def test_load_is_deterministic():
    a = load_circuit("c880")
    b = load_circuit("c880")
    assert [(g.name, g.inputs) for g in a.gates] == [
        (g.name, g.inputs) for g in b.gates
    ]


def test_c17_is_genuine():
    c17 = load_circuit("c17")
    assert c17.num_gates == 6
    assert c17.gate_type_histogram() == {"NAND": 6}


def test_unknown_name_raises():
    with pytest.raises(KeyError, match="unknown benchmark"):
        get_spec("c9999")
    with pytest.raises(KeyError, match="unknown benchmark"):
        load_circuit("c9999")


def test_distinct_circuits_have_distinct_structure():
    a = load_circuit("c880")
    b = load_circuit("c1355")
    assert a.num_gates != b.num_gates


def test_export_benchmarks(tmp_path):
    from repro.circuit.benchmarks import export_benchmarks
    from repro.circuit.bench_parser import read_bench

    paths = export_benchmarks(str(tmp_path), names=["c17", "c880"])
    assert len(paths) == 2
    reloaded = read_bench(paths[1])
    assert reloaded.num_gates == 383
