"""Tests for the synthetic ISCAS-class circuit generator."""

import pytest

from repro.circuit.generate import default_depth, generate_circuit
from repro.circuit.levelize import levelize


def test_exact_gate_count():
    for count in (10, 137, 1000):
        netlist = generate_circuit("g", count, 8, 4, seed=0)
        assert netlist.num_gates == count


def test_exact_gate_count_with_dffs():
    netlist = generate_circuit("g", 200, 10, 5, num_dffs=30, seed=1)
    assert netlist.num_gates == 200
    assert len(netlist.sequential_gates()) == 30
    assert len(netlist.combinational_gates()) == 170


def test_io_counts():
    netlist = generate_circuit("g", 150, 17, 9, seed=2)
    assert len(netlist.primary_inputs) == 17
    assert len(netlist.primary_outputs) == 9


def test_determinism():
    a = generate_circuit("g", 120, 10, 6, seed=42)
    b = generate_circuit("g", 120, 10, 6, seed=42)
    assert [(g.name, g.gate_type, g.inputs) for g in a.gates] == [
        (g.name, g.gate_type, g.inputs) for g in b.gates
    ]


def test_different_seeds_differ():
    a = generate_circuit("g", 120, 10, 6, seed=1)
    b = generate_circuit("g", 120, 10, 6, seed=2)
    assert [(g.gate_type, g.inputs) for g in a.gates] != [
        (g.gate_type, g.inputs) for g in b.gates
    ]


def test_structural_validity_and_acyclicity():
    netlist = generate_circuit("g", 500, 20, 10, num_dffs=50, seed=3)
    lev = levelize(netlist)  # raises on cycles
    assert len(lev.gates_in_order) == 450


def test_depth_control():
    shallow = generate_circuit("g", 300, 10, 5, depth=6, seed=4)
    deep = generate_circuit("g", 300, 10, 5, depth=40, seed=4)
    assert levelize(shallow).depth <= 6
    assert levelize(deep).depth > 10


def test_default_depth_scales():
    assert default_depth(383) < default_depth(3512) < default_depth(22179)
    assert 6 <= default_depth(10) <= 150
    assert default_depth(1_000_000) == 150


def test_fanin_distribution_realistic():
    netlist = generate_circuit("g", 2000, 30, 15, seed=5)
    fanins = [g.num_inputs for g in netlist.combinational_gates()]
    assert max(fanins) <= 5
    two_input_share = sum(1 for f in fanins if f == 2) / len(fanins)
    assert two_input_share > 0.4


def test_gate_type_mix():
    netlist = generate_circuit("g", 3000, 30, 15, seed=6)
    histogram = netlist.gate_type_histogram()
    assert histogram.get("NAND", 0) > histogram.get("XNOR", 0)
    assert len(histogram) >= 6  # a varied cell mix


def test_few_dangling_nets():
    netlist = generate_circuit("g", 1000, 20, 30, seed=7)
    assert len(netlist.dangling_nets()) < 0.05 * netlist.num_gates


def test_validation_errors():
    with pytest.raises(ValueError, match="num_gates"):
        generate_circuit("g", 0, 4, 2)
    with pytest.raises(ValueError, match="num_inputs"):
        generate_circuit("g", 10, 0, 2)
    with pytest.raises(ValueError, match="num_outputs"):
        generate_circuit("g", 10, 4, 0)
    with pytest.raises(ValueError, match="num_dffs"):
        generate_circuit("g", 10, 4, 2, num_dffs=10)
    with pytest.raises(ValueError, match="locality"):
        generate_circuit("g", 10, 4, 2, locality=1.5)


def test_tiny_circuit():
    netlist = generate_circuit("tiny", 2, 2, 1, seed=8)
    assert netlist.num_gates == 2
    levelize(netlist)


def test_simulable():
    """Generated circuits are functionally evaluable end to end."""
    netlist = generate_circuit("g", 60, 6, 3, seed=9)
    values = netlist.simulate({net: True for net in netlist.primary_inputs})
    for po in netlist.primary_outputs:
        assert isinstance(values[po], bool)
