"""Property-based tests across the circuit substrate (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.bench_parser import parse_bench, write_bench
from repro.circuit.generate import generate_circuit
from repro.circuit.levelize import levelize

circuit_params = st.tuples(
    st.integers(min_value=3, max_value=120),   # gates
    st.integers(min_value=2, max_value=12),    # inputs
    st.integers(min_value=1, max_value=6),     # outputs
    st.integers(min_value=0, max_value=2),     # dff fraction selector
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
)


@given(circuit_params)
@settings(max_examples=30, deadline=None)
def test_generated_circuits_are_structurally_sound(params):
    """Any generated circuit: exact size, acyclic, valid netlist."""
    gates, inputs, outputs, dff_sel, seed = params
    dffs = min(dff_sel * gates // 6, gates - 1)
    netlist = generate_circuit(
        "prop", gates, inputs, outputs, num_dffs=dffs, seed=seed
    )
    assert netlist.num_gates == gates
    assert len(netlist.sequential_gates()) == dffs
    lev = levelize(netlist)  # raises on cycles
    assert len(lev.gates_in_order) == gates - dffs


@given(circuit_params)
@settings(max_examples=20, deadline=None)
def test_bench_roundtrip_preserves_structure(params):
    """write_bench -> parse_bench is the identity on structure."""
    gates, inputs, outputs, dff_sel, seed = params
    dffs = min(dff_sel * gates // 6, gates - 1)
    original = generate_circuit(
        "rt", gates, inputs, outputs, num_dffs=dffs, seed=seed
    )
    again = parse_bench(write_bench(original), name="rt")
    assert again.primary_inputs == original.primary_inputs
    assert again.primary_outputs == original.primary_outputs
    assert len(again.gates) == len(original.gates)
    for a, b in zip(again.gates, original.gates):
        assert (a.gate_type, a.inputs, a.output) == (
            b.gate_type, b.inputs, b.output
        )


@given(circuit_params, st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_simulation_is_deterministic_function(params, vector_seed):
    """Same inputs -> same outputs; levelization order cannot matter."""
    gates, inputs, outputs, _dff, seed = params
    netlist = generate_circuit("sim", gates, inputs, outputs, seed=seed)
    rng = np.random.default_rng(vector_seed)
    vector = {
        net: bool(rng.integers(2)) for net in netlist.primary_inputs
    }
    first = netlist.simulate(vector)
    second = netlist.simulate(vector)
    assert first == second


@given(st.integers(3, 60), st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_levelization_is_topological(num_gates, seed):
    netlist = generate_circuit("topo", num_gates, 4, 2, seed=seed)
    lev = levelize(netlist)
    position = {g.name: i for i, g in enumerate(lev.gates_in_order)}
    for gate in lev.gates_in_order:
        for net in gate.inputs:
            driver = netlist.driver_of(net)
            if driver is not None and not driver.is_sequential:
                assert position[driver.name] < position[gate.name]
