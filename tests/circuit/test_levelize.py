"""Tests for topological levelization and sequential-boundary handling."""

import pytest

from repro.circuit.levelize import CombinationalCycleError, levelize
from repro.circuit.netlist import Gate, Netlist


def test_levelize_c17(c17):
    lev = levelize(c17)
    assert len(lev.gates_in_order) == 6
    assert lev.depth == 3
    assert set(lev.start_nets) == {"1", "2", "3", "6", "7"}
    assert set(lev.end_nets) == {"22", "23"}


def test_order_respects_dependencies(c17):
    lev = levelize(c17)
    position = {g.name: i for i, g in enumerate(lev.gates_in_order)}
    for gate in lev.gates_in_order:
        for net in gate.inputs:
            driver = c17.driver_of(net)
            if driver is not None:
                assert position[driver.name] < position[gate.name]


def test_levels_consistent(c17):
    lev = levelize(c17)
    for gate in lev.gates_in_order:
        level = lev.level_of_gate[gate.name]
        for net in gate.inputs:
            driver = c17.driver_of(net)
            upstream = 0 if driver is None else lev.level_of_gate[driver.name]
            assert level >= upstream + 1


def test_dff_boundaries():
    gates = [
        Gate("g1", "NOT", ("q1",), "g1"),
        Gate("dff1", "DFF", ("g1",), "q1"),
    ]
    netlist = Netlist("loop", [], [], gates)
    lev = levelize(netlist)
    assert "q1" in lev.start_nets
    assert "g1" in lev.end_nets
    assert [g.name for g in lev.gates_in_order] == ["g1"]


def test_combinational_cycle_detected():
    gates = [
        Gate("g1", "NOT", ("g2",), "g1"),
        Gate("g2", "NOT", ("g1",), "g2"),
    ]
    netlist = Netlist("cyc", [], [], gates)
    with pytest.raises(CombinationalCycleError, match="cycle"):
        levelize(netlist)


def test_dff_breaks_cycle():
    """The same loop with a DFF inserted is legal."""
    gates = [
        Gate("g1", "NOT", ("q",), "g1"),
        Gate("g2", "NOT", ("g1",), "g2"),
        Gate("dff", "DFF", ("g2",), "q"),
    ]
    netlist = Netlist("ok", [], [], gates)
    lev = levelize(netlist)
    assert lev.depth == 2


def test_empty_combinational_netlist():
    netlist = Netlist("empty", ["a"], ["a"], [])
    lev = levelize(netlist)
    assert lev.depth == 0
    assert lev.gates_in_order == []


def test_multi_pin_same_net():
    """A gate reading the same net on two pins levelizes correctly."""
    gates = [
        Gate("g1", "NOT", ("a",), "g1"),
        Gate("g2", "XOR", ("g1", "g1"), "g2"),
    ]
    netlist = Netlist("dup", ["a"], ["g2"], gates)
    lev = levelize(netlist)
    assert lev.level_of_gate["g2"] == 2


def test_generated_sequential_circuit_levelizes():
    from repro.circuit.generate import generate_circuit

    netlist = generate_circuit("seq", 300, 12, 10, num_dffs=40, seed=2)
    lev = levelize(netlist)
    assert len(lev.gates_in_order) == 260
    assert len(lev.start_nets) == 12 + 40
    assert len(lev.end_nets) == 10 + 40


def test_depth_positive_for_real_circuits(c880):
    assert levelize(c880).depth >= 6
