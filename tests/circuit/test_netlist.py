"""Tests for the netlist data structures."""

import pytest

from repro.circuit.netlist import Gate, Netlist


def simple_netlist():
    gates = [
        Gate("g1", "NAND", ("a", "b"), "g1"),
        Gate("g2", "NOT", ("g1",), "g2"),
        Gate("g3", "OR", ("g1", "g2"), "g3"),
    ]
    return Netlist("simple", ["a", "b"], ["g3"], gates)


# ---------------------------------------------------------------------------
# Gate.
# ---------------------------------------------------------------------------
def test_gate_basic_fields():
    gate = Gate("x", "NAND", ("p", "q"), "x")
    assert gate.num_inputs == 2
    assert not gate.is_sequential


def test_gate_dff_is_sequential():
    assert Gate("d", "DFF", ("p",), "q").is_sequential


def test_gate_type_validation():
    with pytest.raises(ValueError, match="unknown gate type"):
        Gate("x", "MUX", ("a", "b"), "x")


def test_gate_arity_validation():
    with pytest.raises(ValueError, match="exactly one"):
        Gate("x", "NOT", ("a", "b"), "x")
    with pytest.raises(ValueError, match=">= 2"):
        Gate("x", "NAND", ("a",), "x")
    with pytest.raises(ValueError, match="no inputs"):
        Gate("x", "AND", (), "x")


@pytest.mark.parametrize(
    "gate_type,inputs,expected",
    [
        ("AND", (True, True), True),
        ("AND", (True, False), False),
        ("NAND", (True, True), False),
        ("OR", (False, False), False),
        ("NOR", (False, False), True),
        ("XOR", (True, False), True),
        ("XOR", (True, True), False),
        ("XNOR", (True, True), True),
        ("NOT", (True,), False),
        ("BUFF", (True,), True),
    ],
)
def test_gate_evaluation(gate_type, inputs, expected):
    arity = len(inputs)
    nets = tuple(f"i{k}" for k in range(arity))
    gate = Gate("g", gate_type, nets, "g")
    assert gate.evaluate(list(inputs)) is expected


def test_gate_evaluate_wrong_arity():
    gate = Gate("g", "AND", ("a", "b"), "g")
    with pytest.raises(ValueError, match="expects 2"):
        gate.evaluate([True])


# ---------------------------------------------------------------------------
# Netlist structure.
# ---------------------------------------------------------------------------
def test_netlist_basic_queries():
    netlist = simple_netlist()
    assert netlist.num_gates == 3
    assert netlist.driver_of("a") is None
    assert netlist.driver_of("g1").name == "g1"
    sinks = netlist.sinks_of("g1")
    assert {(g.name, pin) for g, pin in sinks} == {("g2", 0), ("g3", 0)}
    assert netlist.fanout_of("g1") == 2
    assert netlist.fanout_of("g3") == 1  # PO counts as a sink


def test_netlist_nets_listing():
    netlist = simple_netlist()
    assert set(netlist.nets) == {"a", "b", "g1", "g2", "g3"}


def test_gate_lookup():
    netlist = simple_netlist()
    assert netlist.gate("g2").gate_type == "NOT"
    with pytest.raises(KeyError, match="no gate named"):
        netlist.gate("nope")


def test_unknown_net_queries_raise():
    netlist = simple_netlist()
    with pytest.raises(KeyError, match="no net named"):
        netlist.driver_of("zzz")
    with pytest.raises(KeyError, match="no net named"):
        netlist.sinks_of("zzz")


def test_multiple_driver_rejected():
    gates = [
        Gate("g1", "NOT", ("a",), "n"),
        Gate("g2", "NOT", ("a",), "n"),
    ]
    with pytest.raises(ValueError, match="multiple drivers"):
        Netlist("bad", ["a"], ["n"], gates)


def test_undriven_input_rejected():
    gates = [Gate("g1", "NOT", ("ghost",), "g1")]
    with pytest.raises(ValueError, match="undriven"):
        Netlist("bad", ["a"], ["g1"], gates)


def test_missing_output_rejected():
    with pytest.raises(ValueError, match="does not exist"):
        Netlist("bad", ["a"], ["ghost"], [])


def test_duplicate_io_rejected():
    with pytest.raises(ValueError, match="duplicate primary input"):
        Netlist("bad", ["a", "a"], [], [])
    gates = [Gate("g1", "NOT", ("a",), "g1")]
    with pytest.raises(ValueError, match="duplicate primary output"):
        Netlist("bad", ["a"], ["g1", "g1"], gates)


def test_duplicate_gate_name_rejected():
    gates = [
        Gate("g1", "NOT", ("a",), "n1"),
        Gate("g1", "NOT", ("a",), "n2"),
    ]
    with pytest.raises(ValueError, match="duplicate gate name"):
        Netlist("bad", ["a"], [], gates)


def test_dangling_nets_detection():
    gates = [
        Gate("g1", "NOT", ("a",), "g1"),
        Gate("g2", "NOT", ("a",), "g2"),  # unread, not a PO
    ]
    netlist = Netlist("d", ["a"], ["g1"], gates)
    assert netlist.dangling_nets() == {"g2"}


def test_sequential_partition(c17):
    assert c17.combinational_gates() == c17.gates
    assert c17.sequential_gates() == []
    assert not c17.is_sequential


def test_gate_type_histogram(c17):
    assert c17.gate_type_histogram() == {"NAND": 6}


# ---------------------------------------------------------------------------
# Functional simulation.
# ---------------------------------------------------------------------------
def test_simulate_simple():
    netlist = simple_netlist()
    values = netlist.simulate({"a": True, "b": True})
    assert values["g1"] is False  # NAND(1,1)
    assert values["g2"] is True
    assert values["g3"] is True  # OR(0,1)


def test_simulate_missing_input():
    netlist = simple_netlist()
    with pytest.raises(ValueError, match="missing value"):
        netlist.simulate({"a": True})


def test_simulate_sequential_frame():
    gates = [
        Gate("dff1", "DFF", ("n1",), "q1"),
        Gate("n1", "NOT", ("q1",), "n1"),
    ]
    netlist = Netlist("toggler", [], ["n1"], gates)
    low = netlist.simulate({}, dff_values={"q1": False})
    high = netlist.simulate({}, dff_values={"q1": True})
    assert low["n1"] is True
    assert high["n1"] is False


def test_c17_truth_vector(c17):
    """Golden vector through the genuine embedded c17 netlist."""
    values = c17.simulate({"1": 1, "2": 0, "3": 1, "6": 1, "7": 0})
    assert values["22"] is True
    assert values["23"] is False
