"""Good/bad fixtures for every project lint rule.

Each rule gets at least one fixture that must trigger it and one that
must stay clean, run through the real engine (`analyze_source` with the
rule selected) so dispatch, locations and messages are all exercised.
"""

import textwrap

from repro.analysis.engine import analyze_source


def hits(rule_id, source):
    """Rule ids of violations the selected rule finds in ``source``."""
    found = analyze_source(
        textwrap.dedent(source), "fixture.py", select=[rule_id]
    )
    return [v.rule_id for v in found]


# ----------------------------------------------------------------------
# REPRO-RNG001 — legacy np.random.* global state.
# ----------------------------------------------------------------------
def test_rng001_flags_module_level_calls():
    bad = """
        import numpy as np
        x = np.random.normal(size=8)
        np.random.seed(0)
    """
    assert hits("REPRO-RNG001", bad) == ["REPRO-RNG001"] * 2


def test_rng001_flags_full_module_spelling():
    bad = """
        import numpy
        numpy.random.shuffle(values)
    """
    assert hits("REPRO-RNG001", bad) == ["REPRO-RNG001"]


def test_rng001_flags_legacy_import():
    bad = "from numpy.random import seed, randn\n"
    assert hits("REPRO-RNG001", bad) == ["REPRO-RNG001"]


def test_rng001_clean_on_generator_api():
    good = """
        import numpy as np
        from numpy.random import default_rng, Generator
        rng = np.random.default_rng(42)
        x = rng.normal(size=8)
        rng.shuffle(x)
    """
    assert hits("REPRO-RNG001", good) == []


def test_rng001_ignores_unrelated_attribute_chains():
    good = "x = module.random.normal(3)\n"
    assert hits("REPRO-RNG001", good) == []


# ----------------------------------------------------------------------
# REPRO-RNG002 — retired: the per-file unseeded-default_rng rule was
# subsumed by the interprocedural seed-flow pass (REPRO-SEED001, see
# tests/analysis/test_seedflow.py for the behavioral coverage).
# ----------------------------------------------------------------------
def test_rng002_is_retired_in_favor_of_seed_flow():
    from repro.analysis.engine import known_rule_ids

    known = known_rule_ids()
    assert "REPRO-RNG002" not in known
    assert "REPRO-SEED001" in known
    assert "REPRO-SEED002" in known


# ----------------------------------------------------------------------
# REPRO-CACHE001 — mutation of cache-loaded arrays.
# ----------------------------------------------------------------------
def test_cache001_flags_subscript_store():
    bad = """
        arrays = cache.load("kle", schema="v1")
        arrays["eigenvalues"][0] = 0.0
    """
    assert hits("REPRO-CACHE001", bad) == ["REPRO-CACHE001"]


def test_cache001_flags_read_artifact_and_get_or_create():
    bad = """
        def warm(kle_cache):
            data = read_artifact(path, schema="v1")
            data["values"][:] = 1.0
            entry = kle_cache.get_or_create("key", build)
            entry["values"] += 1.0
    """
    assert hits("REPRO-CACHE001", bad) == ["REPRO-CACHE001"] * 2


def test_cache001_tracks_subscript_aliases_and_methods():
    bad = """
        arrays = cache.load("entry")
        eigen = arrays["eigenvalues"]
        eigen += 1.0
        eigen.sort()
    """
    assert hits("REPRO-CACHE001", bad) == ["REPRO-CACHE001"] * 2


def test_cache001_clean_on_copies_and_rebinding():
    good = """
        import numpy as np
        arrays = cache.load("entry")
        copy = np.array(arrays["eigenvalues"])
        copy[0] = 99.0
        copy.sort()
        arrays = {}
        arrays["fresh"] = 1
    """
    assert hits("REPRO-CACHE001", good) == []


def test_cache001_scope_is_per_function():
    good = """
        def reader(cache):
            arrays = cache.load("entry")
            return arrays

        def writer():
            arrays = build_arrays()
            arrays["x"] = 1
    """
    assert hits("REPRO-CACHE001", good) == []


def test_cache001_requires_cacheish_receiver():
    good = """
        rows = db.load("query")
        rows["x"] = 1
    """
    assert hits("REPRO-CACHE001", good) == []


# ----------------------------------------------------------------------
# REPRO-FLOAT001 — float-literal equality.
# ----------------------------------------------------------------------
def test_float001_flags_eq_and_ne():
    bad = """
        if x == 0.5:
            pass
        done = value != 1.0
    """
    assert hits("REPRO-FLOAT001", bad) == ["REPRO-FLOAT001"] * 2


def test_float001_clean_on_tolerances_and_ints():
    good = """
        import numpy as np
        if np.isclose(x, 0.5):
            pass
        if count == 0:
            pass
        if x < 0.5:
            pass
    """
    assert hits("REPRO-FLOAT001", good) == []


def test_float001_suppression_with_justification():
    good = """
        # Assigned-never-computed sentinel, exact by construction.
        if total == 0.0:  # repro-lint: disable=REPRO-FLOAT001
            pass
    """
    assert hits("REPRO-FLOAT001", good) == []


# ----------------------------------------------------------------------
# REPRO-DEF001 — mutable defaults.
# ----------------------------------------------------------------------
def test_def001_flags_literals_and_constructors():
    bad = """
        def f(a=[], b={}, c=set()):
            pass

        def g(*, d=dict()):
            pass

        h = lambda xs=[]: xs
    """
    assert hits("REPRO-DEF001", bad) == ["REPRO-DEF001"] * 5


def test_def001_clean_on_none_and_immutables():
    good = """
        def f(a=None, b=(), c="name", d=0):
            out = a if a is not None else []
            return out, b, c, d
    """
    assert hits("REPRO-DEF001", good) == []


# ----------------------------------------------------------------------
# REPRO-EXC001 — bare / blanket excepts.
# ----------------------------------------------------------------------
def test_exc001_flags_bare_and_blanket():
    bad = """
        try:
            work()
        except:
            pass

        try:
            work()
        except Exception:
            log()

        try:
            work()
        except (ValueError, Exception) as exc:
            log(exc)
    """
    assert hits("REPRO-EXC001", bad) == ["REPRO-EXC001"] * 3


def test_exc001_clean_on_specific_or_reraising():
    good = """
        try:
            work()
        except (OSError, ValueError):
            recover()

        try:
            work()
        except Exception:
            cleanup()
            raise

        try:
            work()
        except BaseException as exc:
            log(exc)
            raise exc
    """
    assert hits("REPRO-EXC001", good) == []


# ----------------------------------------------------------------------
# REPRO-TIME001 — wall clock in cache keys.
# ----------------------------------------------------------------------
def test_time001_flags_clock_in_key_function():
    bad = """
        import time

        def kle_cache_key(kernel, mesh):
            return f"{kernel}-{mesh}-{time.time()}"
    """
    assert hits("REPRO-TIME001", bad) == ["REPRO-TIME001"]


def test_time001_flags_clock_fed_to_hashlib():
    bad = """
        import hashlib
        import time

        token = hashlib.sha256(str(time.time()).encode()).hexdigest()
    """
    assert hits("REPRO-TIME001", bad) == ["REPRO-TIME001"]


def test_time001_flags_datetime_now_in_fingerprint():
    bad = """
        from datetime import datetime

        def artifact_fingerprint(arrays):
            return f"{arrays}-{datetime.now()}"
    """
    assert hits("REPRO-TIME001", bad) == ["REPRO-TIME001"]


def test_time001_clean_on_timing_measurements():
    good = """
        import time

        def run(solver):
            start = time.perf_counter()
            begun = time.time()  # wall-clock logging outside key-building
            result = solver()
            return result, time.time() - begun
    """
    assert hits("REPRO-TIME001", good) == []


# ----------------------------------------------------------------------
# REPRO-TYPE001 — annotation completeness.
# ----------------------------------------------------------------------
def test_type001_flags_missing_params_and_return():
    bad = """
        def scale(values, factor: float) -> float:
            return values * factor

        def run(a: int) :
            return a

        def collect(*args, **kwargs) -> None:
            pass
    """
    found = analyze_source(
        textwrap.dedent(bad), "fixture.py", select=["REPRO-TYPE001"]
    )
    assert len(found) == 3
    assert "values" in found[0].message
    assert "missing return annotation" in found[1].message
    assert "*args" in found[2].message and "**kwargs" in found[2].message


def test_type001_clean_on_complete_signatures():
    good = """
        from typing import Any

        class Thing:
            def __init__(self, size: int):
                self.size = size

            def grow(self, by: int = 1) -> int:
                return self.size + by

            @classmethod
            def default(cls) -> "Thing":
                return cls(0)

        def variadic(*args: float, **kwargs: Any) -> None:
            pass
    """
    assert hits("REPRO-TYPE001", good) == []
