"""Opposite lock-acquisition orders: REPRO-LOCK002 must fire.

``credit`` takes ``_a`` then ``_b``; ``debit`` takes ``_b`` then ``_a``.
Two interleaving threads each hold what the other needs — deadlock.
The attribute accesses themselves are fully guarded, so REPRO-LOCK001
must stay silent: order, not coverage, is the bug here.
"""

import threading


class Ledger:
    def __init__(self) -> None:
        self._a = threading.Lock()
        self._b = threading.Lock()
        self._balance = 0

    def credit(self, amount: int) -> None:
        with self._a:
            with self._b:
                self._balance += amount

    def debit(self, amount: int) -> None:
        with self._b:
            with self._a:
                self._balance -= amount
