"""Seeded REPRO-LINT001 violations: directives matching no finding.

Three distinct stale shapes: a per-line suppression for a rule that
does not fire on that line, a file-wide suppression for a rule that
fires nowhere in the file, and a suppression naming a rule id that
does not exist at all.
"""
# repro-lint: disable-file=REPRO-RNG001

import numpy as np

VALUES = np.zeros(4)  # repro-lint: disable=REPRO-NATIVE001
TOTAL = 0.0  # repro-lint: disable=REPRO-NOPE999
