"""Disciplined locking REPRO-LOCK001/002 must stay silent on.

Every shared access holds the class lock, lock order is globally
consistent, and the lazily built ``model`` uses the sanctioned
double-checked shape (unlocked fast-path read, re-read under the lock
every writer holds).
"""

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._entries: List[int] = []
        self._model: Optional[str] = None

    def add(self, value: int) -> None:
        with self._lock:
            self._entries.append(value)

    def size(self) -> int:
        with self._lock:
            return len(self._entries)

    def model(self) -> str:
        if self._model is None:
            with self._lock:
                if self._model is None:
                    self._model = "built"
        with self._lock:
            return self._model


def worker(registry: Registry, value: int) -> None:
    registry.add(value)


def run(rounds: int) -> int:
    registry = Registry()
    with ThreadPoolExecutor(max_workers=2) as pool:
        for index in range(rounds):
            pool.submit(worker, registry, index)
    return registry.size()
