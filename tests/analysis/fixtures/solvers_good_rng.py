"""Seeded range-finder RNG fixture: the sanctioned repro.solvers shape.

The Gaussian sketch's generator is derived from an explicit root seed
through ``spawn_seed_sequences`` — the exact pattern
``repro.solvers.randomized`` uses — so REPRO-SEED001 must stay silent.
"""

import numpy as np

from repro.utils.rng import spawn_seed_sequences


def sketch(n: int, columns: int, seed: int) -> np.ndarray:
    """Draw a deterministic Gaussian test matrix for a range finder."""
    (child,) = spawn_seed_sequences(int(seed), 1)
    rng = np.random.default_rng(child)
    return rng.standard_normal((n, columns))
