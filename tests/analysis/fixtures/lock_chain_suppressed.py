"""Chain-aware suppression fixture for the whole-program gate.

The unlocked ``status`` read is a genuine REPRO-LOCK001 finding whose
report chain points at the locked write; the justification lives at the
*write* line (where the locking decision is made), so the gate must
honor it there and the stale-suppression audit must count it as live.
The directive on ``label`` matches nothing and must be reported stale.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class Probe:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._status = "idle"
        self.label = "probe"

    def set_status(self, status: str) -> None:
        with self._lock:
            # Single-word writes; readers tolerate a one-update lag.
            self._status = status  # repro-lint: disable=REPRO-LOCK001

    def status(self) -> str:
        return self._status

    def describe(self) -> str:
        return self.label  # repro-lint: disable=REPRO-LOCK001


def worker(probe: Probe) -> None:
    probe.set_status("busy")


def run() -> str:
    probe = Probe()
    with ThreadPoolExecutor(max_workers=2) as pool:
        pool.submit(worker, probe)
    return probe.status()
