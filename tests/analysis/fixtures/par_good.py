"""Concurrency-clean counterpart to the bad pool fixtures.

Workers receive their seed explicitly and return results instead of
writing shared state; the whole-program rules must stay silent.
"""

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable, List

import numpy as np


def seeded_worker(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(4)


def run_all(seeds: Iterable[int]) -> List[np.ndarray]:
    results = []
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(seeded_worker, seed) for seed in seeds]
        results = [f.result() for f in futures]
    return results
