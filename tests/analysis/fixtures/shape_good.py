"""Shape-clean fixture: every numpy op broadcasts provably.

Dims agree symbolically (same source symbol), by constant equality, or
through a legitimate length-1 broadcast — REPRO-SHAPE001 must stay
silent on all of it.
"""

import numpy as np


def elementwise(n: int) -> np.ndarray:
    a = np.zeros(n)
    b = np.ones(n)
    return a + b


def broadcast_row(n: int) -> np.ndarray:
    matrix = np.zeros((n, 4))
    row = np.ones((1, 4))
    return matrix * row


def constant_pair() -> np.ndarray:
    left = np.zeros(8)
    right = np.full(8, 2.0)
    return left - right


def reshape_roundtrip(n: int) -> np.ndarray:
    flat = np.zeros(6)
    return flat.reshape(2, 3) + np.ones((2, 3))


def sliced_sum(n: int) -> np.ndarray:
    samples = np.zeros(n)
    head = samples[:4]
    return head + np.ones(4)
