"""One seed, two streams: two REPRO-SEED002 hits.

Feeding the same seed to two generator constructions yields two
*identical* streams masquerading as independent randomness — level
estimates correlate and Monte-Carlo error bars silently lie.  The
sanctioned shape is a single SeedSequence spawn.
"""

import numpy as np


def two_direct_streams(seed: int, n: int) -> float:
    a = np.random.default_rng(seed)
    b = np.random.default_rng(seed)
    return float(a.standard_normal(n).sum() + b.standard_normal(n).sum())


def _sample(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)


def direct_then_helper(seed: int, n: int) -> float:
    rng = np.random.default_rng(seed)
    other = _sample(seed, n)
    return float(rng.standard_normal(n).sum() + other.sum())
