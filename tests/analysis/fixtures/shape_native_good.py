"""Obligation-clean kernel call: every buffer provably dominates its bound.

Mirrors the live ``CompiledTimingProgram`` call shape: each pointer
argument of ``sta_eval_gates`` is allocated with exactly the extent
``cabi.kernel_buffer_obligations`` derives from ``sta_kernel.c``
(loop bounds for the per-gate tables, ``@repro-extent`` annotations for
``u`` and the arenas, ``4*num_rows`` for scratch).  The three pin-table
arguments have no affine extent (the kernel walks them with a running
counter), so they carry the same hand-proof suppression the live tree
uses.  REPRO-SHAPE002 must report nothing here.
"""

import ctypes

import numpy as np

from repro.timing.native import load_kernel

P_F64 = ctypes.POINTER(ctypes.c_double)
P_I64 = ctypes.POINTER(ctypes.c_int64)


def evaluate(
    num_rows: int,
    num_model_gates: int,
    num_pi: int,
    num_dff: int,
    num_gates: int,
    num_pins: int,
    width: int,
) -> None:
    kernel = load_kernel()

    u = np.zeros(num_rows * num_model_gates)
    pi_slots = np.zeros(num_pi, dtype=np.int64)
    dff_slots = np.zeros(num_dff, dtype=np.int64)
    dff_gids = np.zeros(num_dff, dtype=np.int64)
    dff_dnom = np.zeros(num_dff)
    dff_snom = np.zeros(num_dff)
    dff_k1 = np.zeros(num_dff)
    dff_k2 = np.zeros(num_dff)
    dff_m1 = np.zeros(num_dff)
    dff_m2 = np.zeros(num_dff)
    g_fanin = np.zeros(num_gates, dtype=np.int64)
    g_out_slot = np.zeros(num_gates, dtype=np.int64)
    g_id = np.zeros(num_gates, dtype=np.int64)
    g_bd = np.zeros(num_gates)
    g_dsl = np.zeros(num_gates)
    g_bs = np.zeros(num_gates)
    g_ssl = np.zeros(num_gates)
    g_k1 = np.zeros(num_gates)
    g_k2 = np.zeros(num_gates)
    g_m1 = np.zeros(num_gates)
    g_m2 = np.zeros(num_gates)
    p_slot = np.zeros(num_pins, dtype=np.int64)
    p_wd = np.zeros(num_pins)
    p_step2 = np.zeros(num_pins)
    arena_a = np.zeros(num_rows * width)
    arena_s = np.zeros(num_rows * width)
    scratch = np.zeros(4 * num_rows)

    kernel(
        num_rows,
        num_model_gates,
        u.ctypes.data_as(P_F64),
        0.0,
        pi_slots.ctypes.data_as(P_I64),
        num_pi,
        dff_slots.ctypes.data_as(P_I64),
        dff_gids.ctypes.data_as(P_I64),
        dff_dnom.ctypes.data_as(P_F64),
        dff_snom.ctypes.data_as(P_F64),
        dff_k1.ctypes.data_as(P_F64),
        dff_k2.ctypes.data_as(P_F64),
        dff_m1.ctypes.data_as(P_F64),
        dff_m2.ctypes.data_as(P_F64),
        num_dff,
        num_gates,
        g_fanin.ctypes.data_as(P_I64),
        g_out_slot.ctypes.data_as(P_I64),
        g_id.ctypes.data_as(P_I64),
        g_bd.ctypes.data_as(P_F64),
        g_dsl.ctypes.data_as(P_F64),
        g_bs.ctypes.data_as(P_F64),
        g_ssl.ctypes.data_as(P_F64),
        g_k1.ctypes.data_as(P_F64),
        g_k2.ctypes.data_as(P_F64),
        g_m1.ctypes.data_as(P_F64),
        g_m2.ctypes.data_as(P_F64),
        # Hand proof: the kernel's running pin counter visits exactly
        # one entry per (gate, fanin) pair and the tables are built
        # with one row per pair, so num_pins entries suffice.
        p_slot.ctypes.data_as(P_I64),  # repro-lint: disable=REPRO-SHAPE002
        p_wd.ctypes.data_as(P_F64),  # repro-lint: disable=REPRO-SHAPE002
        p_step2.ctypes.data_as(P_F64),  # repro-lint: disable=REPRO-SHAPE002
        arena_a.ctypes.data_as(P_F64),
        arena_s.ctypes.data_as(P_F64),
        scratch.ctypes.data_as(P_F64),
    )
