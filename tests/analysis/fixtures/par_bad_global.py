"""Seeded REPRO-PAR001 violation: worker accumulates into a global.

``worker`` runs in a pool process; ``record`` appends into the parent
module's ``RESULTS`` list — but only in the *worker's* copy of the
module, so the parent's list stays empty.  The write sits one call
below the submitted function, so flagging it requires the call graph.
"""

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

RESULTS: list = []


def record(value: float) -> None:
    RESULTS.append(value)


def worker(value: float) -> float:
    record(value)
    return value


def run_all(values: Iterable[float]) -> None:
    with ProcessPoolExecutor() as pool:
        for value in values:
            pool.submit(worker, value)
