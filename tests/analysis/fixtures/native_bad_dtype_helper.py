"""Seeded REPRO-NATIVE001 violation: dtype drift through a helper.

``send`` itself is contract-clean — its parameter requirement
(float64, C-contiguous) is recorded and enforced at call sites.  The
violation must therefore be reported at the ``send(indices)`` call in
``ship_indices``, where an int64 array drifts into the float64 slot,
not inside ``send``.
"""

import ctypes

import numpy as np


def send(buffer: np.ndarray) -> object:
    return buffer.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def ship_indices() -> object:
    indices = np.arange(16)
    return send(indices)
