"""Seeded REPRO-PAR002 violations: pool workers reach unseeded RNG.

``sample_worker`` reaches legacy ``np.random.randn`` through a helper;
``entropy_worker`` constructs an unseeded ``default_rng()`` directly.
Both make parallel runs draw per-worker entropy streams.
"""

from concurrent.futures import ProcessPoolExecutor
from typing import Iterable

import numpy as np


def draw(count: int) -> np.ndarray:
    return np.random.randn(count)


def sample_worker(count: int) -> np.ndarray:
    return draw(count)


def entropy_worker(count: int) -> np.ndarray:
    rng = np.random.default_rng()
    return rng.standard_normal(count)


def fan_out(counts: Iterable[int]) -> None:
    with ProcessPoolExecutor() as pool:
        for count in counts:
            pool.submit(sample_worker, count)
            pool.submit(entropy_worker, count)
