"""Seeded REPRO-NATIVE001 violation: a column view reaches the boundary.

``matrix[:, 0]`` is a strided view — element *i* lives ``4 * 8`` bytes
after element ``i - 1`` — so handing its base pointer to a kernel that
indexes densely reads the whole matrix row-major.  The analysis must
flag the ``data_as`` call because contiguity is not provable.
"""

import ctypes

import numpy as np

P_F64 = ctypes.POINTER(ctypes.c_double)


def column_pointer(rows: int) -> object:
    matrix = np.zeros((rows, 4), dtype=np.float64)
    column = matrix[:, 0]
    return column.ctypes.data_as(P_F64)
