"""Complete cache key: every value-shaping parameter is folded in, so
REPRO-KEY001 must stay silent.  Also exercises the two documented
skips: the bare-param plumbing site and the pass-through writer.
"""

from typing import Dict

import numpy as np


def build_key(circuit: str, rank: int, tolerance: float) -> str:
    return f"kle_{circuit}_r{rank}_tol{tolerance}"


def expensive(circuit: str, rank: int, tolerance: float) -> Dict[str, np.ndarray]:
    return {"eigenvalues": np.full(rank, tolerance)}


def solve(cache: object, circuit: str, rank: int, tolerance: float) -> None:
    key = build_key(circuit, rank, tolerance)
    cache.store(key, expensive(circuit, rank, tolerance))


def plumbing(cache: object, key: str, arrays: Dict[str, np.ndarray]) -> None:
    """The cache layer itself: key arrives as a parameter (skipped)."""
    cache.store(key, arrays)


def passthrough_writer(cache: object, name: str, payload: Dict[str, np.ndarray]) -> None:
    """Stores a caller-computed payload under a caller-chosen name; its
    completeness is a property of the call sites (inventoried, not
    judged)."""
    cache.store(f"placement_{name}", {"xy": payload["xy"]})
