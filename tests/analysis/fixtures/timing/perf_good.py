"""Allocation-hygienic counterpart to ``perf_bad_alloc``.

Buffers are hoisted out of the loops and reused via in-place ops /
``out=``; the only allocations happen once per call, before any loop,
and ``.astype`` runs on the aggregate after the loop.  REPRO-PERF001
must report nothing here.
"""

import numpy as np


def accumulate(blocks: list, num_gates: int) -> np.ndarray:
    total = np.zeros(num_gates)
    staged = np.empty(num_gates)
    for block in blocks:
        np.copyto(staged, block)
        np.add(total, staged, out=total)
    return total


def widen(chunks: list, num_gates: int) -> np.ndarray:
    stacked = np.concatenate(chunks)
    return stacked.astype(np.float64)
