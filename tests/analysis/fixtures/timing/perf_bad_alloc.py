"""Seeded REPRO-PERF001 violations: allocations inside hot-module loops.

This file lives under a ``timing/`` path segment so the rule treats it
as hot.  Each loop body allocates a fresh buffer per iteration —
``np.zeros``, ``np.concatenate`` and ``.astype`` (which copies) — the
exact churn the arena-reuse discipline exists to avoid.
Expected findings: 4 (three in ``accumulate``, one in ``widen``).
"""

import numpy as np


def accumulate(blocks: list, num_gates: int) -> np.ndarray:
    total = np.zeros(num_gates)
    for block in blocks:
        fresh = np.zeros(num_gates)  # fresh buffer every block
        fresh += block
        joined = np.concatenate([fresh, fresh])  # and a copy on top
        total += joined[:num_gates]
    index = 0
    while index < len(blocks):
        staged = np.empty(num_gates)  # same churn, while-loop spelling
        staged[:] = blocks[index]
        total += staged
        index += 1
    return total


def widen(chunks: list) -> list:
    out = []
    for chunk in chunks:
        out.append(chunk.astype(np.float64))  # per-iteration copy
    return out
