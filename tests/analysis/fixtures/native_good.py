"""Contract-clean counterpart to the bad native-boundary fixtures.

Every value reaching ``data_as`` is provably float64 and C-contiguous
— directly, through an explicit ``np.ascontiguousarray`` proof, and
through the same ``send`` helper shape that the bad fixture abuses.
The analysis must produce zero findings here.
"""

import ctypes

import numpy as np

P_F64 = ctypes.POINTER(ctypes.c_double)


def send(buffer: np.ndarray) -> object:
    return buffer.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def ship_direct(count: int) -> object:
    values = np.zeros(count, dtype=np.float64)
    return values.ctypes.data_as(P_F64)


def ship_proven(values: np.ndarray) -> object:
    prepared = np.ascontiguousarray(values, dtype=np.float64)
    return prepared.ctypes.data_as(P_F64)


def ship_helper() -> object:
    data = np.ones(8, dtype=np.float64)
    return send(data)
