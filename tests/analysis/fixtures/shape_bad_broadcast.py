"""Seeded REPRO-SHAPE001 violations: statically-provable mismatches.

Both operand dims are compile-time constants and differ (not via a
length-1 broadcast), so the ops raise ``ValueError`` on every execution
— the checker must flag them without running anything.
"""

import numpy as np


def mismatched_sum() -> np.ndarray:
    a = np.zeros(3)
    b = np.ones(4)
    return a + b


def mismatched_through_helper(scale: float) -> np.ndarray:
    left = np.full(5, scale)
    right = np.zeros(7)
    return left * right
