"""Incomplete cache key: one REPRO-KEY001 hit.

``tolerance`` shapes the stored arrays but never reaches the key, so two
runs with different tolerances share an entry — the second silently
serves results computed under the first's setting.
"""

from typing import Dict

import numpy as np


def build_key(circuit: str, rank: int) -> str:
    return f"kle_{circuit}_r{rank}"


def expensive(circuit: str, rank: int, tolerance: float) -> Dict[str, np.ndarray]:
    return {"eigenvalues": np.full(rank, tolerance)}


def solve(cache: object, circuit: str, rank: int, tolerance: float) -> None:
    key = build_key(circuit, rank)
    cache.store(key, expensive(circuit, rank, tolerance))
