"""Entropy-reaching generator constructions: three REPRO-SEED001 hits.

Covers the direct unseeded spelling, a wall-clock seed laundered through
a local, and entropy arriving through a helper call — the case the
retired per-file rule could never see.
"""

import time

import numpy as np


def fresh_entropy(n: int) -> np.ndarray:
    """Direct unseeded construction."""
    rng = np.random.default_rng()
    return rng.standard_normal(n)


def clock_seeded(n: int) -> np.ndarray:
    """Wall-clock seed through a local variable."""
    seed = int(time.time())
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)


def _entropy_helper() -> int:
    return int(time.time_ns())


def laundered(n: int) -> np.ndarray:
    """Entropy arrives through a helper call, not a literal spelling."""
    rng = np.random.default_rng(_entropy_helper())
    return rng.standard_normal(n)
