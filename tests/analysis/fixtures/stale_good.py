"""A live suppression: the directive matches a real finding.

``np.random.randn`` triggers REPRO-RNG001 on exactly the suppressed
line, so the directive is doing real work and must not be reported as
stale — and the RNG001 finding itself must stay suppressed.
"""

import numpy as np


def legacy_draw(count: int) -> np.ndarray:
    return np.random.randn(count)  # repro-lint: disable=REPRO-RNG001
