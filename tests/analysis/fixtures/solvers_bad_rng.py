"""Unseeded range-finder RNG fixture: what REPRO-SEED001 must flag.

An entropy-seeded sketch makes the randomized eigensolve irreproducible
— no cache key could describe it — so both unseeded spellings here must
each produce one REPRO-SEED001 finding (the seed-flow pass that
subsumed the retired per-file REPRO-RNG002).
"""

import numpy as np


def sketch(n: int, columns: int) -> np.ndarray:
    """Draw a fresh-entropy Gaussian test matrix (forbidden in library code)."""
    rng = np.random.default_rng()
    return rng.standard_normal((n, columns))


def sketch_explicit_none(n: int, columns: int) -> np.ndarray:
    """The explicit-None spelling is just as unreproducible."""
    rng = np.random.default_rng(None)
    return rng.standard_normal((n, columns))
