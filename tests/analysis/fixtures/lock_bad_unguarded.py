"""Unguarded shared state: REPRO-LOCK001 must fire.

``Counter`` owns a lock and is reached from a ``pool.submit`` root, but
``bump`` writes ``_total`` with no lock held while ``total`` reads it
under ``_lock`` — a torn-counter race.
"""

import threading
from concurrent.futures import ThreadPoolExecutor


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0

    def bump(self) -> None:
        self._total += 1

    def total(self) -> int:
        with self._lock:
            return self._total


def worker(counter: Counter) -> None:
    counter.bump()


def run(rounds: int) -> int:
    counter = Counter()
    with ThreadPoolExecutor(max_workers=2) as pool:
        for _ in range(rounds):
            pool.submit(worker, counter)
    return counter.total()
