"""Sanctioned seed-flow shapes REPRO-SEED001/002 must stay silent on.

Branch-exclusive consumption (only one arm runs), SeedSequence spawning
(each consumer gets an independent child), and plain single consumption.
"""

from typing import List

import numpy as np


def single_stream(seed: int, n: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)


def exclusive_arms(seed: int, n: int, antithetic: bool) -> np.ndarray:
    if antithetic:
        rng = np.random.default_rng(seed)
        return -rng.standard_normal(n)
    rng = np.random.default_rng(seed)
    return rng.standard_normal(n)


def spawned_children(seed: int, count: int) -> List[np.random.Generator]:
    root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]
