"""REPRO-KEY001 — cache-key completeness.

Fixture contracts, the live-tree scope assertion, and the meta-test the
issue demands: deleting any single component from the real
``kle_cache_key`` construction in ``solve_kle`` must make the pass fire
— that is the mechanized version of the solver_seed/oversampling proof
PR 8 did by hand.
"""

from pathlib import Path

import pytest

import repro
from repro.analysis import analyze_project_paths
from repro.analysis.cachekey import check_cache_keys, key_sites
from repro.analysis.project import ProjectModel

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(repro.__file__).resolve().parent
GALERKIN = SRC_REPRO / "core" / "galerkin.py"


def test_missing_param_fixture_fires_key001():
    report = analyze_project_paths(
        [FIXTURES / "key_bad_missing_param.py"], select=["REPRO-KEY001"]
    )
    assert [v.rule_id for v in report.violations] == ["REPRO-KEY001"]
    assert "tolerance" in report.violations[0].message


def test_complete_key_and_documented_skips_stay_clean():
    report = analyze_project_paths(
        [FIXTURES / "key_good.py"], select=["REPRO-KEY001"]
    )
    assert report.violations == []


def test_live_tree_is_clean_and_inventory_covers_real_sites():
    report = analyze_project_paths([SRC_REPRO], select=["REPRO-KEY001"])
    rendered = "\n".join(v.format() for v in report.violations)
    assert not report.violations, f"cache-key violations in src:\n{rendered}"

    model = ProjectModel.from_paths([SRC_REPRO])
    paths = {p.replace("\\", "/") for p, _ in key_sites(model)}
    # The pass must at least see the KLE disk-cache store, the placement
    # pass-through writer and the native-kernel module memo.
    for expected in (
        "core/galerkin.py",
        "experiments/common.py",
        "timing/native.py",
    ):
        assert any(p.endswith(expected) for p in paths), (
            f"cache-key pass inspected no site in {expected}"
        )


#: Keyword components of the real kle_cache_key(...) call in solve_kle.
_KEY_COMPONENTS = (
    "num_eigenpairs",
    "method",
    "oversampling",
    "power_iterations",
    "solver_seed",
)


@pytest.mark.parametrize("component", _KEY_COMPONENTS)
def test_deleting_any_kle_cache_key_component_fires(tmp_path, component):
    source = GALERKIN.read_text(encoding="utf-8")
    # Surgically drop the component from the kle_cache_key(...) call in
    # solve_kle (and only there — solver.solve passes the same kwargs).
    start = source.index("key = kle_cache_key(")
    end = source.index(")", start)
    block = source[start:end]
    mutated_block = block.replace(f"{component}={component},", "", 1)
    assert mutated_block != block, f"could not drop {component}= from key"
    mutated = source[:start] + mutated_block + source[end:]
    mutant = tmp_path / "galerkin.py"
    mutant.write_text(mutated, encoding="utf-8")

    model = ProjectModel.from_paths([mutant])
    found = check_cache_keys(model)
    assert any(
        v.rule_id == "REPRO-KEY001" and component in v.message for v in found
    ), (
        f"dropping {component} from kle_cache_key went undetected: "
        f"{[v.message for v in found]}"
    )


def test_unmutated_galerkin_is_clean_standalone():
    model = ProjectModel.from_paths([GALERKIN])
    assert check_cache_keys(model) == []
