"""Tests for the whole-program project model and name resolution."""

from pathlib import Path

import repro
from repro.analysis.project import (
    ProjectModel,
    Resolver,
    function_parameters,
)

SRC_REPRO = Path(repro.__file__).resolve().parent


def _write_project(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "__init__.py").write_text('"""Pkg."""\n')
    (tmp_path / "pkg" / "alpha.py").write_text(
        '"""Alpha."""\n'
        "import numpy as np\n"
        "from pkg.beta import helper\n"
        "from . import beta\n\n\n"
        "LIMIT = 4\n\n\n"
        "def top(x: int) -> int:\n"
        "    return helper(x)\n\n\n"
        "class Engine:\n"
        "    def __init__(self, n: int) -> None:\n"
        "        self.n = n\n\n"
        "    def run(self) -> int:\n"
        "        return self.n\n"
    )
    (tmp_path / "pkg" / "beta.py").write_text(
        '"""Beta."""\n\n\n'
        "def helper(x: int) -> int:\n"
        "    def inner(y: int) -> int:\n"
        "        return y\n"
        "    return inner(x)\n"
    )
    return tmp_path / "pkg"


def test_package_module_naming(tmp_path):
    model = ProjectModel.from_paths([_write_project(tmp_path)])
    assert set(model.modules) == {"pkg", "pkg.alpha", "pkg.beta"}


def test_symbol_table_covers_methods_and_nested_defs(tmp_path):
    model = ProjectModel.from_paths([_write_project(tmp_path)])
    assert "pkg.alpha.top" in model.functions
    assert "pkg.alpha.Engine.run" in model.functions
    assert "pkg.beta.helper.inner" in model.functions
    info = model.functions["pkg.alpha.Engine.run"]
    assert info.is_method and info.class_qualname == "pkg.alpha.Engine"
    nested = model.functions["pkg.beta.helper.inner"]
    assert nested.enclosing == "pkg.beta.helper"


def test_resolver_follows_imports_and_aliases(tmp_path):
    model = ProjectModel.from_paths([_write_project(tmp_path)])
    alpha = model.modules["pkg.alpha"]
    resolver = Resolver(model, alpha)
    assert resolver.resolve_target("helper") == "pkg.beta.helper"
    assert resolver.resolve_target("beta.helper") == "pkg.beta.helper"
    assert resolver.resolve_target("np.float64") == "numpy.float64"
    # Construction resolves to the class's __init__.
    assert (
        model.lookup_callable(resolver.resolve_target("Engine"))
        == "pkg.alpha.Engine.__init__"
    )


def test_methods_named_fallback(tmp_path):
    model = ProjectModel.from_paths([_write_project(tmp_path)])
    names = [info.qualname for info in model.methods_named("run")]
    assert names == ["pkg.alpha.Engine.run"]
    assert model.methods_named("helper") == []  # not a method


def test_unparseable_files_are_skipped(tmp_path):
    (tmp_path / "broken.py").write_text("def broken(:\n")
    (tmp_path / "fine.py").write_text("def fine() -> int:\n    return 1\n")
    model = ProjectModel.from_paths([tmp_path])
    assert set(model.modules) == {"fine"}


def test_function_parameters_excludes_varargs():
    import ast

    node = ast.parse(
        "def f(a, b, /, c, *args, d, **kwargs):\n    pass\n"
    ).body[0]
    assert function_parameters(node) == ("a", "b", "c", "d")


def test_src_repro_model_contains_the_native_boundary():
    model = ProjectModel.from_paths([SRC_REPRO])
    assert "repro.timing.native" in model.modules
    assert "repro.timing.native.load_kernel" in model.functions
    native = model.modules["repro.timing.native"]
    assert native.imports.get("ctypes") == "ctypes"
