"""The analysis gate applied to the randomized-eigensolver subsystem.

``repro.solvers`` is the library's one deliberately stochastic numerical
subsystem, so it gets the same standalone gate treatment as the service
layer — file-level clean, clean under the full project gate with no
other module's context to lean on — plus a pinned REPRO-SEED001
contract (the seed-flow successor of the retired per-file REPRO-RNG002):
the range finder's generator must be derived from an explicit seed
(through ``spawn_seed_sequences``), and the unseeded spelling of the
same sketch code must actually fire the rule.
"""

from pathlib import Path

import repro
from repro.analysis import analyze_paths, analyze_project_paths

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(repro.__file__).resolve().parent
SOLVERS_DIR = SRC_REPRO / "solvers"


def test_solvers_package_is_file_level_clean():
    found = analyze_paths([SOLVERS_DIR])
    rendered = "\n".join(v.format() for v in found)
    assert not found, f"repro-lint violations in repro.solvers:\n{rendered}"


def test_solvers_package_passes_the_project_gate_standalone():
    # The solver files must hold up even when analyzed as their own
    # project scope (no other module's context to lean on).
    report = analyze_project_paths([SOLVERS_DIR])
    rendered = "\n".join(v.format() for v in report.violations)
    assert not report.violations, f"gate violations:\n{rendered}"
    assert not report.has_syntax_errors


def test_seeded_range_finder_fixture_is_rng_clean():
    report = analyze_project_paths(
        [FIXTURES / "solvers_good_rng.py"], select=["REPRO-SEED001"]
    )
    rendered = "\n".join(v.format() for v in report.violations)
    assert not report.violations, f"seeded sketch flagged:\n{rendered}"


def test_unseeded_range_finder_fixture_fires_seed001():
    report = analyze_project_paths(
        [FIXTURES / "solvers_bad_rng.py"], select=["REPRO-SEED001"]
    )
    assert [v.rule_id for v in report.violations] == ["REPRO-SEED001"] * 2
