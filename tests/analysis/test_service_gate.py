"""The analysis gate applied to the service layer specifically.

``repro.service`` is the library's most concurrency-heavy package, so it
must not just be violation-free under the full 12-rule gate — the
concurrency analyses (REPRO-PAR001/002) must actually *see* its worker
fan-out.  The scheduler submits a module-level entry point precisely so
the submit-root finder resolves it; these tests pin that contract so a
refactor to an unanalyzable fan-out (lambda, bound method on an opaque
receiver) fails loudly instead of silently shrinking gate coverage.
"""

from pathlib import Path

import repro
from repro.analysis import analyze_paths, analyze_project_paths
from repro.analysis.concurrency import _find_submit_roots, check_concurrency
from repro.analysis.project import ProjectModel

SRC_REPRO = Path(repro.__file__).resolve().parent
SERVICE_DIR = SRC_REPRO / "service"

WORKER_ROOT = "repro.service.scheduler._run_worker"


def test_scheduler_fan_out_is_a_visible_submit_root():
    model = ProjectModel.from_paths([SRC_REPRO])
    roots = {root.qualname for root in _find_submit_roots(model)}
    assert WORKER_ROOT in roots, (
        "the scheduler's pool.submit(_run_worker, ...) is no longer "
        "resolvable by REPRO-PAR001/002; keep the worker entry point "
        f"module-level (found roots: {sorted(roots)})"
    )


def test_worker_call_graph_is_concurrency_clean():
    model = ProjectModel.from_paths([SRC_REPRO])
    found = [
        violation
        for violation in check_concurrency(model)
        if "service" in str(violation.path)
    ]
    rendered = "\n".join(v.format() for v in found)
    assert not found, f"concurrency violations in repro.service:\n{rendered}"


def test_service_package_is_file_level_clean():
    found = analyze_paths([SERVICE_DIR])
    rendered = "\n".join(v.format() for v in found)
    assert not found, f"repro-lint violations in repro.service:\n{rendered}"


def test_service_package_passes_the_project_gate_standalone():
    # The service files must hold up even when analyzed as their own
    # project scope (no other module's context to lean on).
    report = analyze_project_paths([SERVICE_DIR])
    rendered = "\n".join(v.format() for v in report.violations)
    assert not report.violations, f"gate violations:\n{rendered}"
    assert not report.has_syntax_errors
