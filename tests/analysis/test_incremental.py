"""Incremental gate cache: reuse, dependency invalidation, quarantine.

The gate memoizes per-file findings on (content sha, catalog version,
import-closure fingerprint) and whole-program findings on the global
tree fingerprint.  These tests pin the three correctness properties the
keying must provide: a warm re-run is bitwise identical with zero
re-analysis, touching one file re-analyzes exactly that file plus its
import-graph dependents, and a poisoned cache entry is quarantined and
regenerated transparently.
"""

import json
from pathlib import Path

from repro.analysis import LINT_CACHE_NAME, analyze_project_paths
from repro.utils.artifact_cache import cache_stats

HELPER = '''\
import numpy as np


def scale(values: np.ndarray) -> np.ndarray:
    return values * 2.0
'''

CONSUMER = '''\
import numpy as np

from helper import scale


def run(values: np.ndarray) -> np.ndarray:
    return scale(values)
'''

# Lives under a timing/ segment, allocates inside a loop: one stable
# REPRO-PERF001 finding so report identity is checked on real content.
HOT_STANDALONE = '''\
import numpy as np


def churn(blocks: list, n: int) -> np.ndarray:
    total = np.zeros(n)
    for block in blocks:
        total += np.zeros(n) + block
    return total
'''


def make_project(tmp_path: Path) -> Path:
    project = tmp_path / "proj"
    (project / "timing").mkdir(parents=True)
    (project / "helper.py").write_text(HELPER, encoding="utf-8")
    (project / "consumer.py").write_text(CONSUMER, encoding="utf-8")
    (project / "timing" / "standalone.py").write_text(
        HOT_STANDALONE, encoding="utf-8"
    )
    return project


def run_gate(project: Path, cache: Path, **kwargs):
    return analyze_project_paths(
        [project], cache_dir=str(cache), **kwargs
    )


def payload(report) -> str:
    return json.dumps(
        [v.to_dict() for v in report.violations], sort_keys=True
    )


def test_warm_rerun_is_bitwise_identical_with_zero_reanalysis(tmp_path):
    project = make_project(tmp_path)
    cache = tmp_path / "cache"

    cold = run_gate(project, cache)
    assert len(cold.reanalyzed_paths) == 3
    assert not cold.project_from_cache
    assert any(
        v.rule_id == "REPRO-PERF001" for v in cold.violations
    ), "the seeded hot-loop allocation must be found"

    warm = run_gate(project, cache)
    assert warm.reanalyzed_paths == []
    assert warm.project_from_cache
    assert payload(warm) == payload(cold)

    stats = cache_stats(LINT_CACHE_NAME)[LINT_CACHE_NAME]
    assert stats["hits"] >= 3


def test_touching_one_file_reanalyzes_only_it_and_its_dependents(tmp_path):
    project = make_project(tmp_path)
    cache = tmp_path / "cache"
    run_gate(project, cache)

    helper = project / "helper.py"
    helper.write_text(
        HELPER + "\n# touched\n", encoding="utf-8"
    )
    after = run_gate(project, cache)
    # consumer.py imports helper.py, so its cross-file facts may have
    # changed; standalone.py is unrelated and must come from cache.
    assert sorted(Path(p).name for p in after.reanalyzed_paths) == [
        "consumer.py",
        "helper.py",
    ]
    # The tree fingerprint changed, so whole-program findings recompute.
    assert not after.project_from_cache


def test_poisoned_cache_entry_is_quarantined_and_regenerated(tmp_path):
    project = make_project(tmp_path)
    cache = tmp_path / "cache"
    cold = run_gate(project, cache)

    entries = sorted(cache.glob("pf-*.npz"))
    assert len(entries) == 3
    poisoned = entries[0]
    poisoned.write_bytes(b"garbage, not a cache entry")

    recovered = run_gate(project, cache)
    assert len(recovered.reanalyzed_paths) == 1
    assert payload(recovered) == payload(cold)
    # The bad entry moved aside for post-mortem and a fresh one exists.
    assert (poisoned.parent / (poisoned.name + ".corrupt")).is_file()
    assert poisoned.is_file()
    stats = cache_stats(LINT_CACHE_NAME)[LINT_CACHE_NAME]
    assert stats["corruptions"] >= 1
