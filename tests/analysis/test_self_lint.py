"""The gate applied to ourselves: ``src/repro`` must be violation-free.

This is the acceptance criterion for the whole static-analysis
subsystem — every rule active, zero findings, and the live C-ABI
contract intact.  A new violation anywhere in the library fails this
test with the exact ``path:line:col`` the CLI would print.
"""

from pathlib import Path

import repro
from repro.analysis import (
    all_rules,
    analyze_paths,
    analyze_project_paths,
    check_c_abi,
    rule_catalog,
)

SRC_REPRO = Path(repro.__file__).resolve().parent


def test_rule_floor():
    assert len(all_rules()) >= 7


def test_catalog_floor_including_project_checks():
    ids = {entry["id"] for entry in rule_catalog()}
    assert len(ids) >= 19
    assert {
        "REPRO-NATIVE001",
        "REPRO-PAR001",
        "REPRO-PAR002",
        "REPRO-LINT001",
        "REPRO-PERF001",
        "REPRO-SHAPE001",
        "REPRO-SHAPE002",
    } <= ids


def test_src_repro_is_violation_free():
    found = analyze_paths([SRC_REPRO])
    rendered = "\n".join(v.format() for v in found)
    assert not found, f"repro-lint violations in src/repro:\n{rendered}"


def test_src_repro_passes_the_full_project_gate():
    report = analyze_project_paths([SRC_REPRO])
    rendered = "\n".join(v.format() for v in report.violations)
    assert not report.violations, f"gate violations in src/repro:\n{rendered}"
    assert not report.has_syntax_errors


def test_live_c_abi_contract_holds():
    mismatches = check_c_abi()
    rendered = "\n".join(m.format() for m in mismatches)
    assert not mismatches, f"C-ABI skew:\n{rendered}"
