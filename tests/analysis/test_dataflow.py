"""Tests for the REPRO-NATIVE001 array-contract dataflow analysis."""

from pathlib import Path

import repro
from repro.analysis import analyze_project_paths
from repro.analysis.dataflow import (
    ArrayFact,
    NATIVE_RULE_ID,
    check_native_boundary,
    join,
)
from repro.analysis.project import ProjectModel

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(repro.__file__).resolve().parent


def _native_violations(*files):
    report = analyze_project_paths(
        [FIXTURES / name for name in files], select={NATIVE_RULE_ID}
    )
    return [v for v in report.violations if v.rule_id == NATIVE_RULE_ID]


def test_fact_join_degrades_to_unknown_components():
    a = ArrayFact(dtype="float64", contiguous=True)
    b = ArrayFact(dtype="int64", contiguous=True)
    merged = join(a, b)
    assert merged == ArrayFact(dtype=None, contiguous=True)
    assert join(a, a) == a


def test_noncontiguous_column_view_is_flagged():
    found = _native_violations("native_bad_slice.py")
    assert len(found) == 1
    violation = found[0]
    assert violation.line == 19
    assert "unknown layout" in violation.message
    assert "ascontiguousarray" in violation.message


def test_dtype_drift_is_reported_at_the_call_site():
    found = _native_violations("native_bad_dtype_helper.py")
    assert len(found) == 1
    violation = found[0]
    # Reported where the int64 array enters send(), not inside send().
    assert violation.line == 21
    assert "inside send()" in violation.message
    assert "int64" in violation.message


def test_proven_contracts_produce_no_findings():
    assert _native_violations("native_good.py") == []


def test_all_three_fixtures_together():
    found = _native_violations(
        "native_bad_slice.py", "native_bad_dtype_helper.py", "native_good.py"
    )
    assert {Path(v.path).name for v in found} == {
        "native_bad_slice.py",
        "native_bad_dtype_helper.py",
    }


def test_suppression_silences_the_boundary(tmp_path):
    source = (FIXTURES / "native_bad_slice.py").read_text()
    source = source.replace(
        "return column.ctypes.data_as(P_F64)",
        "return column.ctypes.data_as(P_F64)  "
        "# repro-lint: disable=REPRO-NATIVE001",
    )
    target = tmp_path / "suppressed.py"
    target.write_text(source)
    report = analyze_project_paths([target], select={NATIVE_RULE_ID})
    assert report.violations == []


def test_src_repro_boundary_is_contract_clean():
    model = ProjectModel.from_paths([SRC_REPRO])
    found = check_native_boundary(model)
    rendered = "\n".join(v.format() for v in found)
    assert not found, f"unproven native contracts:\n{rendered}"
