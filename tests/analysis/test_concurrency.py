"""Tests for the REPRO-PAR001/002 concurrency-safety analyses."""

from pathlib import Path

from repro.analysis import analyze_project_paths
from repro.analysis.concurrency import GLOBAL_RULE_ID, RNG_RULE_ID

FIXTURES = Path(__file__).parent / "fixtures"
PAR_IDS = {GLOBAL_RULE_ID, RNG_RULE_ID}


def _par_violations(*files):
    report = analyze_project_paths(
        [FIXTURES / name for name in files], select=PAR_IDS
    )
    return report.violations


def test_global_write_below_the_submitted_function_is_flagged():
    found = _par_violations("par_bad_global.py")
    assert [v.rule_id for v in found] == [GLOBAL_RULE_ID]
    violation = found[0]
    # The .append on RESULTS sits inside record(), one call deep.
    assert violation.line == 16
    assert "'RESULTS'" in violation.message
    assert "worker -> record" in violation.message


def test_rng_reached_directly_and_through_helpers():
    found = _par_violations("par_bad_rng.py")
    assert [v.rule_id for v in found] == [RNG_RULE_ID, RNG_RULE_ID]
    messages = {v.line: v.message for v in found}
    assert "np.random.randn" in messages[15]
    assert "sample_worker -> draw" in messages[15]
    assert "default_rng() without a seed" in messages[23]


def test_seeded_workers_produce_no_findings():
    assert _par_violations("par_good.py") == []


def test_justified_suppression_is_honored(tmp_path):
    source = (FIXTURES / "par_bad_global.py").read_text()
    source = source.replace(
        "    RESULTS.append(value)",
        "    RESULTS.append(value)  # repro-lint: disable=REPRO-PAR001",
    )
    target = tmp_path / "suppressed.py"
    target.write_text(source)
    report = analyze_project_paths([target], select=PAR_IDS)
    assert report.violations == []


def test_select_can_narrow_to_one_concurrency_rule():
    report = analyze_project_paths(
        [FIXTURES / "par_bad_global.py", FIXTURES / "par_bad_rng.py"],
        select={RNG_RULE_ID},
    )
    assert {v.rule_id for v in report.violations} == {RNG_RULE_ID}
