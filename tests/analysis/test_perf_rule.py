"""REPRO-PERF001: allocation churn inside hot-module loops."""

from pathlib import Path

from repro.analysis import analyze_project_paths, analyze_source

FIXTURES = Path(__file__).parent / "fixtures"
PERF_RULE_ID = "REPRO-PERF001"


def perf_violations(fixture: str):
    report = analyze_project_paths(
        [FIXTURES / "timing" / fixture],
        select={PERF_RULE_ID},
        use_cache=False,
    )
    return [v for v in report.violations if v.rule_id == PERF_RULE_ID]


def test_loop_allocations_in_a_hot_module_are_flagged():
    found = perf_violations("perf_bad_alloc.py")
    assert [v.line for v in found] == [16, 18, 22, 32]
    spellings = [v.message.split("(...)")[0] for v in found]
    assert spellings == [
        "np.zeros",
        "np.concatenate",
        "np.empty",
        ".astype",
    ]
    for violation in found:
        assert "every iteration of the enclosing" in violation.message


def test_hoisted_allocations_are_clean():
    assert perf_violations("perf_good.py") == []


def test_the_same_code_outside_hot_modules_is_not_flagged():
    source = (FIXTURES / "timing" / "perf_bad_alloc.py").read_text(
        encoding="utf-8"
    )
    found = analyze_source(source, "tests/analysis/fixtures/relocated.py")
    assert not [v for v in found if v.rule_id == PERF_RULE_ID]
