"""Tests for the AST rule engine: registry, dispatch, suppressions."""

import ast

import pytest

from repro.analysis.engine import (
    SYNTAX_ERROR_RULE_ID,
    Rule,
    Violation,
    all_rules,
    analyze_paths,
    analyze_source,
    iter_python_files,
    register_rule,
    rule_catalog,
)


class NameCounterRule(Rule):
    """Test double: flags every ``Name`` node called ``forbidden``."""

    id = "TEST-NAME001"
    title = "forbidden name"
    rationale = "test rule"
    interests = (ast.Name,)

    def visit(self, node, ctx):
        if node.id == "forbidden":
            return [self.violation(ctx, node, "name is forbidden")]
        return ()


class WholeFileRule(Rule):
    """Test double exercising begin_file/finish_file state."""

    id = "TEST-FILE001"
    title = "whole-file rule"
    rationale = "test rule"
    interests = (ast.FunctionDef,)

    def begin_file(self, ctx):
        self.count = 0

    def visit(self, node, ctx):
        self.count += 1
        return ()

    def finish_file(self, ctx):
        if self.count > 1:
            return [self.violation(ctx, ctx.tree, f"{self.count} functions")]
        return ()


def run(source, **kwargs):
    kwargs.setdefault("rules", [NameCounterRule(), WholeFileRule()])
    return analyze_source(source, "demo.py", **kwargs)


# ----------------------------------------------------------------------
# Core dispatch.
# ----------------------------------------------------------------------
def test_visitor_dispatch_hits_interested_rule():
    found = run("x = forbidden\n")
    assert [v.rule_id for v in found] == ["TEST-NAME001"]
    assert found[0].line == 1
    assert found[0].path == "demo.py"


def test_clean_source_yields_nothing():
    assert run("x = 1\n") == []


def test_violations_sorted_by_location():
    found = run("a = forbidden\nb = 2\nc = forbidden\n")
    assert [v.line for v in found] == [1, 3]


def test_whole_file_rule_sees_every_function():
    source = "def a():\n    pass\n\ndef b():\n    pass\n"
    found = run(source)
    assert [v.rule_id for v in found] == ["TEST-FILE001"]
    assert "2 functions" in found[0].message


def test_fresh_state_per_analysis_run():
    source = "def a():\n    pass\n"
    # One function per run: finish_file must not accumulate across calls.
    assert run(source) == []
    assert run(source) == []


# ----------------------------------------------------------------------
# Suppressions.
# ----------------------------------------------------------------------
def test_line_suppression_silences_one_rule():
    found = run("x = forbidden  # repro-lint: disable=TEST-NAME001\n")
    assert found == []


def test_line_suppression_is_line_scoped():
    source = (
        "x = forbidden  # repro-lint: disable=TEST-NAME001\n"
        "y = forbidden\n"
    )
    found = run(source)
    assert [v.line for v in found] == [2]


def test_line_suppression_multiple_ids():
    source = "x = forbidden  # repro-lint: disable=OTHER,TEST-NAME001\n"
    assert run(source) == []


def test_line_suppression_other_rule_keeps_finding():
    source = "x = forbidden  # repro-lint: disable=TEST-OTHER\n"
    assert [v.rule_id for v in run(source)] == ["TEST-NAME001"]


def test_file_suppression_silences_everywhere():
    source = (
        "# repro-lint: disable-file=TEST-NAME001\n"
        "x = forbidden\n"
        "y = forbidden\n"
    )
    assert run(source) == []


def test_all_wildcard_suppresses_every_rule():
    source = "# repro-lint: disable-file=all\nx = forbidden\n"
    assert run(source) == []


# ----------------------------------------------------------------------
# Syntax errors.
# ----------------------------------------------------------------------
def test_unparseable_file_is_one_loud_violation():
    found = run("def broken(:\n")
    assert len(found) == 1
    assert found[0].rule_id == SYNTAX_ERROR_RULE_ID
    assert "does not parse" in found[0].message


# ----------------------------------------------------------------------
# Select / ignore.
# ----------------------------------------------------------------------
def test_select_runs_only_named_rules():
    source = "def a():\n    pass\n\ndef b():\n    x = forbidden\n"
    found = run(source, select=["TEST-FILE001"])
    assert [v.rule_id for v in found] == ["TEST-FILE001"]


def test_ignore_drops_named_rules():
    source = "x = forbidden\n"
    assert run(source, ignore=["TEST-NAME001"]) == []


def test_select_unknown_rule_id_raises():
    with pytest.raises(ValueError, match="unknown rule ids"):
        run("x = 1\n", select=["NO-SUCH-RULE"])


# ----------------------------------------------------------------------
# Registry.
# ----------------------------------------------------------------------
def test_project_rules_registered_and_catalogued():
    rules = all_rules()
    ids = [rule.id for rule in rules]
    assert ids == sorted(ids)
    assert len(ids) >= 6  # the issue's floor on active project rules
    catalog = rule_catalog()
    catalog_ids = [entry["id"] for entry in catalog]
    assert catalog_ids == sorted(catalog_ids)
    # The catalog covers every per-file rule plus the whole-program
    # project checks (REPRO-NATIVE001, REPRO-PAR001/002, REPRO-LINT001).
    assert set(catalog_ids) >= set(ids)
    for entry in catalog:
        assert entry["title"]
        assert entry["rationale"]


def test_register_rule_requires_id():
    class NoId(Rule):
        id = ""

    with pytest.raises(ValueError, match="has no id"):
        register_rule(NoId)


def test_register_rule_rejects_duplicate_id():
    class Duplicate(Rule):
        id = "REPRO-RNG001"  # collides with the real project rule

    with pytest.raises(ValueError, match="duplicate rule id"):
        register_rule(Duplicate)


# ----------------------------------------------------------------------
# File discovery.
# ----------------------------------------------------------------------
def test_iter_python_files_walks_and_skips(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.py").write_text("x = 1\n")
    (tmp_path / ".hidden").mkdir()
    (tmp_path / ".hidden" / "skip.py").write_text("x = 1\n")
    (tmp_path / "top.py").write_text("y = 2\n")
    found = sorted(p.name for p in iter_python_files([tmp_path]))
    assert found == ["mod.py", "top.py"]


def test_iter_python_files_accepts_single_file(tmp_path):
    target = tmp_path / "one.py"
    target.write_text("x = 1\n")
    assert list(iter_python_files([target])) == [target]


def test_iter_python_files_missing_path_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        list(iter_python_files([tmp_path / "nope"]))


def test_analyze_paths_aggregates(tmp_path):
    (tmp_path / "a.py").write_text("x = forbidden\n")
    (tmp_path / "b.py").write_text("y = forbidden\n")
    found = analyze_paths([tmp_path], rules=[NameCounterRule()])
    assert [v.path for v in found] == [
        str(tmp_path / "a.py"),
        str(tmp_path / "b.py"),
    ]


# ----------------------------------------------------------------------
# Violation rendering.
# ----------------------------------------------------------------------
def test_violation_format_and_dict():
    v = Violation(path="p.py", line=3, col=4, rule_id="X-1", message="msg")
    assert v.format() == "p.py:3:4: X-1 msg"
    assert v.to_dict() == {
        "path": "p.py",
        "line": 3,
        "col": 4,
        "rule": "X-1",
        "message": "msg",
    }
