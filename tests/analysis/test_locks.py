"""REPRO-LOCK001/002 — lock-discipline pass and chain-aware suppression.

Covers the fixture contracts for both rules, the live-tree scope
assertions (the pass must see the real service/timing classes that own
locks, and must find real worker roots to reach them from), and the
chain-aware suppression semantics the whole-program gate applies to
multi-file findings.
"""

from pathlib import Path

import repro
from repro.analysis import analyze_project_paths
from repro.analysis.locks import lock_classes, worker_roots
from repro.analysis.project import ProjectModel

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(repro.__file__).resolve().parent

LOCK_SELECT = ["REPRO-LOCK001", "REPRO-LOCK002"]


def _gate(fixture, select=LOCK_SELECT):
    report = analyze_project_paths([FIXTURES / fixture], select=list(select))
    return report.violations


def test_unguarded_write_fires_lock001_with_reachability_chain():
    found = _gate("lock_bad_unguarded.py")
    assert [(v.rule_id, v.line) for v in found] == [("REPRO-LOCK001", 18)]
    # The finding must explain *why* the class is considered shared:
    # a chain from a worker root down to the racy method.
    assert found[0].chain


def test_inconsistent_acquisition_order_fires_lock002():
    found = _gate("lock_bad_order.py")
    assert [(v.rule_id, v.line) for v in found] == [("REPRO-LOCK002", 25)]
    # The message names the cycle over the lock tokens involved.
    assert "Ledger._a" in found[0].message
    assert "Ledger._b" in found[0].message


def test_disciplined_class_stays_clean():
    # Locked accesses, double-checked lazy init, consistent ordering.
    assert _gate("lock_good.py") == []


def test_chain_line_suppression_is_honored_and_stale_one_reported():
    report = analyze_project_paths(
        [FIXTURES / "lock_chain_suppressed.py"],
        select=LOCK_SELECT + ["REPRO-LINT001"],
    )
    found = [(v.rule_id, v.line) for v in report.violations]
    # The LOCK001 finding on the unlocked read is suppressed by the
    # directive at its chain line (the locked write); the directive on
    # the unrelated ``label`` read matches nothing and is stale.
    assert found == [("REPRO-LINT001", 29)]


def test_live_tree_is_clean_and_pass_sees_real_lock_owners():
    report = analyze_project_paths([SRC_REPRO], select=LOCK_SELECT)
    rendered = "\n".join(v.format() for v in report.violations)
    assert not report.violations, f"lock violations in src:\n{rendered}"

    model = ProjectModel.from_paths([SRC_REPRO])
    owners = lock_classes(model)
    for expected in (
        "Scheduler",
        "ResultStream",
        "FaultInjector",
        "ArtifactRegistry",
        "STAEngine",
    ):
        assert any(owner.endswith("." + expected) for owner in owners), (
            f"lock pass no longer sees {expected}; owners={owners}"
        )

    roots = worker_roots(model)
    root_paths = {root.path.replace("\\", "/") for root in roots}
    assert any("service/" in p for p in root_paths), (
        "no worker roots discovered in the service layer — reachability "
        "would silently mark every class thread-confined"
    )
