"""Exit-code and output-format tests for ``python -m repro.analysis``."""

import json

import pytest

from repro.analysis.cli import main

CLEAN_SOURCE = '"""Module."""\n\n\ndef f(x: int) -> int:\n    return x\n'
BROKEN_SOURCE = (
    '"""Module."""\n'
    "import numpy as np\n\n\n"
    "def f(x):\n"
    "    np.random.seed(0)\n"
    "    return x == 0.25\n"
)


@pytest.fixture()
def clean_tree(tmp_path):
    (tmp_path / "mod.py").write_text(CLEAN_SOURCE)
    return tmp_path


@pytest.fixture()
def broken_tree(tmp_path):
    (tmp_path / "mod.py").write_text(BROKEN_SOURCE)
    return tmp_path


def test_clean_tree_exits_zero(clean_tree, capsys):
    assert main([str(clean_tree), "--no-cabi"]) == 0
    out = capsys.readouterr().out
    assert "repro-lint: clean (1 file(s) checked)" in out


def test_violations_exit_one(broken_tree, capsys):
    assert main([str(broken_tree), "--no-cabi"]) == 1
    out = capsys.readouterr().out
    assert "REPRO-RNG001" in out
    assert "REPRO-FLOAT001" in out
    assert "REPRO-TYPE001" in out


def test_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "nope"), "--no-cabi"]) == 2
    assert "error" in capsys.readouterr().err


def test_unknown_select_id_is_usage_error(clean_tree, capsys):
    code = main([str(clean_tree), "--no-cabi", "--select", "NO-SUCH"])
    assert code == 2
    assert "unknown rule ids" in capsys.readouterr().err


def test_select_narrows_to_one_rule(broken_tree, capsys):
    code = main(
        [str(broken_tree), "--no-cabi", "--select", "REPRO-FLOAT001"]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "REPRO-FLOAT001" in out
    assert "REPRO-RNG001" not in out


def test_ignore_drops_rules(broken_tree, capsys):
    code = main(
        [
            str(broken_tree),
            "--no-cabi",
            "--ignore",
            "REPRO-RNG001,REPRO-FLOAT001,REPRO-TYPE001",
        ]
    )
    assert code == 0
    assert "clean" in capsys.readouterr().out


def test_json_report_is_machine_readable(broken_tree, capsys):
    assert main([str(broken_tree), "--no-cabi", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 1
    assert payload["summary"]["clean"] is False
    assert payload["cabi"]["checked"] is False
    rules_hit = {v["rule"] for v in payload["violations"]}
    assert "REPRO-RNG001" in rules_hit
    assert {entry["id"] for entry in payload["rules"]} >= rules_hit


def test_json_clean_report(clean_tree, capsys):
    assert main([str(clean_tree), "--no-cabi", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["clean"] is True
    assert payload["violations"] == []


def test_list_rules_prints_catalog(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "REPRO-RNG001",
        "REPRO-CACHE001",
        "REPRO-FLOAT001",
        "REPRO-DEF001",
        "REPRO-EXC001",
        "REPRO-TIME001",
        "REPRO-TYPE001",
        "REPRO-SEED001",
        "REPRO-SEED002",
        "REPRO-KEY001",
        "REPRO-LOCK001",
        "REPRO-LOCK002",
    ):
        assert rule_id in out
    assert "REPRO-RNG002" not in out  # retired into REPRO-SEED001


@pytest.fixture()
def mixed_tree(tmp_path):
    """One unparseable file next to one with ordinary violations."""
    (tmp_path / "mod.py").write_text(BROKEN_SOURCE)
    (tmp_path / "broken.py").write_text('"""Doc."""\n\ndef oops(:\n')
    return tmp_path


def test_mixed_tree_exits_two(mixed_tree, capsys):
    # An unparseable file means the report is incomplete — that is an
    # infrastructure failure (exit 2), not a mere finding (exit 1).
    assert main([str(mixed_tree), "--no-cabi"]) == 2
    out = capsys.readouterr().out
    assert "REPRO-SYNTAX" in out
    assert "REPRO-RNG001" in out


def test_mixed_tree_json_is_valid_and_complete(mixed_tree, capsys):
    assert main([str(mixed_tree), "--no-cabi", "--json"]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["files_checked"] == 2
    rules_hit = {v["rule"] for v in payload["violations"]}
    assert "REPRO-SYNTAX" in rules_hit
    assert "REPRO-RNG001" in rules_hit


def test_no_project_skips_whole_program_checks(tmp_path, capsys):
    (tmp_path / "mod.py").write_text(
        '"""Doc."""\n\n'
        "VALUE = 1  # repro-lint: disable=REPRO-RNG001\n"
    )
    assert main([str(tmp_path), "--no-cabi"]) == 1
    assert "REPRO-LINT001" in capsys.readouterr().out
    assert main([str(tmp_path), "--no-cabi", "--no-project"]) == 0
    assert "clean" in capsys.readouterr().out


def test_list_rules_includes_project_checks(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "REPRO-NATIVE001",
        "REPRO-PAR001",
        "REPRO-PAR002",
        "REPRO-LINT001",
    ):
        assert rule_id in out


def test_explain_covers_every_registered_rule(capsys):
    from repro.analysis.engine import rule_catalog

    catalog = rule_catalog()
    assert catalog, "rule catalog is empty"
    for entry in catalog:
        assert main(["--explain", entry["id"]]) == 0
        out = capsys.readouterr().out
        assert entry["id"] in out
        assert entry["title"] in out
        # Every rule ships a minimal violating example.
        assert "example" in out.lower()


def test_explain_unknown_rule_is_usage_error(capsys):
    assert main(["--explain", "REPRO-NOPE999"]) == 2
    err = capsys.readouterr().err
    assert "REPRO-NOPE999" in err
    assert "REPRO-RNG001" in err  # lists the known ids


def test_cabi_only_skips_lint(broken_tree, capsys):
    # Lint violations in the tree are ignored; only the (passing) live
    # ABI check decides the exit code.
    assert main([str(broken_tree), "--cabi-only"]) == 0
    out = capsys.readouterr().out
    assert "REPRO-RNG001" not in out


def test_cabi_check_runs_by_default(clean_tree, capsys):
    assert main([str(clean_tree)]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
