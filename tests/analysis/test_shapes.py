"""REPRO-SHAPE001/002: symbolic shape lattice + native buffer obligations.

Fixture-driven coverage of the broadcast checker and the kernel-boundary
size prover, the live-tree obligation inventory (every unprovable pin
argument reported distinctly, and suppressed with a hand proof), and the
meta-mutation tests: re-introducing the historical scratch/arena sizing
bugs into a copy of ``repro/timing`` must produce SHAPE002 findings at
the offending allocation.
"""

import shutil
from pathlib import Path

import pytest

import repro
from repro.analysis import analyze_project_paths
from repro.analysis.project import ProjectModel
from repro.analysis.shapes import BUFFER_RULE_ID, SHAPE_RULE_ID, check_shapes

FIXTURES = Path(__file__).parent / "fixtures"
SRC_TIMING = Path(repro.__file__).resolve().parent / "timing"


def rule_violations(fixture: str, rule_id: str):
    report = analyze_project_paths(
        [FIXTURES / fixture], select={rule_id}, use_cache=False
    )
    return [v for v in report.violations if v.rule_id == rule_id]


# -- SHAPE001: broadcast/shape mismatch -------------------------------


def test_shape_good_fixture_is_clean():
    assert rule_violations("shape_good.py", SHAPE_RULE_ID) == []


def test_provable_broadcast_mismatches_are_flagged():
    found = rule_violations("shape_bad_broadcast.py", SHAPE_RULE_ID)
    assert [v.line for v in found] == [14, 20]
    for violation in found:
        assert "provably not broadcastable" in violation.message


# -- SHAPE002: native buffer obligations ------------------------------


def test_native_good_fixture_discharges_every_obligation():
    assert rule_violations("shape_native_good.py", BUFFER_RULE_ID) == []


def test_native_bad_fixture_reports_each_failure_mode_distinctly():
    found = rule_violations("shape_native_bad.py", BUFFER_RULE_ID)
    unprovable = [
        v for v in found if "not statically derivable" in v.message
    ]
    too_small = [v for v in found if "cannot prove" in v.message]
    assert len(found) == 5
    # The three pin tables have no affine extent in sta_kernel.c and are
    # deliberately left unsuppressed here: the checker must refuse to
    # guess and say so, distinctly from a failed proof.
    assert sorted(v.message.split("'")[1] for v in unprovable) == [
        "p_slot",
        "p_step2",
        "p_wd",
    ]
    # The two seeded under-allocations report at the allocation site
    # (where the fix goes), chained to the kernel call.
    assert {v.message.split("'")[1] for v in too_small} == {
        "g_bd",
        "scratch",
    }
    for violation in too_small:
        assert violation.path.endswith("shape_native_bad.py")
        assert violation.chain, "expected a chain to the call site"
    lines = {v.message.split("'")[1]: v.line for v in too_small}
    assert lines["g_bd"] == 43
    assert lines["scratch"] == 56


# -- live tree --------------------------------------------------------


def test_live_tree_has_only_the_hand_proven_pin_obligations():
    model = ProjectModel.from_paths([SRC_TIMING])
    found = check_shapes(model)
    buffer_findings = [v for v in found if v.rule_id == BUFFER_RULE_ID]
    assert len(buffer_findings) == 6
    for violation in buffer_findings:
        # Each is the distinct "refuse to guess" report for a pin-table
        # argument, covered by a justified suppression in compiled.py
        # (the full-gate self-lint asserts the tree is clean).
        assert "not statically derivable" in violation.message
        assert violation.message.split("'")[1] in (
            "p_slot",
            "p_wd",
            "p_step2",
        )
    assert not [v for v in found if v.rule_id == SHAPE_RULE_ID]


# -- meta-mutation: the checker must catch the historical sizing bugs --


def mutated_findings(tmp_path: Path, old: str, new: str):
    mutated = tmp_path / "timing"
    shutil.copytree(SRC_TIMING, mutated)
    target = mutated / "compiled.py"
    text = target.read_text(encoding="utf-8")
    assert old in text, f"mutation anchor not found: {old!r}"
    target.write_text(text.replace(old, new), encoding="utf-8")
    line = 0
    if new.strip():
        line = next(
            index
            for index, content in enumerate(
                target.read_text(encoding="utf-8").splitlines(), start=1
            )
            if new.splitlines()[0] in content
        )
    return check_shapes(ProjectModel.from_paths([mutated])), line


def test_dropping_the_thread_factor_from_scratch_fails_shape002(tmp_path):
    found, line = mutated_findings(
        tmp_path,
        "kscratch = np.empty(4 * block * threads)",
        "kscratch = np.empty(4 * block)",
    )
    hits = [
        v
        for v in found
        if "cannot prove" in v.message
        and "'scratch' of sta_eval_gates_mt()" in v.message
    ]
    assert hits, "dropped thread factor must fail the mt scratch proof"
    assert all(v.line == line for v in hits)


def test_shrinking_an_arena_by_one_slot_fails_shape002(tmp_path):
    found, line = mutated_findings(
        tmp_path,
        "arena_a = np.empty(width * block)",
        "arena_a = np.empty(width * block - 1)",
    )
    hits = [
        v
        for v in found
        if "cannot prove" in v.message and "'arena_a'" in v.message
    ]
    # Both kernel variants consume arena_a, so both proofs must fail.
    assert len(hits) == 2
    assert all(v.line == line for v in hits)


def test_dropping_an_assert_pin_fails_the_gate_table_proof(tmp_path):
    found, _ = mutated_findings(
        tmp_path,
        "assert self._k_bd.size == self._k_fanin.size",
        "pass  # pin dropped",
    )
    hits = [
        v
        for v in found
        if "cannot prove" in v.message and "'g_bd'" in v.message
    ]
    assert len(hits) == 2, "unpinned g_bd must fail for both variants"
