"""Tests for the REPRO-LINT001 stale-suppression audit."""

from pathlib import Path

from repro.analysis import analyze_project_paths
from repro.analysis.engine import LINT_RULE_ID

FIXTURES = Path(__file__).parent / "fixtures"
STALE_SELECT = {LINT_RULE_ID, "REPRO-NATIVE001", "REPRO-RNG001"}


def test_stale_directives_are_reported():
    report = analyze_project_paths(
        [FIXTURES / "stale_bad.py"], select=STALE_SELECT
    )
    assert [v.rule_id for v in report.violations] == [LINT_RULE_ID] * 3
    messages = {v.line: v.message for v in report.violations}
    assert "disable-file=REPRO-RNG001" in messages[8]
    assert "anywhere in this file" in messages[8]
    assert "disable=REPRO-NATIVE001" in messages[12]
    assert "no finding on this line" in messages[12]
    assert "unknown rule id 'REPRO-NOPE999'" in messages[13]


def test_live_directive_is_not_stale_and_still_suppresses():
    report = analyze_project_paths(
        [FIXTURES / "stale_good.py"], select=STALE_SELECT
    )
    assert report.violations == []


def test_directives_in_docstrings_are_not_parsed(tmp_path):
    target = tmp_path / "doc.py"
    target.write_text(
        '"""Mentions ``# repro-lint: disable=REPRO-RNG001`` as syntax '
        'documentation, not as a directive."""\n\n'
        "VALUE = 1\n"
    )
    report = analyze_project_paths([target], select=STALE_SELECT)
    assert report.violations == []


def test_stale_check_skips_inactive_rules():
    # With only REPRO-LINT001 selected, directives for rules that did
    # not run (NATIVE001, RNG001) cannot be judged stale; an unknown
    # rule id is always reportable regardless of what ran.
    report = analyze_project_paths(
        [FIXTURES / "stale_bad.py"], select={LINT_RULE_ID}
    )
    messages = [v.message for v in report.violations]
    assert len(messages) == 1
    assert "unknown rule id 'REPRO-NOPE999'" in messages[0]
