"""REPRO-SEED001/002 — the interprocedural seed-flow pass.

Fixture contracts (each rule has a firing and a silent shape) plus the
live-tree scope assertions: the pass must actually visit the service,
solver and MLMC packages — a pass that silently stops seeing a package
would look identical to a clean run.
"""

from pathlib import Path

import repro
from repro.analysis import analyze_project_paths
from repro.analysis.project import ProjectModel
from repro.analysis.seedflow import sink_sites

FIXTURES = Path(__file__).parent / "fixtures"
SRC_REPRO = Path(repro.__file__).resolve().parent


def _gate(fixture, select=("REPRO-SEED001", "REPRO-SEED002")):
    report = analyze_project_paths([FIXTURES / fixture], select=list(select))
    return report.violations


def test_entropy_fixture_fires_seed001_three_ways():
    # Direct unseeded, wall-clock through a local, and entropy through a
    # helper call — the interprocedural case the per-file rule missed.
    found = _gate("seed_bad_entropy.py")
    assert [v.rule_id for v in found] == ["REPRO-SEED001"] * 3


def test_alias_fixture_fires_seed002_for_both_fork_shapes():
    # Same seed into two direct constructions, and direct + helper.
    found = _gate("seed_bad_alias.py")
    assert [v.rule_id for v in found] == ["REPRO-SEED002"] * 2
    # The second consumer is flagged with a chain back to the first.
    assert all(v.chain for v in found)


def test_sanctioned_shapes_stay_clean():
    # Single consumption, branch-exclusive arms, SeedSequence spawning.
    assert _gate("seed_good.py") == []


def test_live_tree_is_clean_and_scope_covers_all_packages():
    report = analyze_project_paths(
        [SRC_REPRO], select=["REPRO-SEED001", "REPRO-SEED002"]
    )
    rendered = "\n".join(v.format() for v in report.violations)
    assert not report.violations, f"seed-flow violations in src:\n{rendered}"

    model = ProjectModel.from_paths([SRC_REPRO])
    paths = {p.replace("\\", "/") for p, _ in sink_sites(model)}
    for package in ("service/", "solvers/", "mlmc/"):
        assert any(package in p for p in paths), (
            f"seed-flow pass inspected no sink in {package} — "
            f"silent scope loss"
        )
