"""Tests for the sta_kernel.c / ctypes C-ABI cross-checker.

The mismatch tests seed deliberate skews — dropped arguments, wrong
pointer widths, float-for-double element types, wrong restype — and
assert the checker pinpoints each one.  The live test at the end checks
the repo's real contract.
"""

import ctypes

import pytest

from repro.analysis.cabi import (
    CParameter,
    UnsupportedDeclarationError,
    check_c_abi,
    check_function,
    ctype_for,
    describe_ctype,
    parse_c_prototypes,
)
from repro.timing import native

DEMO_SOURCE = """
/* A demo kernel covering the supported parameter subset. */
#include <stdint.h>

static void helper(double x) { (void)x; }

void demo_kernel(const double *values, const int64_t *index,
                 int64_t count, double scale) {
    for (int64_t i = 0; i < count; i++) {
        helper(values[index[i]] * scale);
    }
}

int32_t demo_status(void);
"""

DEMO_ARGTYPES = [
    ctypes.POINTER(ctypes.c_double),
    ctypes.POINTER(ctypes.c_int64),
    ctypes.c_int64,
    ctypes.c_double,
]


def demo_check(argtypes=DEMO_ARGTYPES, restype=None, function="demo_kernel"):
    return check_c_abi(
        DEMO_SOURCE, function=function, argtypes=argtypes, restype=restype
    )


# ----------------------------------------------------------------------
# Prototype parsing.
# ----------------------------------------------------------------------
def test_parser_extracts_exported_functions_only():
    prototypes = parse_c_prototypes(DEMO_SOURCE)
    assert set(prototypes) == {"demo_kernel", "demo_status"}  # not helper


def test_parser_reads_parameters_in_order():
    proto = parse_c_prototypes(DEMO_SOURCE)["demo_kernel"]
    assert proto.return_spelling() == "void"
    assert [p.spelling() for p in proto.parameters] == [
        "double*",
        "int64_t*",
        "int64_t",
        "double",
    ]
    assert [p.name for p in proto.parameters] == [
        "values",
        "index",
        "count",
        "scale",
    ]


def test_parser_handles_header_style_prototype():
    proto = parse_c_prototypes(DEMO_SOURCE)["demo_status"]
    assert proto.return_spelling() == "int32_t"
    assert proto.parameters == ()


def test_parser_ignores_body_expressions_and_control_flow():
    # Nothing inside the indented for-loop body parses as a declaration.
    prototypes = parse_c_prototypes(DEMO_SOURCE)
    assert "for" not in prototypes
    assert "helper" not in prototypes


def test_parser_strips_comments_and_preprocessor():
    source = """
// void commented_out(int x);
/* void also_commented(double y) { } */
#define MACRO(x) void macro_fn(int x)
void real_fn(int flag);
"""
    assert set(parse_c_prototypes(source)) == {"real_fn"}


def test_parser_rejects_array_parameters():
    with pytest.raises(UnsupportedDeclarationError, match="array"):
        parse_c_prototypes("void f(double values[], int64_t n);\n")


def test_parser_never_matches_function_pointer_parameters():
    # Nested parens can't satisfy the declaration pattern, so a
    # function-pointer signature is simply not exported — the check
    # then fails loudly as missing-function rather than mis-parsing.
    assert parse_c_prototypes("void f(void (*callback)(int));\n") == {}


def test_parser_canonicalizes_multiword_types():
    proto = parse_c_prototypes("void f(unsigned long long n);\n")["f"]
    assert proto.parameters == (
        CParameter(base="unsigned long long", pointer_depth=0, name="n"),
    )


# ----------------------------------------------------------------------
# C type → ctypes mapping.
# ----------------------------------------------------------------------
def test_ctype_for_scalars_and_pointers():
    assert ctype_for("double", 0) is ctypes.c_double
    assert ctype_for("int64_t", 1) is ctypes.POINTER(ctypes.c_int64)
    assert ctype_for("void", 0) is None
    assert ctype_for("void", 1) is ctypes.c_void_p


def test_ctype_for_refuses_to_guess():
    with pytest.raises(UnsupportedDeclarationError, match="unknown C type"):
        ctype_for("struct_thing", 0)
    with pytest.raises(UnsupportedDeclarationError, match="multi-level"):
        ctype_for("double", 2)


def test_describe_ctype_names():
    assert describe_ctype(None) == "void"
    assert describe_ctype(ctypes.c_int64) == "c_long" or describe_ctype(
        ctypes.c_int64
    ).startswith("c_")
    assert describe_ctype(ctypes.POINTER(ctypes.c_double)) == (
        "POINTER(c_double)"
    )


# ----------------------------------------------------------------------
# Seeded mismatches: every skew class must be detected.
# ----------------------------------------------------------------------
def test_agreement_yields_no_mismatches():
    assert demo_check() == []


def test_detects_arity_skew():
    found = demo_check(argtypes=DEMO_ARGTYPES[:-1])
    assert [m.kind for m in found] == ["arity"]
    assert found[0].expected == "4" and found[0].actual == "3"


def test_detects_pointer_width_skew():
    skewed = list(DEMO_ARGTYPES)
    skewed[1] = ctypes.POINTER(ctypes.c_int32)  # C says int64_t*
    found = demo_check(argtypes=skewed)
    assert [(m.kind, m.index) for m in found] == [("param", 1)]
    assert "index" in found[0].message  # names the C parameter


def test_detects_element_dtype_skew():
    skewed = list(DEMO_ARGTYPES)
    skewed[0] = ctypes.POINTER(ctypes.c_float)  # C says double*
    found = demo_check(argtypes=skewed)
    assert [(m.kind, m.index) for m in found] == [("param", 0)]
    assert found[0].expected == "POINTER(c_double)"
    assert found[0].actual == "POINTER(c_float)"


def test_detects_scalar_passed_as_pointer():
    skewed = list(DEMO_ARGTYPES)
    skewed[2] = ctypes.POINTER(ctypes.c_int64)  # C says plain int64_t
    found = demo_check(argtypes=skewed)
    assert [(m.kind, m.index) for m in found] == [("param", 2)]


def test_detects_restype_skew():
    found = demo_check(restype=ctypes.c_int)  # C says void
    assert [m.kind for m in found] == ["restype"]


def test_detects_missing_function():
    found = demo_check(function="no_such_kernel")
    assert [m.kind for m in found] == ["missing-function"]
    assert "demo_kernel" in found[0].actual


def test_multiple_param_skews_all_reported():
    skewed = list(DEMO_ARGTYPES)
    skewed[0] = ctypes.POINTER(ctypes.c_float)
    skewed[3] = ctypes.c_float
    found = demo_check(argtypes=skewed)
    assert [(m.kind, m.index) for m in found] == [("param", 0), ("param", 3)]


def test_mismatch_rendering_roundtrips():
    found = demo_check(argtypes=DEMO_ARGTYPES[:-1])
    line = found[0].format()
    assert "demo_kernel" in line and "arity" in line
    payload = found[0].to_dict()
    assert payload["kind"] == "arity" and payload["function"] == "demo_kernel"


def test_check_function_direct_call():
    proto = parse_c_prototypes(DEMO_SOURCE)["demo_kernel"]
    assert check_function(proto, DEMO_ARGTYPES, None) == []


# ----------------------------------------------------------------------
# The live contract: sta_kernel.c vs repro.timing.native.
# ----------------------------------------------------------------------
def test_live_kernel_abi_agrees():
    assert check_c_abi() == []


def test_live_kernel_detects_seeded_skew():
    # Corrupt one entry of the real declaration: the checker must notice.
    argtypes = native.kernel_argtypes()
    argtypes[0] = ctypes.POINTER(ctypes.c_float)
    found = check_c_abi(argtypes=argtypes, restype=native.KERNEL_RESTYPE)
    assert [(m.kind, m.index) for m in found] == [("param", 0)]


def test_live_kernel_detects_seeded_arity_skew():
    argtypes = native.kernel_argtypes()[:-1]
    found = check_c_abi(argtypes=argtypes, restype=native.KERNEL_RESTYPE)
    assert [m.kind for m in found] == ["arity"]


def test_live_registry_covers_both_entry_points():
    registry = native.kernel_abi()
    assert set(registry) == {
        native.KERNEL_FUNCTION,
        native.KERNEL_FUNCTION_MT,
    }
    # The MT entry is the serial signature plus the thread count.
    mt_argtypes, mt_restype = registry[native.KERNEL_FUNCTION_MT]
    assert mt_argtypes[:-1] == native.kernel_argtypes()
    assert mt_argtypes[-1] is ctypes.c_int64
    assert mt_restype is native.KERNEL_RESTYPE


def test_live_mt_kernel_detects_seeded_skew():
    # Corrupt the trailing num_threads argument of the MT declaration:
    # the registry-aware checker must localize the skew to that entry.
    argtypes = native.kernel_argtypes_mt()
    argtypes[-1] = ctypes.c_int32  # C says int64_t
    found = check_c_abi(
        function=native.KERNEL_FUNCTION_MT,
        argtypes=argtypes,
        restype=native.KERNEL_RESTYPE,
    )
    assert [(m.function, m.kind, m.index) for m in found] == [
        (native.KERNEL_FUNCTION_MT, "param", len(argtypes) - 1)
    ]


def test_live_unknown_function_reported_not_raised():
    found = check_c_abi(function="sta_eval_gates_gpu")
    assert [m.kind for m in found] == ["missing-function"]
    assert "not a registered kernel entry point" in found[0].message


def test_missing_source_reported_not_raised(tmp_path):
    found = check_c_abi(
        source_path=tmp_path / "gone.c",
        function="sta_eval_gates",
    )
    assert [m.kind for m in found] == ["missing-function"]
    assert "cannot read" in found[0].message
