"""Tests for the anisotropic and nonstationary kernel extensions."""

import numpy as np
import pytest

from repro.core.kernels import (
    AnisotropicGaussianKernel,
    GaussianKernel,
    NonstationaryVarianceKernel,
)
from repro.core.validation import probe_kernel_validity

DIE = (-1.0, -1.0, 1.0, 1.0)


# ---------------------------------------------------------------------------
# Anisotropic Gaussian.
# ---------------------------------------------------------------------------
def test_isotropic_limit_matches_gaussian():
    aniso = AnisotropicGaussianKernel(2.7, 2.7, angle=0.4)
    iso = GaussianKernel(2.7)
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, (30, 2))
    y = rng.uniform(-1, 1, (30, 2))
    assert np.allclose(aniso(x, y), iso(x, y), atol=1e-12)


def test_anisotropy_direction_dependent():
    """Weak decay along x (major axis), strong along y."""
    kernel = AnisotropicGaussianKernel(c_major=1.0, c_minor=9.0, angle=0.0)
    d = 0.5
    along_x = float(kernel(np.zeros(2), np.array([d, 0.0])))
    along_y = float(kernel(np.zeros(2), np.array([0.0, d])))
    assert along_x == pytest.approx(np.exp(-1.0 * d * d))
    assert along_y == pytest.approx(np.exp(-9.0 * d * d))
    assert along_x > along_y


def test_rotation_moves_preferred_axis():
    """At 90 degrees the roles of x and y swap exactly."""
    base = AnisotropicGaussianKernel(1.0, 9.0, angle=0.0)
    rotated = AnisotropicGaussianKernel(1.0, 9.0, angle=np.pi / 2.0)
    d = 0.4
    assert float(rotated(np.zeros(2), np.array([d, 0.0]))) == pytest.approx(
        float(base(np.zeros(2), np.array([0.0, d])))
    )


def test_anisotropic_unit_diagonal_and_validity():
    kernel = AnisotropicGaussianKernel(2.0, 6.0, angle=0.7)
    pts = np.random.default_rng(1).uniform(-1, 1, (40, 2))
    assert np.allclose(kernel.variance_at(pts), 1.0)
    assert probe_kernel_validity(kernel, DIE, seed=2)


def test_anisotropic_symmetry():
    kernel = AnisotropicGaussianKernel(2.0, 6.0, angle=1.1)
    rng = np.random.default_rng(3)
    x = rng.uniform(-1, 1, (20, 2))
    y = rng.uniform(-1, 1, (20, 2))
    assert np.allclose(kernel(x, y), kernel(y, x))


def test_anisotropic_solvable_by_galerkin():
    """The generality claim: the numerical flow is oblivious to anisotropy."""
    from repro.core.galerkin import solve_kle
    from repro.mesh.structured import structured_rectangle_mesh

    mesh = structured_rectangle_mesh(*DIE, 10, 10)
    kle = solve_kle(
        AnisotropicGaussianKernel(1.5, 6.0, angle=0.5), mesh,
        num_eigenpairs=20,
    )
    assert kle.eigenvalues[0] > kle.eigenvalues[10] > 0
    # Anisotropy breaks the square-die x/y degeneracy: λ2 != λ3.
    assert abs(kle.eigenvalues[1] - kle.eigenvalues[2]) > 1e-3


def test_anisotropic_validation():
    with pytest.raises(ValueError, match="positive"):
        AnisotropicGaussianKernel(0.0, 1.0)


# ---------------------------------------------------------------------------
# Nonstationary variance modulation.
# ---------------------------------------------------------------------------
def edge_sigma(points):
    """Variance grows toward the die edge (a realistic gradient)."""
    points = np.asarray(points, dtype=float)
    radius = np.sqrt(np.sum(points * points, axis=-1))
    return 1.0 + 0.5 * radius


def test_nonstationary_diagonal_is_sigma_squared():
    kernel = NonstationaryVarianceKernel(GaussianKernel(2.0), edge_sigma)
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 1.0]])
    expected = edge_sigma(pts) ** 2
    assert np.allclose(kernel.variance_at(pts), expected)


def test_nonstationary_center_variance_one():
    kernel = NonstationaryVarianceKernel(GaussianKernel(2.0), edge_sigma)
    assert float(kernel(np.zeros(2), np.zeros(2))) == pytest.approx(1.0)


def test_nonstationary_valid(DIE=DIE):
    kernel = NonstationaryVarianceKernel(GaussianKernel(2.7), edge_sigma)
    assert probe_kernel_validity(kernel, DIE, seed=4)


def test_nonstationary_correlation_preserved():
    """Normalizing by the local sigmas recovers the base correlation."""
    base = GaussianKernel(2.0)
    kernel = NonstationaryVarianceKernel(base, edge_sigma)
    x = np.array([0.3, 0.1])
    y = np.array([-0.5, 0.8])
    cov = float(kernel(x, y))
    corr = cov / (edge_sigma(x[None])[0] * edge_sigma(y[None])[0])
    assert corr == pytest.approx(float(base(x, y)))


def test_nonstationary_rejects_nonpositive_sigma():
    kernel = NonstationaryVarianceKernel(GaussianKernel(1.0), lambda p: 0.0 * p[..., 0])
    with pytest.raises(ValueError, match="strictly positive"):
        kernel(np.zeros(2), np.zeros(2))


def test_nonstationary_kle_eigenvalue_sum_is_total_variance():
    """Mercer on a nonstationary field: Σλ = ∫σ²(x)dx, not |D|."""
    from repro.core.galerkin import solve_kle
    from repro.mesh.structured import structured_rectangle_mesh

    kernel = NonstationaryVarianceKernel(GaussianKernel(2.7), edge_sigma)
    mesh = structured_rectangle_mesh(*DIE, 12, 12)
    kle = solve_kle(kernel, mesh)
    total = float(np.sum(kle.eigenvalues))
    # ∫ (1 + r/2)² over the square, via fine quadrature on centroids.
    fine = structured_rectangle_mesh(*DIE, 60, 60)
    reference = float(
        np.sum(edge_sigma(fine.centroids) ** 2 * fine.areas)
    )
    assert total == pytest.approx(reference, rel=0.01)


def test_nonstationary_sampling_shows_edge_gradient():
    from repro.field.random_field import RandomField

    kernel = NonstationaryVarianceKernel(GaussianKernel(2.7), edge_sigma)
    field = RandomField(kernel)
    pts = np.array([[0.0, 0.0], [0.95, 0.95]])
    samples = field.sample(pts, 20000, seed=5)
    center_std = samples[:, 0].std()
    edge_std = samples[:, 1].std()
    assert center_std == pytest.approx(1.0, abs=0.05)
    assert edge_std == pytest.approx(float(edge_sigma(pts[1:2])[0]), abs=0.08)
