"""Tests for the Galerkin discretization and eigensolve (paper §3.2/§4)."""

import numpy as np
import pytest

from repro.core.analytic import separable_exponential_kle_2d
from repro.core.galerkin import GalerkinKLE, assemble_galerkin_matrix, solve_kle
from repro.core.kernels import (
    GaussianKernel,
    MaternBesselKernel,
    SeparableExponentialKernel,
)
from repro.mesh.structured import structured_rectangle_mesh

DIE = (-1.0, -1.0, 1.0, 1.0)


def test_centroid_assembly_matches_paper_formula(small_structured_mesh):
    """With the centroid rule, K_ik = K(c_i, c_k) a_i a_k exactly (eq. 21)."""
    kernel = GaussianKernel(2.0)
    mesh = small_structured_mesh
    matrix = assemble_galerkin_matrix(kernel, mesh, rule="centroid")
    i, k = 3, 17
    expected = float(
        kernel(mesh.centroids[i], mesh.centroids[k])
        * mesh.areas[i]
        * mesh.areas[k]
    )
    assert matrix[i, k] == pytest.approx(expected, rel=1e-12)


def test_assembled_matrix_is_symmetric(small_structured_mesh):
    matrix = assemble_galerkin_matrix(
        GaussianKernel(2.7), small_structured_mesh
    )
    assert np.array_equal(matrix, matrix.T)


@pytest.mark.parametrize("rule", ["centroid", "three_point", "seven_point"])
def test_higher_order_rules_assemble_symmetric(rule):
    mesh = structured_rectangle_mesh(*DIE, 4, 4)
    matrix = assemble_galerkin_matrix(GaussianKernel(2.0), mesh, rule=rule)
    assert matrix.shape == (mesh.num_triangles, mesh.num_triangles)
    assert np.allclose(matrix, matrix.T, atol=1e-12)


def test_higher_order_rule_integrates_entries_better():
    """Higher-order quadrature computes the double integral of eq. (18)
    more accurately than the centroid rule — the paper's §4.2 trade-off.

    Reference: the same entry assembled with the degree-5 rule on a 4×
    subdivided pair of triangles.
    """
    kernel = GaussianKernel(2.7)
    coarse = structured_rectangle_mesh(*DIE, 3, 3)
    fine = structured_rectangle_mesh(*DIE, 12, 12)
    # Entry (i, i): the self-integral over one coarse triangle equals the
    # sum over its 16 fine sub-triangles of the fine-matrix block.
    reference_matrix = assemble_galerkin_matrix(kernel, fine, rule="seven_point")
    # Map fine triangles to coarse ones via centroids.
    from repro.mesh.locate import TriangleLocator

    locator = TriangleLocator(coarse)
    owner = locator.locate_many(fine.centroids)
    i, k = 0, 4
    mask_i = owner == i
    mask_k = owner == k
    reference = float(reference_matrix[np.ix_(mask_i, mask_k)].sum())
    centroid = assemble_galerkin_matrix(kernel, coarse, rule="centroid")[i, k]
    three = assemble_galerkin_matrix(kernel, coarse, rule="three_point")[i, k]
    assert abs(three - reference) < abs(centroid - reference)


def test_eigenvalues_descending_and_nonnegative(gaussian_kle):
    eigvals = gaussian_kle.eigenvalues
    assert np.all(np.diff(eigvals) <= 1e-12)
    assert eigvals[0] > 0.0
    # The Gaussian kernel is strictly PD; leading eigenvalues stay positive.
    assert np.all(eigvals[:20] > 0.0)


def test_eigenvalue_sum_equals_die_area():
    """Mercer: Σλ_j = ∫K(x,x)dx = |D| = 4; the full Galerkin spectrum
    reproduces that exactly (trace preservation)."""
    mesh = structured_rectangle_mesh(*DIE, 8, 8)
    kle = solve_kle(GaussianKernel(2.7), mesh)  # all eigenpairs
    assert float(np.sum(kle.eigenvalues)) == pytest.approx(4.0, rel=1e-9)


def test_matches_analytic_separable_kernel(separable_kle):
    """Validation against the Ghanem–Spanos closed form (< 2 % on the
    leading pairs at this mesh resolution)."""
    analytic = separable_exponential_kle_2d(1.0, 1.0, 6)
    for j, pair in enumerate(analytic):
        rel = abs(separable_kle.eigenvalues[j] - pair.eigenvalue)
        assert rel / pair.eigenvalue < 0.03


def test_mesh_convergence_toward_analytic():
    """Eigenvalue error decreases as the mesh refines (Theorem 2 spirit)."""
    kernel = SeparableExponentialKernel(1.0)
    truth = separable_exponential_kle_2d(1.0, 1.0, 1)[0].eigenvalue
    errors = []
    for cells in (4, 8, 16):
        mesh = structured_rectangle_mesh(*DIE, cells, cells)
        kle = solve_kle(kernel, mesh, num_eigenpairs=1)
        errors.append(abs(kle.eigenvalues[0] - truth))
    assert errors[0] > errors[1] > errors[2]


def test_matern_kernel_solvable():
    """The whole point of the paper: eq. (6) kernels have no analytic KLE,
    but the numerical flow handles them."""
    mesh = structured_rectangle_mesh(*DIE, 8, 8)
    kle = solve_kle(MaternBesselKernel(b=2.0, s=2.5), mesh, num_eigenpairs=10)
    assert kle.eigenvalues[0] > kle.eigenvalues[5] > 0.0


def test_galerkin_matrix_cached():
    mesh = structured_rectangle_mesh(*DIE, 4, 4)
    solver = GalerkinKLE(GaussianKernel(2.0), mesh)
    first = solver.galerkin_matrix
    assert solver.galerkin_matrix is first


def test_num_eigenpairs_truncation():
    mesh = structured_rectangle_mesh(*DIE, 6, 6)
    kle = solve_kle(GaussianKernel(2.0), mesh, num_eigenpairs=7)
    assert kle.num_eigenpairs == 7
    assert kle.d_vectors.shape == (mesh.num_triangles, 7)


def test_num_eigenpairs_larger_than_n_clamped():
    mesh = structured_rectangle_mesh(*DIE, 2, 2)  # 8 triangles
    kle = solve_kle(GaussianKernel(2.0), mesh, num_eigenpairs=100)
    assert kle.num_eigenpairs == 8


def test_empty_mesh_rejected():
    with pytest.raises(ValueError, match="at least one point|empty"):
        from repro.mesh.delaunay import delaunay_mesh

        delaunay_mesh(np.zeros((0, 2)))


def test_eigenfunctions_phi_orthonormal(gaussian_kle):
    """dᵀ Φ d = I: the discrete form of eigenfunction orthonormality."""
    mesh = gaussian_kle.mesh
    gram = gaussian_kle.d_vectors.T @ (
        mesh.areas[:, None] * gaussian_kle.d_vectors
    )
    assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-9)


def test_eigen_equation_residual_small(gaussian_kle):
    """K d ≈ λ Φ d for the computed pairs."""
    from repro.core.galerkin import assemble_galerkin_matrix

    mesh = gaussian_kle.mesh
    k_matrix = assemble_galerkin_matrix(gaussian_kle.kernel, mesh)
    for j in (0, 3, 10):
        d = gaussian_kle.d_vectors[:, j]
        lhs = k_matrix @ d
        rhs = gaussian_kle.eigenvalues[j] * (mesh.areas * d)
        assert np.allclose(lhs, rhs, atol=1e-9)


def test_blocked_assembly_matches_unblocked():
    """Chunked high-order assembly must equal the one-shot computation."""
    mesh = structured_rectangle_mesh(*DIE, 3, 3)
    kernel = GaussianKernel(2.0)
    small_blocks = assemble_galerkin_matrix(
        kernel, mesh, rule="three_point", max_block_bytes=2048
    )
    one_shot = assemble_galerkin_matrix(
        kernel, mesh, rule="three_point", max_block_bytes=1 << 30
    )
    assert np.allclose(small_blocks, one_shot, atol=1e-12)


def test_arpack_solver_matches_dense(gaussian_kle):
    """solve_kle(method='arpack') reproduces the dense leading spectrum."""
    arpack = solve_kle(
        gaussian_kle.kernel, gaussian_kle.mesh, num_eigenpairs=12,
        method="arpack",
    )
    assert np.allclose(
        arpack.eigenvalues, gaussian_kle.eigenvalues[:12], rtol=1e-8
    )


def test_tiled_centroid_assembly_matches_one_shot():
    """Above the tile threshold the block fill must equal the one-shot path.

    Entries are pure elementwise evaluations in both paths, so even with
    a tiny block budget the tiled matrix is bitwise identical.
    """
    mesh = structured_rectangle_mesh(*DIE, 8, 8)
    kernel = GaussianKernel(2.0)
    one_shot = assemble_galerkin_matrix(kernel, mesh, tile_threshold=1 << 30)
    tiled = assemble_galerkin_matrix(
        kernel, mesh, tile_threshold=0, max_block_bytes=4096
    )
    assert np.array_equal(tiled, one_shot)
    assert np.array_equal(tiled, tiled.T)


def test_tile_threshold_default_keeps_small_meshes_on_one_shot_path():
    """The default threshold must not reroute the paper-scale meshes."""
    from repro.core.galerkin import ASSEMBLY_TILE_THRESHOLD

    assert ASSEMBLY_TILE_THRESHOLD >= 2000  # paper mesh is n = 1546
