"""Unit and property tests for the covariance-kernel library."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    ExponentialKernel,
    GaussianKernel,
    LinearConeKernel,
    MaternBesselKernel,
    NuggetKernel,
    ProductKernel,
    RadialExponentialKernel,
    ScaledKernel,
    SeparableExponentialKernel,
    SphericalKernel,
    SumKernel,
    pairwise_distances,
)

DIE = (-1.0, -1.0, 1.0, 1.0)

ALL_VALID_KERNELS = [
    GaussianKernel(2.7),
    ExponentialKernel(1.5),
    SeparableExponentialKernel(1.0),
    MaternBesselKernel(b=2.0, s=2.5),
    SphericalKernel(1.2),
]

coords = st.floats(
    min_value=-1.0, max_value=1.0, allow_nan=False, allow_infinity=False
)
points = st.tuples(coords, coords)


def as_arr(p):
    return np.asarray(p, dtype=float)


# ---------------------------------------------------------------------------
# Generic kernel contract.
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ALL_VALID_KERNELS, ids=repr)
def test_unit_variance_on_diagonal(kernel):
    pts = np.array([[0.0, 0.0], [0.3, -0.7], [1.0, 1.0], [-1.0, 0.2]])
    assert np.allclose(kernel.variance_at(pts), 1.0, atol=1e-9)


@pytest.mark.parametrize("kernel", ALL_VALID_KERNELS, ids=repr)
def test_symmetry(kernel):
    rng = np.random.default_rng(0)
    x = rng.uniform(-1, 1, (20, 2))
    y = rng.uniform(-1, 1, (20, 2))
    assert np.allclose(kernel(x, y), kernel(y, x), atol=1e-12)


@pytest.mark.parametrize("kernel", ALL_VALID_KERNELS, ids=repr)
def test_values_bounded_by_one(kernel):
    rng = np.random.default_rng(1)
    x = rng.uniform(-1, 1, (50, 2))
    y = rng.uniform(-1, 1, (50, 2))
    values = kernel(x, y)
    assert np.all(values <= 1.0 + 1e-12)
    assert np.all(values >= -1e-12)


@pytest.mark.parametrize("kernel", ALL_VALID_KERNELS, ids=repr)
def test_matrix_is_psd_on_random_points(kernel):
    rng = np.random.default_rng(2)
    pts = rng.uniform(-1, 1, (60, 2))
    eigvals = np.linalg.eigvalsh(kernel.matrix(pts))
    assert eigvals.min() >= -1e-8 * max(1.0, eigvals.max())


@pytest.mark.parametrize("kernel", ALL_VALID_KERNELS, ids=repr)
def test_matrix_shape_and_symmetry(kernel):
    rng = np.random.default_rng(3)
    pts = rng.uniform(-1, 1, (17, 2))
    mat = kernel.matrix(pts)
    assert mat.shape == (17, 17)
    assert np.array_equal(mat, mat.T)
    other = rng.uniform(-1, 1, (5, 2))
    assert kernel.matrix(pts, other).shape == (17, 5)


@pytest.mark.parametrize("kernel", ALL_VALID_KERNELS, ids=repr)
def test_broadcasting(kernel):
    x = np.zeros((4, 1, 2))
    y = np.random.default_rng(4).uniform(-1, 1, (1, 6, 2))
    assert kernel(x, y).shape == (4, 6)


def test_bad_point_shape_rejected():
    kernel = GaussianKernel(1.0)
    with pytest.raises(ValueError, match=r"\(\.\.\., 2\)"):
        kernel(np.zeros(3), np.zeros(3))


# ---------------------------------------------------------------------------
# Gaussian kernel specifics.
# ---------------------------------------------------------------------------
def test_gaussian_profile_values():
    kernel = GaussianKernel(2.0)
    v = np.array([0.0, 0.5, 1.0])
    assert np.allclose(kernel.profile(v), np.exp(-2.0 * v * v))


def test_gaussian_correlation_length():
    kernel = GaussianKernel(4.0)
    assert kernel.correlation_length == pytest.approx(0.5)
    assert kernel.profile(np.array([0.5]))[0] == pytest.approx(np.exp(-1.0))


def test_gaussian_requires_positive_c():
    with pytest.raises(ValueError, match="positive"):
        GaussianKernel(0.0)
    with pytest.raises(ValueError, match="positive"):
        GaussianKernel(-1.0)


@given(points, points)
@settings(max_examples=50, deadline=None)
def test_gaussian_monotone_decay_property(p, q):
    """K only depends on distance and decays monotonically with it."""
    kernel = GaussianKernel(2.7)
    d = np.hypot(p[0] - q[0], p[1] - q[1])
    val = float(kernel(as_arr(p), as_arr(q)))
    further = float(kernel.profile(np.array([d + 0.1]))[0])
    assert further <= val + 1e-12


# ---------------------------------------------------------------------------
# Exponential kernels.
# ---------------------------------------------------------------------------
def test_exponential_profile_values():
    kernel = ExponentialKernel(3.0)
    v = np.array([0.0, 0.2, 1.0])
    assert np.allclose(kernel.profile(v), np.exp(-3.0 * v))
    assert kernel.correlation_length == pytest.approx(1.0 / 3.0)


def test_separable_is_product_of_1d():
    kernel = SeparableExponentialKernel(1.3)
    x = np.array([0.2, -0.4])
    y = np.array([-0.5, 0.9])
    expected = np.exp(-1.3 * abs(0.2 + 0.5)) * np.exp(-1.3 * abs(-0.4 - 0.9))
    assert float(kernel(x, y)) == pytest.approx(expected)


def test_separable_square_contours_differ_from_isotropic():
    """L1 kernel treats (d, 0) and (d/sqrt2, d/sqrt2) differently."""
    kernel = SeparableExponentialKernel(1.0)
    d = 0.6
    straight = float(kernel(np.zeros(2), np.array([d, 0.0])))
    diagonal = float(
        kernel(np.zeros(2), np.array([d / np.sqrt(2), d / np.sqrt(2)]))
    )
    assert straight != pytest.approx(diagonal)


def test_radial_kernel_circle_defect():
    """All points on an origin-centred circle are perfectly correlated —
    the physical absurdity of the [2] kernel the paper calls out."""
    kernel = RadialExponentialKernel(2.0)
    a = 0.8 * np.array([1.0, 0.0])
    b = 0.8 * np.array([-1.0, 0.0])  # diametrically opposite, distance 1.6
    assert float(kernel(a, b)) == pytest.approx(1.0)
    assert kernel.circle_correlation(0.8, np.pi) == 1.0


def test_radial_kernel_decays_across_radii():
    kernel = RadialExponentialKernel(2.0)
    a = np.array([0.2, 0.0])
    b = np.array([0.9, 0.0])
    assert float(kernel(a, b)) == pytest.approx(np.exp(-2.0 * 0.7))


# ---------------------------------------------------------------------------
# Matern/Bessel kernel (paper eq. (6)).
# ---------------------------------------------------------------------------
def test_matern_is_one_at_zero_separation():
    kernel = MaternBesselKernel(b=2.0, s=2.5)
    assert float(kernel(np.zeros(2), np.zeros(2))) == pytest.approx(1.0)


def test_matern_decays_and_stays_in_unit_interval():
    kernel = MaternBesselKernel(b=3.0, s=1.8)
    v = np.linspace(0.0, 4.0, 100)
    prof = kernel.profile(v)
    assert np.all(np.diff(prof) <= 1e-12)
    assert prof[0] == pytest.approx(1.0)
    assert np.all((prof >= 0.0) & (prof <= 1.0))


def test_matern_limit_large_s_smoother_than_small_s():
    """Larger smoothness s keeps correlation higher at short range."""
    v = np.array([0.2])
    smooth = MaternBesselKernel(b=2.0, s=4.0).profile(v)[0]
    rough = MaternBesselKernel(b=2.0, s=1.2).profile(v)[0]
    assert smooth > rough


def test_matern_half_integer_matches_closed_form():
    """nu = 1/2 (s = 1.5) Matern is exactly exp(-b v)."""
    kernel = MaternBesselKernel(b=2.0, s=1.5)
    v = np.linspace(0.01, 2.0, 50)
    assert np.allclose(kernel.profile(v), np.exp(-2.0 * v), atol=1e-10)


def test_matern_parameter_validation():
    with pytest.raises(ValueError, match="b must be positive"):
        MaternBesselKernel(b=0.0, s=2.0)
    with pytest.raises(ValueError, match="s must exceed 1"):
        MaternBesselKernel(b=1.0, s=1.0)


def test_matern_huge_separation_underflow_is_clean():
    kernel = MaternBesselKernel(b=5.0, s=2.0)
    prof = kernel.profile(np.array([500.0]))
    assert np.isfinite(prof).all()
    assert prof[0] == pytest.approx(0.0, abs=1e-12)


# ---------------------------------------------------------------------------
# Cone / spherical kernels.
# ---------------------------------------------------------------------------
def test_linear_cone_profile():
    kernel = LinearConeKernel(2.0)
    v = np.array([0.0, 1.0, 2.0, 3.0])
    assert np.allclose(kernel.profile(v), [1.0, 0.5, 0.0, 0.0])


def test_linear_cone_invalid_in_2d():
    """The paper's §5.1 caveat: the 2-D cone can be indefinite."""
    from repro.core.validation import probe_kernel_validity

    assert not probe_kernel_validity(
        LinearConeKernel(1.0), DIE, num_points=250, seed=3
    )


def test_spherical_kernel_valid_in_2d():
    from repro.core.validation import probe_kernel_validity

    assert probe_kernel_validity(SphericalKernel(1.0), DIE, seed=3)


def test_spherical_profile_endpoints():
    kernel = SphericalKernel(1.5)
    assert kernel.profile(np.array([0.0]))[0] == pytest.approx(1.0)
    assert kernel.profile(np.array([1.5]))[0] == pytest.approx(0.0)
    assert kernel.profile(np.array([5.0]))[0] == pytest.approx(0.0)


# ---------------------------------------------------------------------------
# Composition.
# ---------------------------------------------------------------------------
def test_scaled_kernel_by_operator():
    base = GaussianKernel(1.0)
    scaled = 0.25 * base
    x = np.zeros(2)
    y = np.array([0.5, 0.0])
    assert float(scaled(x, y)) == pytest.approx(0.25 * float(base(x, y)))
    assert isinstance(scaled, ScaledKernel)


def test_sum_kernel_mixture_with_nugget():
    """0.8 spatial + 0.2 white noise: classic nugget decomposition."""
    mixed = 0.8 * GaussianKernel(2.0) + 0.2 * NuggetKernel()
    same = np.array([0.1, 0.1])
    far = np.array([0.9, -0.9])
    assert float(mixed(same, same)) == pytest.approx(1.0)
    assert float(mixed(same, far)) < 0.8


def test_product_kernel_values():
    prod = ProductKernel(GaussianKernel(1.0), ExponentialKernel(1.0))
    x = np.zeros(2)
    y = np.array([0.3, 0.4])  # distance 0.5
    assert float(prod(x, y)) == pytest.approx(
        np.exp(-0.25) * np.exp(-0.5)
    )


def test_sum_of_valid_kernels_is_psd():
    rng = np.random.default_rng(5)
    pts = rng.uniform(-1, 1, (40, 2))
    mixed = SumKernel(GaussianKernel(3.0), ExponentialKernel(1.0))
    eigvals = np.linalg.eigvalsh(0.5 * mixed.matrix(pts))
    assert eigvals.min() >= -1e-9


def test_nugget_kernel_identity_matrix():
    pts = np.random.default_rng(6).uniform(-1, 1, (10, 2))
    assert np.array_equal(NuggetKernel().matrix(pts), np.eye(10))


def test_scaled_kernel_rejects_negative_scale():
    with pytest.raises(ValueError, match="non-negative"):
        ScaledKernel(GaussianKernel(1.0), -0.5)


# ---------------------------------------------------------------------------
# pairwise_distances helper.
# ---------------------------------------------------------------------------
def test_pairwise_distances_matches_numpy():
    rng = np.random.default_rng(7)
    x = rng.uniform(-1, 1, (8, 2))
    y = rng.uniform(-1, 1, (5, 2))
    expected = np.linalg.norm(x[:, None] - y[None, :], axis=2)
    assert np.allclose(pairwise_distances(x, y), expected)


@given(points, points)
@settings(max_examples=40, deadline=None)
def test_pairwise_distance_symmetry_property(p, q):
    d1 = pairwise_distances(as_arr([p]), as_arr([q]))[0, 0]
    d2 = pairwise_distances(as_arr([q]), as_arr([p]))[0, 0]
    assert d1 == pytest.approx(d2, abs=1e-12)


@given(st.lists(points, min_size=2, max_size=8))
@settings(max_examples=30, deadline=None)
def test_kernel_matrix_psd_property(point_list):
    """Hypothesis sweep of eq. (2): Gaussian kernel matrices are PSD for
    arbitrary finite point sets."""
    pts = np.asarray(point_list, dtype=float)
    mat = GaussianKernel(2.0).matrix(pts)
    eigvals = np.linalg.eigvalsh(mat)
    assert eigvals.min() >= -1e-8 * max(1.0, eigvals.max())
