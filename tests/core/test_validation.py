"""Tests for the validation utilities (Fig. 3(b) machinery, PSD probes)."""

import numpy as np
import pytest

from repro.core.kernels import GaussianKernel, LinearConeKernel
from repro.core.kle import KLEResult
from repro.core.validation import (
    die_grid,
    eigenfunction_orthonormality_defect,
    kernel_reconstruction_report,
    mercer_variance_defect,
    probe_kernel_validity,
)

DIE = (-1.0, -1.0, 1.0, 1.0)


def test_die_grid_shape_and_bounds():
    grid = die_grid(DIE, 11)
    assert grid.shape == (121, 2)
    assert grid[:, 0].min() >= -1.0
    assert grid[:, 0].max() <= 1.0


def test_die_grid_inset_keeps_points_interior():
    grid = die_grid(DIE, 5, inset=0.01)
    assert grid[:, 0].min() > -1.0
    assert grid[:, 1].max() < 1.0


def test_reconstruction_report_centroids(gaussian_kle):
    report = kernel_reconstruction_report(gaussian_kle, r=25)
    assert report.r == 25
    assert report.max_abs_error < 0.05  # paper scale: 0.016
    assert report.rms_error <= report.max_abs_error
    assert report.errors.shape[0] == report.grid.shape[0]


def test_reconstruction_report_grid_mode_larger_error(gaussian_kle):
    """Grid evaluation includes within-triangle interpolation error, so it
    upper-bounds the centroid-mode error."""
    cent = kernel_reconstruction_report(gaussian_kle, r=25)
    grid = kernel_reconstruction_report(
        gaussian_kle, r=25, evaluation="grid", resolution=21
    )
    assert grid.max_abs_error >= cent.max_abs_error


def test_reconstruction_report_improves_with_r(gaussian_kle):
    errs = [
        kernel_reconstruction_report(gaussian_kle, r=r).max_abs_error
        for r in (3, 12, 40)
    ]
    assert errs[0] > errs[1] > errs[2]


def test_reconstruction_report_requires_kernel(gaussian_kle):
    stripped = KLEResult(
        eigenvalues=gaussian_kle.eigenvalues,
        d_vectors=gaussian_kle.d_vectors,
        mesh=gaussian_kle.mesh,
        kernel=None,
    )
    with pytest.raises(ValueError, match="no kernel"):
        kernel_reconstruction_report(stripped)


def test_reconstruction_report_bad_mode(gaussian_kle):
    with pytest.raises(ValueError, match="centroids.*grid|grid.*centroids"):
        kernel_reconstruction_report(gaussian_kle, evaluation="vertices")


def test_mercer_variance_defect_small_for_full_spectrum():
    from repro.core.galerkin import solve_kle
    from repro.mesh.structured import structured_rectangle_mesh

    mesh = structured_rectangle_mesh(*DIE, 6, 6)
    kle = solve_kle(GaussianKernel(2.7), mesh)
    assert mercer_variance_defect(kle) < 1e-10


def test_mercer_variance_defect_reflects_truncation(gaussian_kle):
    truncated = gaussian_kle.truncate(3)
    assert mercer_variance_defect(truncated) > 0.05


def test_probe_validity_gaussian_true():
    assert probe_kernel_validity(GaussianKernel(2.0), DIE, seed=0)


def test_probe_validity_cone_false():
    assert not probe_kernel_validity(
        LinearConeKernel(1.0), DIE, num_points=250, seed=0
    )


def test_orthonormality_defect_tiny(gaussian_kle):
    assert eigenfunction_orthonormality_defect(gaussian_kle) < 1e-9
