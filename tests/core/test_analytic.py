"""Tests for the analytic exponential-kernel KLE (Ghanem–Spanos oracle)."""

import math

import numpy as np
import pytest

from repro.core.analytic import (
    analytic_truncated_variance_1d,
    evaluate_series_covariance,
    exponential_kle_1d,
    make_field_sampler_2d,
    separable_exponential_kle_2d,
)

C = 1.0
A = 1.0


@pytest.fixture(scope="module")
def pairs_1d():
    return exponential_kle_1d(C, A, 12)


def test_eigenvalues_descending(pairs_1d):
    lams = [p.eigenvalue for p in pairs_1d]
    assert all(lams[i] >= lams[i + 1] for i in range(len(lams) - 1))


def test_omegas_satisfy_transcendental_equations(pairs_1d):
    for pair in pairs_1d:
        if pair.parity == "even":
            residual = C - pair.omega * math.tan(pair.omega * A)
        else:
            residual = pair.omega + C * math.tan(pair.omega * A)
        assert abs(residual) < 1e-8


def test_eigenvalue_formula(pairs_1d):
    for pair in pairs_1d:
        expected = 2.0 * C / (pair.omega**2 + C**2)
        assert pair.eigenvalue == pytest.approx(expected, rel=1e-12)


def test_parities_interleave(pairs_1d):
    """Even and odd families alternate in the sorted spectrum."""
    parities = [p.parity for p in pairs_1d[:6]]
    assert parities == ["even", "odd", "even", "odd", "even", "odd"]


def test_eigenfunctions_orthonormal(pairs_1d):
    xs = np.linspace(-A, A, 20001)
    dx = xs[1] - xs[0]
    for i in range(5):
        for j in range(5):
            inner = np.sum(pairs_1d[i](xs) * pairs_1d[j](xs)) * dx
            expected = 1.0 if i == j else 0.0
            assert inner == pytest.approx(expected, abs=2e-3)


def test_mercer_series_converges_to_kernel_1d():
    """Σ λ f(x) f(y) -> exp(-c|x-y|) pointwise."""
    pairs = exponential_kle_1d(C, A, 120)
    x = np.array(0.3)
    y = np.array(-0.2)
    series = evaluate_series_covariance(pairs, x, y)
    assert float(series) == pytest.approx(math.exp(-C * 0.5), abs=2e-3)


def test_eigenvalue_sum_approaches_total_variance():
    pairs = exponential_kle_1d(C, A, 200)
    captured = analytic_truncated_variance_1d(pairs, A)
    assert 0.97 < captured <= 1.0 + 1e-9


def test_2d_products_sorted_descending():
    pairs = separable_exponential_kle_2d(C, A, 20)
    lams = [p.eigenvalue for p in pairs]
    assert all(lams[i] >= lams[i + 1] for i in range(len(lams) - 1))


def test_2d_top_eigenvalue_is_square_of_1d_top():
    one_d = exponential_kle_1d(C, A, 1)[0].eigenvalue
    two_d = separable_exponential_kle_2d(C, A, 1)[0].eigenvalue
    assert two_d == pytest.approx(one_d * one_d, rel=1e-12)


def test_2d_eigenfunction_is_product():
    pairs = separable_exponential_kle_2d(C, A, 3)
    pair = pairs[0]
    pts = np.array([[0.2, -0.3], [0.0, 0.9]])
    expected = pair.factor_x(pts[:, 0]) * pair.factor_y(pts[:, 1])
    assert np.allclose(pair(pts), expected)


def test_2d_eigenfunctions_orthonormal_on_square():
    pairs = separable_exponential_kle_2d(C, A, 4)
    n = 400
    xs = np.linspace(-A, A, n)
    grid = np.stack(np.meshgrid(xs, xs, indexing="xy"), axis=-1).reshape(-1, 2)
    w = (2.0 * A / (n - 1)) ** 2
    f0 = pairs[0](grid)
    f3 = pairs[3](grid)
    assert float(np.sum(f0 * f0) * w) == pytest.approx(1.0, abs=0.02)
    assert float(np.sum(f0 * f3) * w) == pytest.approx(0.0, abs=0.02)


def test_field_sampler_2d_statistics():
    pairs = separable_exponential_kle_2d(C, A, 30)
    sampler = make_field_sampler_2d(pairs)
    rng = np.random.default_rng(0)
    pts = np.array([[0.0, 0.0], [0.1, 0.0], [0.9, -0.9]])
    xi = rng.standard_normal((20000, len(pairs)))
    samples = sampler(pts, xi)
    assert samples.shape == (20000, 3)
    # Variance approaches 1 from below; the slow 2-D exponential spectrum
    # leaves a visible truncation deficit at 30 terms.
    assert 0.75 < samples.var(axis=0)[0] <= 1.0 + 0.05
    corr = np.corrcoef(samples[:, 0], samples[:, 1])[0, 1]
    assert corr == pytest.approx(math.exp(-C * 0.1), abs=0.07)


def test_field_sampler_validates_xi_shape():
    pairs = separable_exponential_kle_2d(C, A, 4)
    sampler = make_field_sampler_2d(pairs)
    with pytest.raises(ValueError, match="num_samples, 4"):
        sampler(np.zeros((2, 2)), np.zeros((10, 3)))


def test_parameter_validation():
    with pytest.raises(ValueError, match="c must be positive"):
        exponential_kle_1d(0.0, 1.0, 3)
    with pytest.raises(ValueError, match="half_length"):
        exponential_kle_1d(1.0, -1.0, 3)
    with pytest.raises(ValueError, match="num_terms"):
        exponential_kle_1d(1.0, 1.0, 0)


def test_different_interval_scaling():
    """On a wider interval the leading eigenvalue grows (more variance)."""
    narrow = exponential_kle_1d(1.0, 0.5, 1)[0].eigenvalue
    wide = exponential_kle_1d(1.0, 2.0, 1)[0].eigenvalue
    assert wide > narrow
