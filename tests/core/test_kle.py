"""Tests for KLE truncation, reconstruction, and sampling (paper §4.3/§5.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kle import KLEResult, select_truncation


# ---------------------------------------------------------------------------
# The truncation criterion (the "1 % rule").
# ---------------------------------------------------------------------------
def test_select_truncation_geometric_decay():
    """Fast decay -> small r; the bound must actually hold at the answer."""
    n = 1000
    eigvals = 0.5 ** np.arange(200)
    r = select_truncation(eigvals, n, fraction=0.01)
    retained = eigvals[:r].sum()
    unused = eigvals[-1] * (n - 200) + eigvals[r:].sum()
    assert unused <= 0.01 * retained
    assert r < 20


def test_select_truncation_is_minimal():
    n = 1000
    eigvals = 0.5 ** np.arange(200)
    r = select_truncation(eigvals, n, fraction=0.01)
    if r > 1:
        retained = eigvals[: r - 1].sum()
        unused = eigvals[-1] * (n - 200) + eigvals[r - 1 :].sum()
        assert unused > 0.01 * retained


def test_select_truncation_flat_spectrum_returns_m():
    """No decay -> criterion cannot be met -> returns all computed."""
    eigvals = np.ones(50)
    assert select_truncation(eigvals, 1000, fraction=0.01) == 50


def test_select_truncation_larger_fraction_smaller_r():
    eigvals = 0.7 ** np.arange(100)
    r_strict = select_truncation(eigvals, 500, fraction=0.01)
    r_loose = select_truncation(eigvals, 500, fraction=0.10)
    assert r_loose <= r_strict


def test_select_truncation_input_validation():
    with pytest.raises(ValueError, match="descending"):
        select_truncation(np.array([1.0, 2.0]), 10)
    with pytest.raises(ValueError, match="fraction"):
        select_truncation(np.array([2.0, 1.0]), 10, fraction=0.0)
    with pytest.raises(ValueError, match="total_dimension"):
        select_truncation(np.array([2.0, 1.0]), 1)
    with pytest.raises(ValueError, match="non-empty"):
        select_truncation(np.array([]), 10)


def test_paper_truncation_r_on_kle(gaussian_kle):
    """On the Gaussian kernel the criterion gives r in the paper's ~25
    neighbourhood even on the coarse test mesh."""
    r = gaussian_kle.select_truncation()
    assert 15 <= r <= 35
    assert gaussian_kle.variance_captured(r) > 0.98


@given(st.floats(min_value=0.3, max_value=0.9), st.integers(250, 2000))
@settings(max_examples=25, deadline=None)
def test_truncation_bound_holds_property(decay, n):
    """For any geometric spectrum the criterion's bound holds at the
    returned r (when r < m)."""
    eigvals = decay ** np.arange(200)
    r = select_truncation(eigvals, n, fraction=0.01)
    if r < 200:
        retained = eigvals[:r].sum()
        unused = eigvals[-1] * (n - 200) + eigvals[r:].sum()
        assert unused <= 0.01 * retained + 1e-12


# ---------------------------------------------------------------------------
# Reconstruction matrix and sampling.
# ---------------------------------------------------------------------------
def test_reconstruction_matrix_shape(gaussian_kle):
    d_lambda = gaussian_kle.reconstruction_matrix(10)
    assert d_lambda.shape == (gaussian_kle.mesh.num_triangles, 10)


def test_reconstruction_matrix_column_scaling(gaussian_kle):
    """Column j is sqrt(λ_j) times eigenvector j."""
    d_lambda = gaussian_kle.reconstruction_matrix(5)
    for j in range(5):
        expected = (
            np.sqrt(gaussian_kle.eigenvalues[j]) * gaussian_kle.d_vectors[:, j]
        )
        assert np.allclose(d_lambda[:, j], expected)


def test_sample_triangle_values_shape_and_determinism(gaussian_kle):
    s1 = gaussian_kle.sample_triangle_values(50, r=10, seed=42)
    s2 = gaussian_kle.sample_triangle_values(50, r=10, seed=42)
    assert s1.shape == (50, gaussian_kle.mesh.num_triangles)
    assert np.array_equal(s1, s2)
    s3 = gaussian_kle.sample_triangle_values(50, r=10, seed=43)
    assert not np.array_equal(s1, s3)


def test_sample_statistics_match_model(gaussian_kle):
    """Large-sample mean ~0 and per-triangle variance ~ diag(D_λ D_λᵀ)."""
    r = gaussian_kle.select_truncation()
    samples = gaussian_kle.sample_triangle_values(20000, r=r, seed=0)
    assert abs(samples.mean()) < 0.02
    model_var = np.sum(gaussian_kle.reconstruction_matrix(r) ** 2, axis=1)
    sample_var = samples.var(axis=0)
    assert np.allclose(sample_var, model_var, rtol=0.15, atol=0.02)


def test_sampled_correlation_tracks_kernel(gaussian_kle):
    """Nearby triangles correlate ~K(d); distant ones don't."""
    mesh = gaussian_kle.mesh
    samples = gaussian_kle.sample_triangle_values(8000, seed=1)
    centroids = mesh.centroids
    # Pick the two closest and two farthest centroid pairs deterministically.
    a = 0
    dists = np.linalg.norm(centroids - centroids[a], axis=1)
    near = int(np.argsort(dists)[1])
    far = int(np.argmax(dists))
    corr_near = np.corrcoef(samples[:, a], samples[:, near])[0, 1]
    corr_far = np.corrcoef(samples[:, a], samples[:, far])[0, 1]
    expected_near = float(
        gaussian_kle.kernel(centroids[a], centroids[near])
    )
    assert corr_near == pytest.approx(expected_near, abs=0.08)
    assert abs(corr_far) < 0.08


def test_sample_at_points_consistent_with_triangles(gaussian_kle):
    pts = np.array([[0.05, 0.05], [-0.6, 0.3]])
    tri = gaussian_kle.locator.locate_many(pts)
    direct = gaussian_kle.sample_at_points(pts, 20, r=5, seed=9)
    per_triangle = gaussian_kle.sample_triangle_values(20, r=5, seed=9)
    assert np.allclose(direct, per_triangle[:, tri])


def test_sample_at_points_with_precomputed_indices(gaussian_kle):
    pts = np.array([[0.0, 0.0]])
    tri = gaussian_kle.locator.locate_many(pts)
    a = gaussian_kle.sample_at_points(pts, 10, seed=3)
    b = gaussian_kle.sample_at_points(pts, 10, seed=3, triangle_indices=tri)
    assert np.allclose(a, b)


# ---------------------------------------------------------------------------
# Kernel reconstruction (Mercer partial sums).
# ---------------------------------------------------------------------------
def test_reconstruct_kernel_converges_with_r(gaussian_kle):
    """More eigenpairs -> better kernel reconstruction at the centroids."""
    mesh = gaussian_kle.mesh
    x0 = mesh.centroids[:1]
    exact = gaussian_kle.kernel.matrix(x0, mesh.centroids)[0]
    errors = []
    for r in (2, 10, 40):
        approx = gaussian_kle.reconstruct_kernel(x0, mesh.centroids, r=r)[0]
        errors.append(float(np.max(np.abs(exact - approx))))
    assert errors[0] > errors[1] > errors[2]
    assert errors[2] < 0.05


def test_covariance_on_triangles_psd(gaussian_kle):
    cov = gaussian_kle.covariance_on_triangles(r=15)
    eigvals = np.linalg.eigvalsh(cov)
    assert eigvals.min() >= -1e-10


def test_truncate_returns_consistent_subresult(gaussian_kle):
    sub = gaussian_kle.truncate(7)
    assert sub.num_eigenpairs == 7
    assert np.array_equal(sub.eigenvalues, gaussian_kle.eigenvalues[:7])
    assert sub.mesh is gaussian_kle.mesh
    # The truncated result samples identically for equal seeds and r.
    assert np.allclose(
        sub.sample_triangle_values(5, seed=2),
        gaussian_kle.sample_triangle_values(5, r=7, seed=2),
    )


# ---------------------------------------------------------------------------
# Validation of constructor invariants.
# ---------------------------------------------------------------------------
def test_klresult_shape_validation(gaussian_kle):
    mesh = gaussian_kle.mesh
    with pytest.raises(ValueError, match="columns"):
        KLEResult(
            eigenvalues=np.array([1.0, 0.5]),
            d_vectors=np.zeros((mesh.num_triangles, 3)),
            mesh=mesh,
        )
    with pytest.raises(ValueError, match="rows"):
        KLEResult(
            eigenvalues=np.array([1.0]),
            d_vectors=np.zeros((mesh.num_triangles + 1, 1)),
            mesh=mesh,
        )


def test_r_out_of_range_rejected(gaussian_kle):
    with pytest.raises(ValueError, match="r must be in"):
        gaussian_kle.reconstruction_matrix(0)
    with pytest.raises(ValueError, match="r must be in"):
        gaussian_kle.reconstruction_matrix(gaussian_kle.num_eigenpairs + 1)
    with pytest.raises(ValueError, match="num_samples"):
        gaussian_kle.sample_triangle_values(0)


def test_eigenfunction_accessors(gaussian_kle):
    f0 = gaussian_kle.eigenfunction_on_triangles(0)
    assert f0.shape == (gaussian_kle.mesh.num_triangles,)
    values = gaussian_kle.eigenfunction_at(0, np.array([[0.0, 0.0]]))
    tri = gaussian_kle.locator.locate((0.0, 0.0))
    assert values[0] == pytest.approx(f0[tri])
    with pytest.raises(ValueError, match="j must be in"):
        gaussian_kle.eigenfunction_on_triangles(10_000)


def test_first_eigenfunction_has_constant_sign(gaussian_kle):
    """The leading eigenfunction of a positive kernel is sign-definite
    (Perron–Frobenius analogue)."""
    f0 = gaussian_kle.eigenfunction_on_triangles(0)
    assert np.all(f0 > 0.0) or np.all(f0 < 0.0)


def test_second_eigenfunction_changes_sign(gaussian_kle):
    """Higher eigenfunctions oscillate (the Fig. 4 'Fourier-like' shape)."""
    f1 = gaussian_kle.eigenfunction_on_triangles(1)
    assert np.any(f1 > 0.0) and np.any(f1 < 0.0)
