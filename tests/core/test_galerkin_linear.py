"""Tests for the piecewise-linear (hat-basis) Galerkin extension."""

import numpy as np
import pytest

from repro.core.analytic import separable_exponential_kle_2d
from repro.core.galerkin import solve_kle
from repro.core.galerkin_linear import (
    assemble_linear_galerkin_matrix,
    linear_mass_matrix,
    solve_kle_linear,
)
from repro.core.kernels import GaussianKernel, SeparableExponentialKernel
from repro.mesh.structured import structured_rectangle_mesh

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def mesh():
    return structured_rectangle_mesh(*DIE, 8, 8)


@pytest.fixture(scope="module")
def linear_kle(mesh):
    return solve_kle_linear(GaussianKernel(2.7), mesh, num_eigenpairs=40)


# ---------------------------------------------------------------------------
# Mass matrix.
# ---------------------------------------------------------------------------
def test_mass_matrix_symmetric_positive_definite(mesh):
    mass = linear_mass_matrix(mesh)
    assert np.allclose(mass, mass.T)
    assert np.linalg.eigvalsh(mass).min() > 0.0


def test_mass_matrix_total_integral(mesh):
    """Row sums of Φ integrate each hat; the grand sum is the die area
    (hats form a partition of unity)."""
    mass = linear_mass_matrix(mesh)
    assert mass.sum() == pytest.approx(4.0)


def test_mass_matrix_single_triangle():
    from repro.mesh.mesh import TriangleMesh

    mesh = TriangleMesh(
        np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]]),
        np.array([[0, 1, 2]]),
    )
    mass = linear_mass_matrix(mesh)
    area = 0.5
    expected = area / 12.0 * np.array(
        [[2.0, 1.0, 1.0], [1.0, 2.0, 1.0], [1.0, 1.0, 2.0]]
    )
    assert np.allclose(mass, expected)


# ---------------------------------------------------------------------------
# Assembly and solve.
# ---------------------------------------------------------------------------
def test_assembly_symmetric(mesh):
    matrix = assemble_linear_galerkin_matrix(GaussianKernel(2.0), mesh)
    assert matrix.shape == (mesh.num_vertices, mesh.num_vertices)
    assert np.array_equal(matrix, matrix.T)


def test_assembly_rejects_low_order_rule(mesh):
    with pytest.raises(ValueError, match="degree >= 2"):
        assemble_linear_galerkin_matrix(
            GaussianKernel(2.0), mesh, rule="centroid"
        )


def test_eigenvalues_descending_positive(linear_kle):
    assert np.all(np.diff(linear_kle.eigenvalues) <= 1e-12)
    assert linear_kle.eigenvalues[0] > 0.0


def test_matches_analytic_better_than_constant_basis():
    """The headline of the extension: at equal mesh, the linear basis is
    substantially closer to the analytic eigenvalues."""
    truth = separable_exponential_kle_2d(1.0, 1.0, 1)[0].eigenvalue
    kernel = SeparableExponentialKernel(1.0)
    mesh = structured_rectangle_mesh(*DIE, 8, 8)
    constant_err = abs(
        solve_kle(kernel, mesh, num_eigenpairs=1).eigenvalues[0] - truth
    )
    linear_err = abs(
        solve_kle_linear(kernel, mesh, num_eigenpairs=1).eigenvalues[0] - truth
    )
    assert linear_err < 0.5 * constant_err


def test_mesh_convergence():
    truth = separable_exponential_kle_2d(1.0, 1.0, 1)[0].eigenvalue
    kernel = SeparableExponentialKernel(1.0)
    errors = []
    for cells in (4, 8, 16):
        mesh = structured_rectangle_mesh(*DIE, cells, cells)
        kle = solve_kle_linear(kernel, mesh, num_eigenpairs=1)
        errors.append(abs(kle.eigenvalues[0] - truth))
    assert errors[0] > errors[1] > errors[2]


def test_agrees_with_constant_basis_spectrum(mesh, linear_kle):
    constant = solve_kle(GaussianKernel(2.7), mesh, num_eigenpairs=10)
    rel = np.abs(
        linear_kle.eigenvalues[:10] - constant.eigenvalues[:10]
    ) / constant.eigenvalues[0]
    assert float(rel.max()) < 0.02


# ---------------------------------------------------------------------------
# Continuous evaluation / sampling.
# ---------------------------------------------------------------------------
def test_eigenfunctions_mass_orthonormal(linear_kle):
    mass = linear_mass_matrix(linear_kle.mesh)
    gram = linear_kle.d_vectors.T @ mass @ linear_kle.d_vectors
    assert np.allclose(gram, np.eye(gram.shape[0]), atol=1e-8)


def test_eigenfunction_interpolates_vertices(linear_kle):
    """At a mesh vertex the interpolated value equals the coefficient."""
    vertex = linear_kle.mesh.vertices[12]
    value = linear_kle.eigenfunction_at(0, vertex[None, :])[0]
    assert value == pytest.approx(linear_kle.d_vectors[12, 0], abs=1e-9)


def test_field_samples_continuous(linear_kle):
    """Unlike the constant basis, samples vary smoothly across triangle
    boundaries: nearby points give nearly identical values."""
    pts = np.array([[0.0, 0.0], [1e-3, 1e-3], [0.9, 0.9]])
    samples = linear_kle.sample_at_points(pts, 200, seed=0)
    assert np.abs(samples[:, 0] - samples[:, 1]).max() < 0.02
    assert np.abs(samples[:, 0] - samples[:, 2]).max() > 0.1


def test_sample_statistics(linear_kle):
    """Pointwise variance approaches 1; the L² projection overshoots a bit
    at nodes on coarse meshes (the hat basis is not interpolatory), so the
    tolerance reflects the 8x8 test mesh."""
    r = linear_kle.select_truncation()
    pts = np.array([[0.0, 0.0], [0.5, -0.5]])
    samples = linear_kle.sample_at_points(pts, 20000, r=r, seed=1)
    assert samples.mean() == pytest.approx(0.0, abs=0.03)
    assert samples.var(axis=0)[0] == pytest.approx(1.0, abs=0.2)


def test_pointwise_variance_converges_with_mesh():
    """The coarse-mesh variance overshoot shrinks under refinement."""
    kernel = GaussianKernel(2.7)
    overshoots = []
    for cells in (6, 14):
        mesh = structured_rectangle_mesh(*DIE, cells, cells)
        kle = solve_kle_linear(kernel, mesh, num_eigenpairs=40)
        x0 = np.array([[0.0, 0.0]])
        var = kle.reconstruct_kernel(x0, x0, r=40)[0, 0]
        overshoots.append(abs(var - 1.0))
    assert overshoots[1] < overshoots[0]


def test_kernel_reconstruction_continuous_grid(linear_kle):
    """Grid-point reconstruction error beats the constant basis because
    there is no within-triangle plateau error."""
    from repro.core.validation import die_grid

    grid = die_grid(DIE, 15)
    x0 = np.array([[0.0, 0.0]])
    approx = linear_kle.reconstruct_kernel(x0, grid, r=30)[0]
    exact = linear_kle.kernel.matrix(x0, grid)[0]
    assert np.max(np.abs(approx - exact)) < 0.15  # coarse 8x8 test mesh


def test_validation_errors(linear_kle):
    with pytest.raises(ValueError, match="j must be in"):
        linear_kle.eigenfunction_at(999, np.zeros((1, 2)))
    with pytest.raises(ValueError, match="r must be in"):
        linear_kle.reconstruct_kernel(np.zeros((1, 2)), np.zeros((1, 2)), r=0)
    with pytest.raises(ValueError, match="num_samples"):
        linear_kle.sample_at_points(np.zeros((1, 2)), 0)
