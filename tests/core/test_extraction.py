"""Tests for kernel extraction from (simulated) die measurements."""

import numpy as np
import pytest

from repro.core.extraction import (
    empirical_correlogram,
    extract_kernel,
    measurement_noise_floor,
)
from repro.core.kernels import ExponentialKernel, GaussianKernel
from repro.field.random_field import RandomField


@pytest.fixture(scope="module")
def measured_gaussian():
    """200 'dies' measured at 80 sites, ground truth Gaussian c = 2.7."""
    truth = GaussianKernel(2.7)
    rng = np.random.default_rng(17)
    points = rng.uniform(-1, 1, (80, 2))
    samples = RandomField(truth).sample(points, 200, seed=18)
    return truth, points, samples


def test_correlogram_shapes(measured_gaussian):
    _truth, points, samples = measured_gaussian
    correlogram = empirical_correlogram(points, samples, num_bins=20)
    assert correlogram.bin_centers.shape == (20,)
    assert correlogram.correlations.shape == (20,)
    assert correlogram.pair_counts.sum() == 80 * 79 // 2


def test_correlogram_tracks_truth(measured_gaussian):
    truth, points, samples = measured_gaussian
    correlogram = empirical_correlogram(points, samples, num_bins=15)
    mask = correlogram.valid_mask()
    predicted = truth.profile(correlogram.bin_centers[mask])
    residual = np.abs(correlogram.correlations[mask] - predicted)
    assert np.nanmax(residual) < 0.15


def test_correlogram_validation():
    with pytest.raises(ValueError, match="samples must be"):
        empirical_correlogram(np.zeros((4, 2)), np.zeros((10, 3)))
    with pytest.raises(ValueError, match="at least 3"):
        empirical_correlogram(np.zeros((4, 2)), np.zeros((2, 4)))


def test_extract_recovers_gaussian(measured_gaussian):
    truth, points, samples = measured_gaussian
    result = extract_kernel(points, samples)
    assert result.family == "gaussian"
    assert isinstance(result.kernel, GaussianKernel)
    assert result.kernel.c == pytest.approx(truth.c, rel=0.2)


def test_extract_recovers_exponential():
    truth = ExponentialKernel(1.8)
    rng = np.random.default_rng(21)
    points = rng.uniform(-1, 1, (70, 2))
    samples = RandomField(truth).sample(points, 300, seed=22)
    result = extract_kernel(points, samples)
    # Exponential truth: gaussian must NOT win; exponential or the flexible
    # Matérn (which contains it at s=1.5) should.
    assert result.family in ("exponential", "matern")
    assert result.fit.rmse < result.all_fits["gaussian"].rmse


def test_extract_reports_all_families(measured_gaussian):
    _truth, points, samples = measured_gaussian
    result = extract_kernel(
        points, samples, families=("gaussian", "exponential")
    )
    assert set(result.all_fits) == {"gaussian", "exponential"}
    assert result.fit.rmse == min(f.rmse for f in result.all_fits.values())


def test_extracted_kernel_usable_in_kle(measured_gaussian):
    """The extraction output plugs directly into the paper's flow."""
    from repro.core.galerkin import solve_kle
    from repro.mesh.structured import structured_rectangle_mesh

    _truth, points, samples = measured_gaussian
    result = extract_kernel(points, samples, families=("gaussian",))
    mesh = structured_rectangle_mesh(-1, -1, 1, 1, 8, 8)
    kle = solve_kle(result.kernel, mesh, num_eigenpairs=10)
    assert kle.eigenvalues[0] > 0


def test_extract_matern_family_runs(measured_gaussian):
    _truth, points, samples = measured_gaussian
    result = extract_kernel(points, samples, families=("matern",))
    assert result.family == "matern"
    assert result.fit.rmse < 0.2


def test_unknown_family_rejected(measured_gaussian):
    _truth, points, samples = measured_gaussian
    with pytest.raises(ValueError, match="unknown kernel family"):
        extract_kernel(points, samples, families=("cauchy",))


def test_noise_floor(measured_gaussian):
    _truth, points, samples = measured_gaussian
    correlogram = empirical_correlogram(points, samples)
    floor = measurement_noise_floor(correlogram, len(samples))
    assert 0.0 < floor < 0.1
    with pytest.raises(ValueError, match="at least 2"):
        measurement_noise_floor(correlogram, 1)


def test_extraction_with_few_dies_still_works():
    """Extraction degrades gracefully: 20 dies still recover c within 2x."""
    truth = GaussianKernel(2.7)
    rng = np.random.default_rng(30)
    points = rng.uniform(-1, 1, (60, 2))
    samples = RandomField(truth).sample(points, 20, seed=31)
    result = extract_kernel(points, samples, families=("gaussian",))
    assert 0.5 * truth.c < result.kernel.c < 2.0 * truth.c


# ---------------------------------------------------------------------------
# Anisotropy detection.
# ---------------------------------------------------------------------------
def test_isotropic_field_reported_isotropic(measured_gaussian):
    from repro.core.extraction import detect_anisotropy

    _truth, points, samples = measured_gaussian
    report = detect_anisotropy(points, samples)
    assert report.is_isotropic
    assert report.ratio < 1.25


def test_anisotropic_field_flagged_with_axis():
    import numpy as np

    from repro.core.extraction import detect_anisotropy
    from repro.core.kernels import AnisotropicGaussianKernel

    rng = np.random.default_rng(50)
    points = rng.uniform(-1, 1, (120, 2))
    kernel = AnisotropicGaussianKernel(1.0, 8.0, angle=0.0)
    samples = RandomField(kernel).sample(points, 300, seed=51)
    report = detect_anisotropy(points, samples)
    assert not report.is_isotropic
    assert report.ratio > 2.0
    # Major (slow-decay) axis near 0 mod pi.
    folded = min(report.angle, np.pi - report.angle)
    assert folded < np.pi / 3


def test_anisotropy_validation():
    import numpy as np

    from repro.core.extraction import detect_anisotropy

    with pytest.raises(ValueError, match="samples must be"):
        detect_anisotropy(np.zeros((5, 2)), np.zeros((10, 3)))
    with pytest.raises(ValueError, match="at least 2"):
        detect_anisotropy(
            np.random.default_rng(0).uniform(-1, 1, (30, 2)),
            np.random.default_rng(1).standard_normal((20, 30)),
            num_sectors=1,
        )
