"""Tests for kernel fitting (the Fig. 3(a) machinery)."""

import numpy as np
import pytest

from repro.core.kernel_fit import (
    fit_exponential_to_profile,
    fit_gaussian_to_linear_kernel_2d,
    fit_gaussian_to_profile,
    fit_to_linear_kernel_1d,
    paper_experiment_kernel,
)
from repro.core.kernels import ExponentialKernel, GaussianKernel


def test_gaussian_fit_recovers_exact_gaussian():
    truth = GaussianKernel(2.2)
    d = np.linspace(0.0, 1.5, 80)
    fit = fit_gaussian_to_profile(d, truth.profile(d))
    assert fit.parameter == pytest.approx(2.2, rel=1e-6)
    assert fit.rmse < 1e-10


def test_exponential_fit_recovers_exact_exponential():
    truth = ExponentialKernel(1.7)
    d = np.linspace(0.0, 2.0, 80)
    fit = fit_exponential_to_profile(d, truth.profile(d))
    assert fit.parameter == pytest.approx(1.7, rel=1e-6)
    assert fit.rmse < 1e-10


def test_fig3a_gaussian_beats_exponential():
    """The paper's headline Fig. 3(a) observation."""
    fits = fit_to_linear_kernel_1d(1.0)
    assert fits["gaussian"].rmse < fits["exponential"].rmse


def test_fig3a_fit_errors_are_small():
    fits = fit_to_linear_kernel_1d(1.0)
    assert fits["gaussian"].rmse < 0.08
    assert fits["gaussian"].max_error < 0.15


def test_fit_result_reports_consistent_kernel():
    fits = fit_to_linear_kernel_1d(1.0)
    gaussian = fits["gaussian"]
    assert isinstance(gaussian.kernel, GaussianKernel)
    assert gaussian.kernel.c == pytest.approx(gaussian.parameter)


def test_2d_fit_weights_differ_from_1d_fit():
    """The area weight (∝ v) shifts the best-fit c away from the 1-D fit."""
    one_d = fit_to_linear_kernel_1d(1.0)["gaussian"].parameter
    two_d = fit_gaussian_to_linear_kernel_2d(1.0).parameter
    assert two_d != pytest.approx(one_d, rel=1e-3)


def test_fit_scales_with_correlation_distance():
    """Doubling rho scales distances by 2, so c scales by 1/4 (Gaussian)."""
    c1 = fit_gaussian_to_linear_kernel_2d(1.0).parameter
    c2 = fit_gaussian_to_linear_kernel_2d(2.0).parameter
    assert c2 == pytest.approx(c1 / 4.0, rel=1e-3)


def test_paper_experiment_kernel_is_reproducible():
    k1 = paper_experiment_kernel()
    k2 = paper_experiment_kernel()
    assert isinstance(k1, GaussianKernel)
    assert k1.c == pytest.approx(k2.c)


def test_paper_experiment_kernel_value():
    """Regression lock on the fitted decay rate (c ≈ 2.72 on the unit-rho
    cone); a drift here silently changes every experiment."""
    kernel = paper_experiment_kernel()
    assert kernel.c == pytest.approx(2.72394, rel=1e-3)


def test_paper_kernel_nearly_uncorrelated_across_die():
    kernel = paper_experiment_kernel()
    corner_to_corner = kernel.profile(np.array([2.0 * np.sqrt(2.0)]))[0]
    assert corner_to_corner < 1e-6


def test_mismatched_shapes_rejected():
    with pytest.raises(ValueError, match="equal shapes"):
        fit_gaussian_to_profile([0.0, 0.5], [1.0])


def test_empty_data_rejected():
    with pytest.raises(ValueError, match="empty"):
        fit_gaussian_to_profile([], [])


def test_paper_experiment_kernel_rejects_bad_side():
    with pytest.raises(ValueError, match="positive"):
        paper_experiment_kernel(chip_side=0.0)


def test_weighted_fit_respects_weights():
    """Heavy weight at large distance drags the fit toward matching there."""
    d = np.linspace(0.0, 1.0, 50)
    target = np.clip(1.0 - d, 0.0, None)
    flat = fit_gaussian_to_profile(d, target)
    w = np.where(d > 0.8, 100.0, 1.0)
    tail_weighted = fit_gaussian_to_profile(d, target, weights=w)
    tail_err_flat = abs(flat.kernel.profile(d[-1:]) - target[-1])[0]
    tail_err_weighted = abs(
        tail_weighted.kernel.profile(d[-1:]) - target[-1]
    )[0]
    assert tail_err_weighted < tail_err_flat
