"""Tests for the triangle quadrature rules."""

import numpy as np
import pytest

from repro.core.quadrature import (
    CENTROID_RULE,
    SEVEN_POINT_RULE,
    THREE_POINT_RULE,
    get_rule,
)
from repro.mesh.structured import structured_rectangle_mesh

RULES = [CENTROID_RULE, THREE_POINT_RULE, SEVEN_POINT_RULE]

TRIANGLE = (
    np.array([0.0, 0.0]),
    np.array([2.0, 0.0]),
    np.array([0.0, 1.0]),
)
TRIANGLE_AREA = 1.0


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
def test_weights_sum_to_one(rule):
    assert rule.weights.sum() == pytest.approx(1.0)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
def test_barycentric_rows_sum_to_one(rule):
    assert np.allclose(rule.barycentric.sum(axis=1), 1.0)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
def test_nodes_inside_triangle(rule):
    assert np.all(rule.barycentric >= 0.0)
    assert np.all(rule.barycentric <= 1.0)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
def test_integrates_constant_exactly(rule):
    a, b, c = TRIANGLE
    value = rule.integrate(lambda p: 3.5, a, b, c, TRIANGLE_AREA)
    assert value == pytest.approx(3.5 * TRIANGLE_AREA)


@pytest.mark.parametrize("rule", RULES, ids=lambda r: r.name)
def test_integrates_linear_exactly(rule):
    """All rules are at least degree 1: exact on x + 2y.

    ∫∫ (x + 2y) over the (0,0)-(2,0)-(0,1) triangle = 2/3 + 2/3 = 4/3.
    """
    a, b, c = TRIANGLE
    value = rule.integrate(lambda p: p[0] + 2 * p[1], a, b, c, TRIANGLE_AREA)
    assert value == pytest.approx(4.0 / 3.0, rel=1e-12)


def test_three_point_exact_on_quadratic_centroid_is_not():
    """∫∫ x² over the reference-scaled triangle = 2/3 (monomial formula)."""
    a, b, c = TRIANGLE
    exact = 2.0 / 3.0
    three = THREE_POINT_RULE.integrate(lambda p: p[0] ** 2, a, b, c, 1.0)
    centroid = CENTROID_RULE.integrate(lambda p: p[0] ** 2, a, b, c, 1.0)
    assert three == pytest.approx(exact, rel=1e-12)
    assert centroid != pytest.approx(exact, rel=1e-3)


def test_seven_point_exact_on_quintic():
    """x⁵ over the unit right triangle: ∫∫ x⁵ dy dx = ∫ x⁵(1-x) = 1/42."""
    a = np.array([0.0, 0.0])
    b = np.array([1.0, 0.0])
    c = np.array([0.0, 1.0])
    value = SEVEN_POINT_RULE.integrate(lambda p: p[0] ** 5, a, b, c, 0.5)
    assert value == pytest.approx(1.0 / 42.0, rel=1e-10)


def test_points_on_mesh_shapes_and_total_weight():
    mesh = structured_rectangle_mesh(-1, -1, 1, 1, 4, 4)
    for rule in RULES:
        pts, weights = rule.points_on_mesh(mesh)
        assert pts.shape == (mesh.num_triangles * rule.num_points, 2)
        assert weights.shape == (mesh.num_triangles * rule.num_points,)
        # Total weight integrates the constant 1 over the die: area 4.
        assert weights.sum() == pytest.approx(4.0)


def test_points_on_mesh_integrates_linear():
    mesh = structured_rectangle_mesh(0, 0, 2, 1, 5, 3)
    pts, weights = THREE_POINT_RULE.points_on_mesh(mesh)
    # ∫∫ x over [0,2]x[0,1] = 2.
    assert float(np.sum(pts[:, 0] * weights)) == pytest.approx(2.0)


def test_get_rule_lookup():
    assert get_rule("centroid") is CENTROID_RULE
    assert get_rule("three_point") is THREE_POINT_RULE
    assert get_rule("seven_point") is SEVEN_POINT_RULE


def test_get_rule_unknown():
    with pytest.raises(ValueError, match="unknown quadrature rule"):
        get_rule("gauss99")


def test_rule_degrees_ordered():
    assert CENTROID_RULE.degree < THREE_POINT_RULE.degree < SEVEN_POINT_RULE.degree
