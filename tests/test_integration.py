"""Cross-module integration tests: the paper's full pipeline, end to end."""

import numpy as np
import pytest

from repro.circuit.benchmarks import load_circuit
from repro.core.galerkin import solve_kle
from repro.core.kernel_fit import paper_experiment_kernel
from repro.field.grid_model import GridPCA, grid_model_from_kernel
from repro.field.sampling import KLESampleGenerator
from repro.mesh.refine import refine_rectangle
from repro.place.placer import place_netlist
from repro.timing.ssta import MonteCarloSSTA
from repro.timing.sta import STAEngine

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def pipeline():
    """Kernel -> mesh -> KLE -> circuit -> placement, all small-scale."""
    kernel = paper_experiment_kernel()
    mesh = refine_rectangle(*DIE, min_angle_degrees=28.0, max_area=0.02)
    kle = solve_kle(kernel, mesh, num_eigenpairs=80)
    netlist = load_circuit("c880")
    placement = place_netlist(netlist, DIE, seed=0)
    return kernel, mesh, kle, netlist, placement


def test_full_ssta_pipeline_statistics(pipeline):
    kernel, _mesh, kle, netlist, placement = pipeline
    harness = MonteCarloSSTA(netlist, placement, kernel, kle)
    row = harness.compare(2500, seed=0, circuit_name="c880")
    # Table 1 shape claims at c880 scale.
    assert row.e_mu_percent < 1.0
    assert row.e_sigma_percent < 10.0
    assert row.reference_std / row.reference_mean > 0.01  # real variation


def test_truncation_criterion_selects_compact_model(pipeline):
    _kernel, mesh, kle, _netlist, _placement = pipeline
    r = kle.select_truncation()
    assert r <= 35  # thousands of gate RVs -> a few tens of field RVs
    assert kle.variance_captured(r) >= 0.98
    assert mesh.num_triangles > 5 * r


def test_kle_vs_grid_pca_at_equal_budget(pipeline):
    """KLE's continuous model avoids the grid's cell-granularity artifact:
    gates in one grid cell are perfectly correlated under PCA even when
    visibly separated, while KLE resolves them at mesh resolution."""
    kernel, _mesh, kle, _netlist, _placement = pipeline
    r = 20
    grid = grid_model_from_kernel(kernel, DIE, 4, 4)  # coarse 16-cell grid
    pca = GridPCA(grid)
    pts = np.array([[0.05, 0.05], [0.45, 0.45]])  # same coarse cell
    assert grid.cell_of_points(pts)[0] == grid.cell_of_points(pts)[1]
    pca_samples = pca.sample_at_points(pts, 4000, min(r, 16), seed=1)
    pca_corr = np.corrcoef(pca_samples[:, 0], pca_samples[:, 1])[0, 1]
    kle_gen = KLESampleGenerator({"L": kle}, r=r)
    kle_samples = kle_gen.generate(pts, 4000, seed=1).samples["L"]
    kle_corr = np.corrcoef(kle_samples[:, 0], kle_samples[:, 1])[0, 1]
    true_corr = float(kernel(pts[0], pts[1]))
    assert pca_corr == pytest.approx(1.0, abs=1e-9)
    assert abs(kle_corr - true_corr) < abs(pca_corr - true_corr)


def test_rv_count_reduction_headline(pipeline):
    """The abstract's claim: thousands of RVs -> ~25 per parameter."""
    _kernel, _mesh, kle, netlist, _placement = pipeline
    r = kle.select_truncation()
    assert netlist.num_gates / r > 10.0


def test_spatial_correlation_survives_the_whole_flow(pipeline):
    """Gate parameter samples out of Algorithm 2 carry kernel correlation."""
    kernel, _mesh, kle, netlist, placement = pipeline
    locations = placement.gate_locations()
    generator = KLESampleGenerator({"L": kle})
    samples = generator.generate(locations, 4000, seed=2).samples["L"]
    # Two specific gates: nearest pair and a far pair.
    d = np.linalg.norm(locations[0] - locations, axis=1)
    near = int(np.argsort(d)[1])
    far = int(np.argmax(d))
    corr_near = np.corrcoef(samples[:, 0], samples[:, near])[0, 1]
    corr_far = np.corrcoef(samples[:, 0], samples[:, far])[0, 1]
    assert corr_near > float(kernel(locations[0], locations[far])) + 0.3
    assert abs(corr_far) < 0.25


def test_sta_worst_delay_dominated_by_end_points(pipeline):
    _kernel, _mesh, _kle, netlist, placement = pipeline
    engine = STAEngine(netlist, placement)
    result = engine.nominal()
    stacked = np.stack([v for v in result.end_arrivals.values()])
    assert float(result.worst_delay[0]) == pytest.approx(
        float(stacked.max())
    )


def test_seed_reproducibility_end_to_end(pipeline):
    kernel, _mesh, kle, netlist, placement = pipeline
    harness = MonteCarloSSTA(netlist, placement, kernel, kle, r=15)
    row1 = harness.compare(150, seed=7)
    row2 = harness.compare(150, seed=7)
    assert row1.kle_std == pytest.approx(row2.kle_std)
    assert row1.reference_mean == pytest.approx(row2.reference_mean)
