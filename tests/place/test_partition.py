"""Tests for the Fiduccia–Mattheyses bipartitioner."""

import numpy as np
import pytest

from repro.place.partition import cut_size, fm_bipartition


def test_dumbbell_optimal_cut():
    """Two triangles joined by one net: FM must find the cut of 1."""
    nets = [[0, 1], [1, 2], [0, 2], [3, 4], [4, 5], [3, 5], [2, 3]]
    sides = fm_bipartition(6, nets, seed=1)
    assert cut_size(nets, sides) == 1
    assert sides[0] == sides[1] == sides[2]
    assert sides[3] == sides[4] == sides[5]


def test_two_cliques_with_hyperedges():
    """4+4 cliques as hyperedges, one bridging hyperedge; a few restarts
    reliably escape the flat-FM local optimum."""
    nets = [[0, 1, 2, 3], [4, 5, 6, 7], [3, 4]]
    sides = fm_bipartition(8, nets, seed=0, restarts=5)
    assert cut_size(nets, sides) == 1


def test_restarts_never_hurt():
    rng = np.random.default_rng(13)
    nets = [list(rng.choice(30, size=3, replace=False)) for _ in range(60)]
    single = cut_size(nets, fm_bipartition(30, nets, seed=5, restarts=1))
    multi = cut_size(nets, fm_bipartition(30, nets, seed=5, restarts=6))
    assert multi <= single


def test_restarts_validation():
    with pytest.raises(ValueError, match="restarts"):
        fm_bipartition(4, [[0, 1]], restarts=0)


def test_balance_respected():
    rng = np.random.default_rng(2)
    nets = [list(rng.choice(40, size=3, replace=False)) for _ in range(80)]
    sides = fm_bipartition(40, nets, balance_tolerance=0.1, seed=3)
    count = int(sides.sum())
    assert 14 <= count <= 26  # 0.5 +/- tol/2 plus one-cell slack


def test_weighted_balance():
    weights = np.ones(10)
    weights[0] = 5.0
    nets = [[i, i + 1] for i in range(9)]
    sides = fm_bipartition(
        10, nets, weights=weights, balance_tolerance=0.2, seed=4
    )
    heavy_side = sides[0]
    side_weight = weights[sides == heavy_side].sum()
    assert side_weight <= 0.5 * weights.sum() + 5.0 + 0.2 * weights.sum()


def test_cut_never_worse_than_initial():
    rng = np.random.default_rng(5)
    nets = [list(rng.choice(30, size=2, replace=False)) for _ in range(60)]
    initial = np.array([i % 2 for i in range(30)], dtype=np.int8)
    before = cut_size(nets, initial)
    sides = fm_bipartition(30, nets, initial_sides=initial.copy(), seed=6)
    assert cut_size(nets, sides) <= before


def test_deterministic_given_seed():
    rng = np.random.default_rng(7)
    nets = [list(rng.choice(25, size=3, replace=False)) for _ in range(40)]
    a = fm_bipartition(25, nets, seed=11)
    b = fm_bipartition(25, nets, seed=11)
    assert np.array_equal(a, b)


def test_singleton_and_wide_nets_ignored():
    nets = [[0], [1, 1], list(range(20))]  # singleton, dup-pin, over-wide
    sides = fm_bipartition(20, nets, net_degree_cap=10, seed=8)
    assert sides.shape == (20,)


def test_no_nets_still_balanced():
    sides = fm_bipartition(12, [], seed=9)
    assert 5 <= int(sides.sum()) <= 7


def test_input_validation():
    with pytest.raises(ValueError, match="num_cells"):
        fm_bipartition(0, [])
    with pytest.raises(ValueError, match="out of range"):
        fm_bipartition(3, [[0, 5]])
    with pytest.raises(ValueError, match="one entry per cell"):
        fm_bipartition(3, [[0, 1]], weights=np.ones(2))
    with pytest.raises(ValueError, match="one entry per cell"):
        fm_bipartition(3, [[0, 1]], initial_sides=np.zeros(2, dtype=np.int8))


def test_cut_size_counts_correctly():
    nets = [[0, 1], [1, 2], [0, 2]]
    sides = np.array([0, 0, 1], dtype=np.int8)
    assert cut_size(nets, sides) == 2
