"""Tests for half-perimeter wirelength."""

import pytest

from repro.circuit.netlist import Gate, Netlist
from repro.place.hpwl import all_net_hpwl, net_hpwl, total_hpwl
from repro.place.placer import Placement

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture()
def placed_pair():
    gates = [
        Gate("g1", "NOT", ("a",), "g1"),
        Gate("g2", "NOT", ("g1",), "g2"),
        Gate("g3", "NOT", ("g1",), "g3"),
    ]
    netlist = Netlist("hp", ["a"], ["g2", "g3"], gates)
    positions = {
        "g1": (0.0, 0.0),
        "g2": (0.5, 0.0),
        "g3": (0.0, -0.25),
    }
    pads = {"a": (-1.0, 0.0), "g2": (1.0, 0.0), "g3": (0.0, 1.0)}
    return netlist, Placement(netlist, DIE, positions, pads)


def test_multi_sink_net_bbox(placed_pair):
    _netlist, placement = placed_pair
    # Net g1: driver (0,0), sinks g2 (0.5,0) and g3 (0,-0.25).
    assert net_hpwl(placement, "g1") == pytest.approx(0.5 + 0.25)


def test_po_net_includes_pad(placed_pair):
    _netlist, placement = placed_pair
    # Net g2: driver (0.5,0) + PO pad (1,0).
    assert net_hpwl(placement, "g2") == pytest.approx(0.5)
    # Net g3: driver (0,-0.25) + PO pad (0,1).
    assert net_hpwl(placement, "g3") == pytest.approx(1.25)


def test_pi_net_includes_pad(placed_pair):
    _netlist, placement = placed_pair
    # Net a: pad (-1,0) to sink g1 (0,0).
    assert net_hpwl(placement, "a") == pytest.approx(1.0)


def test_all_and_total(placed_pair):
    _netlist, placement = placed_pair
    per_net = all_net_hpwl(placement)
    assert set(per_net) == {"a", "g1", "g2", "g3"}
    assert total_hpwl(placement) == pytest.approx(sum(per_net.values()))


def test_single_pin_net_zero():
    gates = [Gate("g1", "NOT", ("a",), "g1")]
    netlist = Netlist("solo", ["a"], [], gates)
    placement = Placement(
        netlist, DIE, {"g1": (0.3, 0.3)}, {"a": (-1.0, 0.0)}
    )
    # Net g1 has no sinks and is not a PO.
    assert net_hpwl(placement, "g1") == 0.0
