"""Tests for recursive-bisection placement."""

import numpy as np
import pytest

from repro.circuit.generate import generate_circuit
from repro.place.hpwl import total_hpwl
from repro.place.placer import Placement, place_netlist

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def demo():
    return generate_circuit("demo", 300, 16, 8, seed=0)


@pytest.fixture(scope="module")
def demo_placement(demo):
    return place_netlist(demo, DIE, seed=1)


def test_all_gates_placed_inside_die(demo, demo_placement):
    locations = demo_placement.gate_locations()
    assert locations.shape == (demo.num_gates, 2)
    assert locations[:, 0].min() >= -1.0 and locations[:, 0].max() <= 1.0
    assert locations[:, 1].min() >= -1.0 and locations[:, 1].max() <= 1.0


def test_gate_locations_order_matches_netlist(demo, demo_placement):
    locations = demo_placement.gate_locations()
    for i, gate in enumerate(demo.gates):
        assert tuple(locations[i]) == demo_placement.gate_positions[gate.name]


def test_pads_on_periphery(demo, demo_placement):
    for net, (x, y) in demo_placement.pad_positions.items():
        on_border = (
            abs(abs(x) - 1.0) < 1e-9 or abs(abs(y) - 1.0) < 1e-9
        )
        assert on_border, net


def test_every_io_net_has_a_pad(demo, demo_placement):
    for net in demo.primary_inputs + demo.primary_outputs:
        assert net in demo_placement.pad_positions


def test_beats_random_placement(demo, demo_placement):
    rng = np.random.default_rng(3)
    random_positions = {
        g.name: tuple(rng.uniform(-1, 1, 2)) for g in demo.gates
    }
    random_placement = Placement(
        demo, DIE, random_positions, demo_placement.pad_positions
    )
    assert total_hpwl(demo_placement) < 0.8 * total_hpwl(random_placement)


def test_connected_gates_closer_than_average(demo, demo_placement):
    locations = {g.name: np.array(demo_placement.gate_positions[g.name])
                 for g in demo.gates}
    connected = []
    for gate in demo.gates:
        for net in gate.inputs:
            driver = demo.driver_of(net)
            if driver is not None:
                connected.append(
                    float(np.linalg.norm(locations[gate.name] - locations[driver.name]))
                )
    rng = np.random.default_rng(4)
    names = [g.name for g in demo.gates]
    random_pairs = [
        float(np.linalg.norm(locations[a] - locations[b]))
        for a, b in zip(rng.choice(names, 500), rng.choice(names, 500))
    ]
    assert np.mean(connected) < 0.6 * np.mean(random_pairs)


def test_deterministic(demo):
    a = place_netlist(demo, DIE, seed=7)
    b = place_netlist(demo, DIE, seed=7)
    assert a.gate_positions == b.gate_positions


def test_leaf_size_one(demo):
    placement = place_netlist(demo, DIE, leaf_size=1, seed=2)
    locations = placement.gate_locations()
    # With singleton leaves, positions are (almost) all distinct.
    unique = {tuple(p) for p in np.round(locations, 12)}
    assert len(unique) > 0.95 * demo.num_gates


def test_position_of_net_driver(demo, demo_placement):
    pi = demo.primary_inputs[0]
    assert demo_placement.position_of_net_driver(pi) == \
        demo_placement.pad_positions[pi]
    gate = demo.gates[0]
    assert demo_placement.position_of_net_driver(gate.output) == \
        demo_placement.gate_positions[gate.name]


def test_net_pin_positions_include_po_pad(demo, demo_placement):
    po = demo.primary_outputs[0]
    pins = demo_placement.net_pin_positions(po)
    assert demo_placement.pad_positions[po] in pins


def test_validation():
    netlist = generate_circuit("v", 10, 3, 2, seed=5)
    with pytest.raises(ValueError, match="positive-area"):
        place_netlist(netlist, (1, 0, 0, 1))
    with pytest.raises(ValueError, match="leaf_size"):
        place_netlist(netlist, DIE, leaf_size=0)


def test_custom_region():
    netlist = generate_circuit("r", 50, 6, 3, seed=6)
    placement = place_netlist(netlist, (0.0, 0.0, 10.0, 5.0), seed=0)
    locations = placement.gate_locations()
    assert locations[:, 0].max() <= 10.0
    assert locations[:, 1].max() <= 5.0
    assert locations[:, 0].min() >= 0.0
