"""Tests for the synthetic 90nm cell library."""

import numpy as np
import pytest

from repro.timing.library import (
    STATISTICAL_PARAMETERS,
    CellLibrary,
    GateTimingModel,
    Technology,
)


@pytest.fixture(scope="module")
def library():
    return CellLibrary()


def test_statistical_parameter_order():
    assert STATISTICAL_PARAMETERS == ("L", "W", "Vt", "tox")


def test_all_netlist_types_characterized(library):
    from repro.circuit.netlist import ALL_GATE_TYPES

    for gate_type in ALL_GATE_TYPES:
        model = library.model_for(gate_type, 2 if gate_type not in
                                  ("NOT", "BUFF", "DFF") else 1)
        assert model.d0 > 0.0
        assert model.input_cap_ff > 0.0


def test_direction_unit_norm(library):
    for gate_type in library.gate_types:
        model = library.model_for(gate_type, 2)
        assert np.linalg.norm(model.direction) == pytest.approx(1.0)


def test_direction_physics_signs(library):
    """Delay grows with L, Vt, tox and shrinks with W."""
    for gate_type in library.gate_types:
        model = library.model_for(gate_type, 2)
        l, w, vt, tox = model.direction
        assert l > 0 and vt > 0 and tox > 0 and w < 0


def test_nominal_delay_monotone_in_load_and_slew(library):
    model = library.model_for("NAND", 2)
    assert model.nominal_delay(50.0, 20.0) < model.nominal_delay(50.0, 40.0)
    assert model.nominal_delay(20.0, 20.0) < model.nominal_delay(80.0, 20.0)


def test_statistical_scale_properties(library):
    model = library.model_for("NAND", 2)
    u = np.array([-3.0, 0.0, 3.0])
    scale = model.statistical_scale(u)
    assert scale[1] == pytest.approx(1.0)
    assert scale[2] > 1.0  # slow corner
    assert scale[0] < 1.0  # fast corner
    assert np.all(scale > 0.0)  # clipped positive even at extreme u


def test_statistical_scale_quadratic_term(library):
    """k2 > 0 makes the scale asymmetric: slow corner further from nominal."""
    model = library.model_for("NAND", 2)
    up = float(model.statistical_scale(np.array([3.0]))[0])
    down = float(model.statistical_scale(np.array([-3.0]))[0])
    assert (up - 1.0) > (1.0 - down)


def test_fanin_derating(library):
    two = library.model_for("NAND", 2)
    four = library.model_for("NAND", 4)
    assert four.d0 > two.d0
    assert four.input_cap_ff > two.input_cap_ff
    assert four.direction is two.direction or np.allclose(
        four.direction, two.direction
    )


def test_fanin_one_or_two_not_derated(library):
    assert library.model_for("NAND", 2).d0 == library.model_for("NAND", 2).d0
    inv1 = library.model_for("NOT", 1)
    assert inv1.d0 == pytest.approx(12.0)


def test_model_cache_returns_same_object(library):
    assert library.model_for("NOR", 3) is library.model_for("NOR", 3)


def test_unknown_type_raises(library):
    with pytest.raises(KeyError, match="no model"):
        library.model_for("MUX", 2)


def test_input_cap_helper(library):
    assert library.input_cap("XOR", 2) == pytest.approx(3.0)


def test_technology_unit_conversion():
    tech = Technology(die_side_um=1000.0)
    # Normalized die side is 2.0 -> full side = 1000 um.
    assert tech.normalized_to_um(2.0) == pytest.approx(1000.0)
    assert tech.normalized_to_um(0.5) == pytest.approx(250.0)


def test_gate_model_validation():
    with pytest.raises(ValueError, match="direction"):
        GateTimingModel(
            "NAND", 1, 0, 0, 1, 0, 0, 1, 0.1, 0.01, 0.1, 0.01,
            direction=np.zeros(3),
        )
    with pytest.raises(ValueError, match="nonzero"):
        GateTimingModel(
            "NAND", 1, 0, 0, 1, 0, 0, 1, 0.1, 0.01, 0.1, 0.01,
            direction=np.zeros(4),
        )


def test_one_sigma_delay_variation_plausible(library):
    """±1σ parameter shift moves gate delay by ~5–15 % (90nm-realistic)."""
    for gate_type in ("NAND", "NOR", "XOR", "NOT"):
        model = library.model_for(gate_type, 2)
        shift = float(model.statistical_scale(np.array([1.0]))[0]) - 1.0
        assert 0.04 < shift < 0.15
