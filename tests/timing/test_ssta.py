"""Tests for the Monte-Carlo SSTA harness (Algorithm 1 vs Algorithm 2)."""

import numpy as np
import pytest

from repro.core.kernels import GaussianKernel
from repro.timing.ssta import MonteCarloSSTA, sigma_error_over_outputs


@pytest.fixture(scope="module")
def harness(c880, c880_placement, gaussian_kernel, gaussian_kle):
    return MonteCarloSSTA(
        c880, c880_placement, gaussian_kernel, gaussian_kle, r=20
    )


def test_reference_run(harness):
    run = harness.run_reference(200, seed=0)
    assert run.sta.num_samples == 200
    assert run.sta.std_worst_delay() > 0.0
    assert run.total_seconds > 0.0


def test_kle_run(harness):
    run = harness.run_kle(200, seed=0)
    assert run.sta.num_samples == 200
    assert run.sta.std_worst_delay() > 0.0


def test_r_property(harness):
    assert harness.r == 20


def test_flows_statistically_agree(harness):
    """The paper's core claim at small scale: both flows produce matching
    delay statistics (within MC noise + discretization)."""
    reference = harness.run_reference(3000, seed=1)
    kle = harness.run_kle(3000, seed=2)
    ref_mean = reference.sta.mean_worst_delay()
    kle_mean = kle.sta.mean_worst_delay()
    assert abs(kle_mean - ref_mean) / ref_mean < 0.01
    ref_std = reference.sta.std_worst_delay()
    kle_std = kle.sta.std_worst_delay()
    assert abs(kle_std - ref_std) / ref_std < 0.15


def test_compare_row_fields(harness):
    row = harness.compare(300, seed=0, circuit_name="c880")
    assert row.circuit == "c880"
    assert row.num_gates == 383
    assert row.num_samples == 300
    assert row.r == 20
    assert row.e_mu_percent >= 0.0
    assert row.e_sigma_percent >= 0.0
    assert row.speedup > 0.0
    assert row.sigma_error_outputs_percent >= 0.0


def test_e_mu_much_smaller_than_e_sigma_typically(harness):
    """Means agree far more tightly than sigmas (Table 1 pattern)."""
    row = harness.compare(2000, seed=3)
    assert row.e_mu_percent < 1.0


def test_single_kernel_broadcast(c880, c880_placement, gaussian_kle):
    harness = MonteCarloSSTA(
        c880, c880_placement, GaussianKernel(2.7), gaussian_kle, r=10
    )
    assert set(harness.kernels) == {"L", "W", "Vt", "tox"}
    assert set(harness.kles) == {"L", "W", "Vt", "tox"}


def test_per_parameter_kernel_mapping(c880, c880_placement, gaussian_kernel, gaussian_kle):
    harness = MonteCarloSSTA(
        c880,
        c880_placement,
        {"L": gaussian_kernel, "Vt": gaussian_kernel},
        {"L": gaussian_kle, "Vt": gaussian_kle},
        r=10,
    )
    run = harness.run_kle(50, seed=0)
    assert set(run.sta.end_arrivals)  # runs fine with two parameters


def test_kernel_mapping_validation(c880, c880_placement, gaussian_kernel, gaussian_kle):
    with pytest.raises(ValueError, match="unknown statistical parameters"):
        MonteCarloSSTA(
            c880, c880_placement, {"Leff": gaussian_kernel}, gaussian_kle
        )
    with pytest.raises(ValueError, match="missing KLE"):
        MonteCarloSSTA(
            c880,
            c880_placement,
            {"L": gaussian_kernel, "W": gaussian_kernel},
            {"L": gaussian_kle},
        )


def test_sigma_error_over_outputs_zero_for_identical(harness):
    run = harness.run_reference(100, seed=5)
    assert sigma_error_over_outputs(run.sta, run.sta) == 0.0


def test_sigma_error_over_outputs_positive_for_different(harness):
    a = harness.run_reference(400, seed=6)
    b = harness.run_kle(400, seed=7)
    err = sigma_error_over_outputs(a.sta, b.sta)
    assert err > 0.0
    assert err < 50.0


def test_compare_deterministic(harness):
    row1 = harness.compare(100, seed=9)
    row2 = harness.compare(100, seed=9)
    assert row1.e_sigma_percent == pytest.approx(row2.e_sigma_percent)
    assert row1.reference_mean == pytest.approx(row2.reference_mean)


# ---------------------------------------------------------------------------
# Wire variation through both flows (extension).
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def wire_harness(c880, c880_placement, gaussian_kernel, gaussian_kle):
    return MonteCarloSSTA(
        c880, c880_placement, gaussian_kernel, gaussian_kle, r=20,
        wire_sigma={"R": 0.10, "C": 0.08},
    )


def test_wire_variation_widens_distribution(harness, wire_harness):
    without = harness.run_kle(1500, seed=20)
    with_wires = wire_harness.run_kle(1500, seed=20)
    assert with_wires.sta.std_worst_delay() > without.sta.std_worst_delay()


def test_wire_variation_flows_still_agree(wire_harness):
    """With wires varying in both flows, e_mu/e_sigma stay in band."""
    row = wire_harness.compare(2000, seed=21)
    assert row.e_mu_percent < 1.0
    assert row.e_sigma_percent < 12.0


def test_wire_sigma_validation(c880, c880_placement, gaussian_kernel, gaussian_kle):
    with pytest.raises(ValueError, match="keys must be"):
        MonteCarloSSTA(
            c880, c880_placement, gaussian_kernel, gaussian_kle,
            wire_sigma={"Rwire": 0.1},
        )
    with pytest.raises(ValueError, match="lie in"):
        MonteCarloSSTA(
            c880, c880_placement, gaussian_kernel, gaussian_kle,
            wire_sigma={"R": 1.5},
        )


# ---------------------------------------------------------------------------
# Streaming (chunked) SSTA runs.
# ---------------------------------------------------------------------------
def test_streaming_moments_match_concatenated(harness):
    """StreamingSTAResult's Chan-merged moments equal numpy on the full
    concatenated stream."""
    import numpy as np

    from repro.timing.ssta import StreamingSTAResult

    chunks = [harness.run_reference(n, seed=s).sta for n, s in ((70, 0), (50, 1), (30, 2))]
    streaming = StreamingSTAResult()
    for chunk in chunks:
        streaming.update(chunk)
    worst = np.concatenate([c.worst_delay for c in chunks])
    assert streaming.num_samples == worst.size
    assert streaming.mean_worst_delay() == pytest.approx(
        float(np.mean(worst)), rel=1e-12
    )
    assert streaming.std_worst_delay() == pytest.approx(
        float(np.std(worst)), rel=1e-12
    )
    for net in chunks[0].end_arrivals:
        values = np.concatenate([c.end_arrivals[net] for c in chunks])
        assert streaming.output_sigma()[net] == pytest.approx(
            float(np.std(values)), rel=1e-10, abs=1e-12
        )
        assert streaming.output_mean()[net] == pytest.approx(
            float(np.mean(values)), rel=1e-12
        )


def test_chunked_run_statistics(harness):
    """A chunked flow run produces the same statistics (within MC noise of
    different-but-equally-valid streams) and the same accounting fields."""
    run = harness.run_kle(600, seed=31, chunk_size=128)
    full = harness.run_kle(600, seed=31)
    assert run.sta.num_samples == 600
    assert run.total_seconds > 0.0
    assert run.sta.mean_worst_delay() == pytest.approx(
        full.sta.mean_worst_delay(), rel=0.02
    )
    assert run.sta.std_worst_delay() == pytest.approx(
        full.sta.std_worst_delay(), rel=0.35
    )


def test_chunked_compare_row(harness):
    row = harness.compare(300, seed=0, circuit_name="c880", chunk_size=100)
    assert row.num_samples == 300
    assert row.e_mu_percent < 2.0
    assert row.sigma_error_outputs_percent >= 0.0


def test_chunked_run_reproducible(harness):
    a = harness.run_reference(200, seed=17, chunk_size=64)
    b = harness.run_reference(200, seed=17, chunk_size=64)
    assert a.sta.mean_worst_delay() == b.sta.mean_worst_delay()
    assert a.sta.std_worst_delay() == b.sta.std_worst_delay()


def test_streaming_quantile_matches_exact_sorted(harness):
    """Differential check of the P² streamed quantile: a chunked run's
    streamed 95th percentile must agree with the exact sorted quantile of
    an unchunked run at the same size (within combined MC noise)."""
    chunked = harness.run_kle(
        2000, seed=17, chunk_size=250, quantiles=(0.95, 0.5)
    )
    exact = harness.run_kle(2000, seed=17)
    assert set(chunked.sta.tracked_quantiles) == {0.95, 0.5}
    for q in (0.5, 0.95):
        streamed = chunked.sta.quantile_worst_delay(q)
        sorted_exact = exact.sta.quantile_worst_delay(q)
        assert streamed == pytest.approx(sorted_exact, rel=0.02)
    assert (
        chunked.sta.quantile_worst_delay(0.95)
        > chunked.sta.quantile_worst_delay(0.5)
    )


def test_streaming_quantile_untracked_level_rejected(harness):
    run = harness.run_kle(200, seed=4, chunk_size=100, quantiles=(0.9,))
    with pytest.raises(KeyError, match="not tracked"):
        run.sta.quantile_worst_delay(0.75)


def test_chunked_wire_variation_run(wire_harness):
    run = wire_harness.run_kle(300, seed=5, chunk_size=90)
    assert run.sta.num_samples == 300
    assert run.sta.std_worst_delay() > 0.0


def test_engine_parameter_forwarded(c880, c880_placement, gaussian_kernel, gaussian_kle):
    harness = MonteCarloSSTA(
        c880, c880_placement, gaussian_kernel, gaussian_kle, r=10,
        engine="reference",
    )
    assert harness.engine.engine == "reference"
    with pytest.raises(ValueError, match="engine must be one of"):
        MonteCarloSSTA(
            c880, c880_placement, gaussian_kernel, gaussian_kle, r=10,
            engine="vectorised",
        )


def test_streaming_empty_chunk_is_noop(harness):
    """A zero-sample chunk — first or final — must not poison the running
    moments with NaNs or divide by zero (the service layer emits empty
    chunks when a stream is torn down mid-sweep)."""
    import numpy as np

    from repro.timing.sta import STAResult
    from repro.timing.ssta import StreamingSTAResult

    real = harness.run_reference(40, seed=9).sta
    empty = STAResult(
        end_arrivals={net: np.empty(0) for net in real.end_arrivals},
        worst_delay=np.empty(0),
        num_samples=0,
    )

    # Empty first chunk: accumulator stays pristine and then fills normally.
    streaming = StreamingSTAResult(quantiles=(0.9,))
    streaming.update(empty)
    assert streaming.num_samples == 0
    streaming.update(real)
    assert streaming.num_samples == 40
    assert np.isfinite(streaming.mean_worst_delay())

    # Empty final chunk: every reported statistic is bitwise unchanged.
    before = (
        streaming.num_samples,
        streaming.mean_worst_delay(),
        streaming.std_worst_delay(),
        streaming.quantile_worst_delay(0.9),
        streaming.output_mean(),
        streaming.output_sigma(),
    )
    streaming.update(empty)
    after = (
        streaming.num_samples,
        streaming.mean_worst_delay(),
        streaming.std_worst_delay(),
        streaming.quantile_worst_delay(0.9),
        streaming.output_mean(),
        streaming.output_sigma(),
    )
    assert before == after


def test_streaming_single_sample_chunks_exact(harness):
    """Single-sample chunks through the Chan merge and P² path reproduce
    numpy's moments on the concatenated stream (the degenerate chunking the
    service batcher can produce at a request's tail)."""
    import numpy as np

    from repro.timing.sta import STAResult
    from repro.timing.ssta import StreamingSTAResult

    full = harness.run_reference(30, seed=3).sta
    streaming = StreamingSTAResult(quantiles=(0.5,))
    for i in range(full.num_samples):
        streaming.update(
            STAResult(
                end_arrivals={
                    net: values[i : i + 1]
                    for net, values in full.end_arrivals.items()
                },
                worst_delay=full.worst_delay[i : i + 1],
                num_samples=1,
            )
        )
    assert streaming.num_samples == full.num_samples
    assert streaming.mean_worst_delay() == pytest.approx(
        full.mean_worst_delay(), rel=1e-12
    )
    assert streaming.std_worst_delay() == pytest.approx(
        full.std_worst_delay(), rel=1e-10
    )
    for net in full.end_arrivals:
        assert streaming.output_mean()[net] == pytest.approx(
            float(np.mean(full.end_arrivals[net])), rel=1e-12
        )
        assert streaming.output_sigma()[net] == pytest.approx(
            float(np.std(full.end_arrivals[net])), rel=1e-10, abs=1e-12
        )
    # The P² estimate over 30 one-observation updates equals the exact
    # small-stream path fed the same values one at a time.
    assert np.isfinite(streaming.quantile_worst_delay(0.5))
