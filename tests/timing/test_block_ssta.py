"""Tests for the block-based (Clark) SSTA extension on the KLE basis."""

import math

import numpy as np
import pytest
from scipy.stats import norm

from repro.timing.block_ssta import (
    BlockSSTA,
    CanonicalDelay,
    clark_max,
)


def canon(mean, coefs, local=0.0):
    return CanonicalDelay(float(mean), np.asarray(coefs, dtype=float),
                          float(local))


# ---------------------------------------------------------------------------
# CanonicalDelay arithmetic.
# ---------------------------------------------------------------------------
def test_canonical_variance_and_sigma():
    c = canon(10.0, [3.0, 4.0], local=0.0)
    assert c.variance == pytest.approx(25.0)
    assert c.sigma == pytest.approx(5.0)


def test_canonical_plus_and_shift():
    a = canon(1.0, [1.0, 0.0], local=2.0)
    b = canon(2.0, [0.0, 3.0], local=1.0)
    s = a.plus(b).shifted(5.0)
    assert s.mean == pytest.approx(8.0)
    assert np.allclose(s.coefficients, [1.0, 3.0])
    assert s.local_variance == pytest.approx(3.0)


def test_canonical_covariance():
    a = canon(0.0, [1.0, 2.0])
    b = canon(0.0, [3.0, -1.0])
    assert a.covariance_with(b) == pytest.approx(1.0)


def test_canonical_sample_matches_moments(rng):
    c = canon(5.0, [0.6, 0.8], local=0.75)
    xi = rng.standard_normal((60000, 2))
    values = c.sample(xi, rng)
    assert values.mean() == pytest.approx(5.0, abs=0.03)
    assert values.std() == pytest.approx(math.sqrt(1.0 + 0.75), abs=0.03)


# ---------------------------------------------------------------------------
# Clark's max.
# ---------------------------------------------------------------------------
def test_clark_max_dominant_input():
    """When X >> Y, max ~= X."""
    x = canon(100.0, [1.0, 0.0])
    y = canon(0.0, [0.0, 1.0])
    m = clark_max(x, y)
    assert m.mean == pytest.approx(100.0, abs=1e-6)
    assert np.allclose(m.coefficients, x.coefficients, atol=1e-6)


def test_clark_max_symmetric_case_exact():
    """Two iid N(0,1): E[max] = 1/sqrt(pi), Var = 1 - 1/pi (closed form)."""
    x = canon(0.0, [1.0, 0.0])
    y = canon(0.0, [0.0, 1.0])
    m = clark_max(x, y)
    assert m.mean == pytest.approx(1.0 / math.sqrt(math.pi), rel=1e-9)
    assert m.variance == pytest.approx(1.0 - 1.0 / math.pi, rel=1e-9)


def test_clark_max_perfectly_correlated_inputs():
    x = canon(3.0, [1.0, 0.0])
    y = canon(1.0, [1.0, 0.0])  # identical spread, lower mean
    m = clark_max(x, y)
    assert m.mean == pytest.approx(3.0)
    assert np.allclose(m.coefficients, [1.0, 0.0])


def test_clark_max_against_monte_carlo(rng):
    x = canon(10.0, [2.0, 0.5], local=0.3)
    y = canon(10.5, [0.5, 1.5], local=0.8)
    m = clark_max(x, y)
    xi = rng.standard_normal((200000, 2))
    sx = x.sample(xi, rng)
    sy = y.sample(xi, rng)
    empirical = np.maximum(sx, sy)
    assert m.mean == pytest.approx(empirical.mean(), rel=0.01)
    assert m.sigma == pytest.approx(empirical.std(), rel=0.03)


def test_clark_max_local_variance_nonnegative():
    x = canon(0.0, [1.0], local=0.0)
    y = canon(0.0, [-1.0], local=0.0)  # anticorrelated
    m = clark_max(x, y)
    assert m.local_variance >= 0.0
    assert m.variance >= 0.0


# ---------------------------------------------------------------------------
# Full block SSTA vs Monte Carlo.
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def block_result(c880, c880_placement, gaussian_kle):
    return BlockSSTA(c880, c880_placement, gaussian_kle, r=20).run()


def test_block_ssta_runs_and_reports(block_result):
    assert block_result.mean_worst_delay() > 0.0
    assert block_result.std_worst_delay() > 0.0
    assert len(block_result.end_arrivals) > 0


def test_block_ssta_matches_mc_reference(
    c880, c880_placement, gaussian_kernel, gaussian_kle, block_result
):
    from repro.timing.ssta import MonteCarloSSTA

    harness = MonteCarloSSTA(
        c880, c880_placement, gaussian_kernel, gaussian_kle, r=20
    )
    mc = harness.run_kle(4000, seed=0)
    mean_err = abs(
        block_result.mean_worst_delay() - mc.sta.mean_worst_delay()
    ) / mc.sta.mean_worst_delay()
    sigma_err = abs(
        block_result.std_worst_delay() - mc.sta.std_worst_delay()
    ) / mc.sta.std_worst_delay()
    assert mean_err < 0.02   # first-order model: tight on the mean
    assert sigma_err < 0.25  # looser on sigma (Clark + linearization)


def test_block_ssta_quantile(block_result):
    q99 = block_result.quantile_worst_delay(0.99)
    expected = block_result.mean_worst_delay() + float(
        norm.ppf(0.99)
    ) * block_result.std_worst_delay()
    assert q99 == pytest.approx(expected)
    with pytest.raises(ValueError, match="quantile"):
        block_result.quantile_worst_delay(1.5)


def test_block_ssta_end_point_correlation_structure(block_result):
    """End points share KLE RVs, so their canonical forms correlate —
    correlation coefficients must be within [-1, 1] and mostly positive."""
    canons = list(block_result.end_arrivals.values())[:6]
    for i in range(len(canons)):
        for j in range(i + 1, len(canons)):
            cov = canons[i].covariance_with(canons[j])
            denominator = canons[i].sigma * canons[j].sigma
            if denominator > 0:
                rho = cov / denominator
                assert -1.0 - 1e-9 <= rho <= 1.0 + 1e-9


def test_block_ssta_deterministic(c880, c880_placement, gaussian_kle):
    a = BlockSSTA(c880, c880_placement, gaussian_kle, r=10).run()
    b = BlockSSTA(c880, c880_placement, gaussian_kle, r=10).run()
    assert a.mean_worst_delay() == pytest.approx(b.mean_worst_delay())
    assert a.std_worst_delay() == pytest.approx(b.std_worst_delay())


def test_block_ssta_default_r_uses_criterion(c880, c880_placement, gaussian_kle):
    engine = BlockSSTA(c880, c880_placement, gaussian_kle)
    assert engine.r["L"] == gaussian_kle.select_truncation()


def test_block_ssta_validation(c880, c880_placement, gaussian_kle):
    with pytest.raises(ValueError, match="invalid r"):
        BlockSSTA(c880, c880_placement, gaussian_kle, r=100000)
    with pytest.raises(ValueError, match="missing KLE"):
        BlockSSTA(c880, c880_placement, {"L": gaussian_kle})


def test_block_ssta_sequential_circuit(gaussian_kle):
    from repro.circuit.generate import generate_circuit
    from repro.place.placer import place_netlist

    netlist = generate_circuit("seqb", 150, 10, 6, num_dffs=25, seed=4)
    placement = place_netlist(netlist, (-1, -1, 1, 1), seed=0)
    result = BlockSSTA(netlist, placement, gaussian_kle, r=10).run()
    assert result.mean_worst_delay() > 0.0
    # DFF data inputs appear among the end points.
    dff_inputs = {g.inputs[0] for g in netlist.sequential_gates()}
    assert dff_inputs & set(result.end_arrivals)
