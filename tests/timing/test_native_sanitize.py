"""Tests for the sanitizer build mode and portable cache keys."""

import shutil

import pytest

from repro.timing import native


@pytest.fixture(autouse=True)
def _fresh_native_state(monkeypatch):
    """Isolate the per-process kernel memo and the sanitize env knob."""
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    monkeypatch.setattr(native, "_cached", None)
    monkeypatch.setattr(native, "_cached_key", None)


def test_sanitize_mode_defaults_to_empty():
    assert native.sanitize_mode() == ()


def test_sanitize_mode_parses_tokens(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "ubsan")
    assert native.sanitize_mode() == ("undefined",)
    monkeypatch.setenv("REPRO_SANITIZE", "asan,ubsan")
    assert native.sanitize_mode() == ("address", "undefined")
    # Aliases, case and whitespace are normalized; duplicates collapse.
    monkeypatch.setenv("REPRO_SANITIZE", " Undefined , UBSAN ,address ")
    assert native.sanitize_mode() == ("address", "undefined")


def test_sanitize_mode_rejects_unknown_tokens(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "ubsan,bogus")
    with pytest.raises(ValueError, match="bogus"):
        native.sanitize_mode()


def test_default_cflags_are_unchanged_by_the_sanitize_feature(monkeypatch):
    # Only the probed thread backend's flags ride along with the
    # optimized set; with the backend pinned off, the flags are exactly
    # the baseline _CFLAGS.
    monkeypatch.setenv("REPRO_NATIVE_THREAD_BACKEND", "none")
    assert native._effective_cflags() == native._CFLAGS
    assert "-O3" in native._CFLAGS
    monkeypatch.setenv("REPRO_NATIVE_THREAD_BACKEND", "openmp")
    assert native._effective_cflags() == native._CFLAGS + ["-fopenmp"]


def test_sanitize_cflags_instrument_and_abort_on_error(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "ubsan")
    cflags = native._effective_cflags()
    assert "-fsanitize=undefined" in cflags
    assert "-fno-sanitize-recover=all" in cflags
    assert "-g" in cflags
    assert "-march=native" not in cflags


def test_sanitize_build_gets_a_distinct_cache_key(monkeypatch):
    default_key = native.kernel_build_info()["key"]
    monkeypatch.setenv("REPRO_SANITIZE", "ubsan")
    ubsan_key = native.kernel_build_info()["key"]
    assert default_key != ubsan_key
    monkeypatch.setenv("REPRO_SANITIZE", "asan")
    assert native.kernel_build_info()["key"] not in (default_key, ubsan_key)


def test_compiler_identity_is_part_of_the_key(monkeypatch):
    monkeypatch.setattr(native, "_compiler_identity_cache", "cc one")
    key_one = native._build_key(b"source", native._CFLAGS)
    monkeypatch.setattr(native, "_compiler_identity_cache", "cc two")
    key_two = native._build_key(b"source", native._CFLAGS)
    assert key_one != key_two


def test_compiler_identity_survives_a_missing_compiler(monkeypatch):
    monkeypatch.setattr(native, "_compiler_identity_cache", None)
    monkeypatch.setenv("PATH", "")
    assert native._compiler_identity() == "no-cc"


def test_build_info_reports_the_mode(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "ubsan")
    info = native.kernel_build_info()
    assert info["sanitize"] == ("undefined",)
    assert "-fsanitize=undefined" in info["cflags"]


@pytest.mark.skipif(shutil.which("cc") is None, reason="no C compiler")
def test_ubsan_kernel_builds_and_loads(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.setenv("REPRO_SANITIZE", "ubsan")
    fn = native.load_kernel()
    assert fn is not None
    key = native.kernel_build_info()["key"]
    assert (tmp_path / "native" / f"sta_kernel_{key}.so").exists()


def test_load_kernel_raises_on_malformed_sanitize_env(monkeypatch):
    # A typo'd REPRO_SANITIZE must not silently fall back to the
    # uninstrumented kernel.
    monkeypatch.setenv("REPRO_SANITIZE", "ubsann")
    with pytest.raises(ValueError):
        native.load_kernel()
