"""Property-based tests on timing primitives (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.timing.block_ssta import CanonicalDelay, clark_max
from repro.timing.wire import RCTree, bakoglu_slew, peri_slew

positive = st.floats(min_value=1e-3, max_value=1e3, allow_nan=False)
nonneg = st.floats(min_value=0.0, max_value=1e3, allow_nan=False)
coef = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False)


@given(nonneg, nonneg)
@settings(max_examples=60, deadline=None)
def test_peri_slew_bounds_property(slew_in, elmore):
    """PERI output is bounded below by both inputs and above by their sum."""
    out = float(peri_slew(slew_in, elmore))
    step = bakoglu_slew(elmore)
    assert out >= max(slew_in, step) - 1e-9
    assert out <= slew_in + step + 1e-9


@given(st.lists(st.tuples(positive, nonneg), min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_elmore_chain_monotone_property(segments):
    """In an RC chain, Elmore delay is nondecreasing along the chain."""
    tree = RCTree()
    parent = "root"
    names = []
    for index, (resistance, capacitance) in enumerate(segments):
        name = f"n{index}"
        tree.add_node(name, parent, resistance, capacitance)
        names.append(name)
        parent = name
    delays = tree.elmore_delays()
    values = [delays[name] for name in names]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


@given(st.lists(st.tuples(positive, positive), min_size=2, max_size=6))
@settings(max_examples=40, deadline=None)
def test_elmore_superposition_property(segments):
    """Adding capacitance anywhere never decreases any Elmore delay."""
    def build(extra):
        tree = RCTree()
        parent = "root"
        for index, (resistance, capacitance) in enumerate(segments):
            tree.add_node(f"n{index}", parent, resistance, capacitance)
            parent = f"n{index}"
        if extra:
            tree.add_cap("n0", 5.0)
        return tree.elmore_delays()

    base = build(False)
    loaded = build(True)
    for name in base:
        assert loaded[name] >= base[name] - 1e-12


canonical = st.tuples(
    st.floats(min_value=-100, max_value=100, allow_nan=False),
    st.lists(coef, min_size=2, max_size=2),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
)


def _to_canonical(data):
    mean, coefs, local = data
    return CanonicalDelay(mean, np.asarray(coefs), local)


@given(canonical, canonical)
@settings(max_examples=60, deadline=None)
def test_clark_max_dominates_means_property(a_data, b_data):
    """E[max(X, Y)] >= max(E[X], E[Y]) (Jensen for the max)."""
    a = _to_canonical(a_data)
    b = _to_canonical(b_data)
    m = clark_max(a, b)
    assert m.mean >= max(a.mean, b.mean) - 1e-8


@given(canonical, canonical)
@settings(max_examples=60, deadline=None)
def test_clark_max_variance_nonnegative_property(a_data, b_data):
    m = clark_max(_to_canonical(a_data), _to_canonical(b_data))
    assert m.variance >= -1e-12
    assert m.local_variance >= -1e-12


@given(canonical)
@settings(max_examples=40, deadline=None)
def test_clark_max_idempotent_without_local_property(data):
    """max(X, X) = X when X has no local term (perfect correlation
    short-circuit).  With a local term the two operands' residuals are
    independent *by the model's semantics*, so the max legitimately
    exceeds X — covered by the next test."""
    mean, coefs, _local = data
    x = CanonicalDelay(mean, np.asarray(coefs), 0.0)
    m = clark_max(x, x)
    assert m.mean == pytest.approx(x.mean, abs=1e-9)
    assert m.variance == pytest.approx(x.variance, rel=1e-6, abs=1e-9)


def test_clark_max_local_terms_are_independent():
    """Two forms with identical global parts but local variance behave as
    distinct signals: E[max] = θ φ(0) = sqrt(2σ²_loc / π) above the mean."""
    x = CanonicalDelay(0.0, np.zeros(2), 1.0)
    m = clark_max(x, x)
    assert m.mean == pytest.approx(math.sqrt(2.0) / math.sqrt(2 * math.pi),
                                   rel=1e-9)


@given(canonical, st.floats(min_value=-50, max_value=50, allow_nan=False))
@settings(max_examples=40, deadline=None)
def test_canonical_shift_invariance_property(data, offset):
    """clark_max commutes with common deterministic shifts."""
    x = _to_canonical(data)
    y = CanonicalDelay(x.mean + 1.0, x.coefficients * 0.5, x.local_variance)
    direct = clark_max(x.shifted(offset), y.shifted(offset))
    shifted = clark_max(x, y).shifted(offset)
    assert direct.mean == pytest.approx(shifted.mean, rel=1e-9, abs=1e-9)
    assert direct.variance == pytest.approx(
        shifted.variance, rel=1e-6, abs=1e-9
    )


@given(nonneg)
@settings(max_examples=30, deadline=None)
def test_bakoglu_linear_property(elmore):
    assert bakoglu_slew(elmore) == pytest.approx(math.log(9.0) * elmore)
