"""Tests for timing-analysis post-processing (paths, yield, criticality)."""

import numpy as np
import pytest

from repro.place.placer import place_netlist
from repro.timing.analysis import (
    dominant_end_points,
    end_point_criticality,
    nominal_critical_path,
    required_period,
    timing_yield,
)
from repro.timing.library import STATISTICAL_PARAMETERS
from repro.timing.sta import STAEngine

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def c17_engine(c17):
    return STAEngine(c17, place_netlist(c17, DIE, seed=0))


@pytest.fixture(scope="module")
def c880_engine(c880, c880_placement):
    return STAEngine(c880, c880_placement)


@pytest.fixture(scope="module")
def c880_mc(c880_engine, c880):
    rng = np.random.default_rng(5)
    samples = {
        name: rng.standard_normal((500, c880.num_gates))
        for name in STATISTICAL_PARAMETERS
    }
    return c880_engine.run(samples)


# ---------------------------------------------------------------------------
# Critical path.
# ---------------------------------------------------------------------------
def test_critical_path_arrival_matches_sta(c17_engine):
    path = nominal_critical_path(c17_engine)
    assert path.arrival_ps == pytest.approx(
        c17_engine.nominal().mean_worst_delay(), rel=1e-9
    )


def test_critical_path_is_connected(c17_engine, c17):
    path = nominal_critical_path(c17_engine)
    # Each consecutive (net, gate) pair is actually wired.
    for gate_name, in_net, out_net in zip(
        path.gates, path.nets[:-1], path.nets[1:]
    ):
        gate = c17.gate(gate_name)
        assert in_net in gate.inputs
        assert gate.output == out_net


def test_critical_path_starts_at_start_point(c17_engine, c17):
    path = nominal_critical_path(c17_engine)
    assert path.nets[0] in c17.primary_inputs
    assert path.nets[-1] in c17.primary_outputs
    assert path.depth == len(path.nets) - 1


def test_critical_path_depth_bounded_by_levelization(c880_engine):
    from repro.circuit.levelize import levelize

    path = nominal_critical_path(c880_engine)
    assert 1 <= path.depth <= levelize(c880_engine.netlist).depth


# ---------------------------------------------------------------------------
# Yield / required period.
# ---------------------------------------------------------------------------
def test_timing_yield_monotone(c880_mc):
    delays = c880_mc.worst_delay
    loose = timing_yield(delays, float(delays.max()) + 1.0)
    tight = timing_yield(delays, float(delays.min()) - 1.0)
    middle = timing_yield(delays, float(np.median(delays)))
    assert loose == 1.0
    assert tight == 0.0
    assert middle == pytest.approx(0.5, abs=0.05)


def test_required_period_is_quantile(c880_mc):
    delays = c880_mc.worst_delay
    period = required_period(delays, 0.9)
    assert timing_yield(delays, period) >= 0.9
    assert period < float(delays.max()) + 1e-9


def test_yield_validation(c880_mc):
    with pytest.raises(ValueError, match="positive"):
        timing_yield(c880_mc.worst_delay, 0.0)
    with pytest.raises(ValueError, match="yield_target"):
        required_period(c880_mc.worst_delay, 1.5)
    with pytest.raises(ValueError, match="at least one"):
        timing_yield(np.array([]), 1.0)


# ---------------------------------------------------------------------------
# Criticality.
# ---------------------------------------------------------------------------
def test_criticality_covers_probability(c880_mc):
    crit = end_point_criticality(c880_mc)
    total = sum(crit.values())
    assert total >= 1.0 - 1e-9  # every sample has at least one critical end


def test_criticality_values_are_probabilities(c880_mc):
    for value in end_point_criticality(c880_mc).values():
        assert 0.0 <= value <= 1.0


def test_dominant_end_points_ordering(c880_mc):
    dominant = dominant_end_points(c880_mc, coverage=0.9)
    values = [v for _n, v in dominant]
    assert values == sorted(values, reverse=True)
    assert len(dominant) <= len(c880_mc.end_arrivals)


def test_dominant_end_points_coverage_validation(c880_mc):
    with pytest.raises(ValueError, match="coverage"):
        dominant_end_points(c880_mc, coverage=0.0)


def test_nominal_criticality_single_winner(c880_engine):
    result = c880_engine.nominal()
    crit = end_point_criticality(result)
    winners = [net for net, value in crit.items() if value == 1.0]
    assert len(winners) >= 1


# ---------------------------------------------------------------------------
# Slack analysis.
# ---------------------------------------------------------------------------
def test_min_slack_equals_clock_minus_worst(c880_engine):
    from repro.timing.analysis import compute_slacks

    worst = c880_engine.nominal().mean_worst_delay()
    clock = worst + 500.0
    slacks = compute_slacks(c880_engine, clock)
    finite = [s for s in slacks.values() if np.isfinite(s)]
    assert min(finite) == pytest.approx(clock - worst, abs=1e-6)


def test_critical_path_nets_share_min_slack(c880_engine):
    from repro.timing.analysis import compute_slacks, nominal_critical_path

    worst = c880_engine.nominal().mean_worst_delay()
    clock = worst + 100.0
    slacks = compute_slacks(c880_engine, clock)
    path = nominal_critical_path(c880_engine)
    for net in path.nets:
        assert slacks[net] == pytest.approx(clock - worst, abs=1e-6)


def test_slack_positive_when_clock_loose(c17_engine):
    from repro.timing.analysis import compute_slacks

    worst = c17_engine.nominal().mean_worst_delay()
    slacks = compute_slacks(c17_engine, worst * 2.0)
    assert all(s > 0 for s in slacks.values() if np.isfinite(s))


def test_slack_negative_when_clock_tight(c17_engine):
    from repro.timing.analysis import compute_slacks

    worst = c17_engine.nominal().mean_worst_delay()
    slacks = compute_slacks(c17_engine, worst * 0.5)
    assert any(s < 0 for s in slacks.values() if np.isfinite(s))


def test_slack_validation(c17_engine):
    from repro.timing.analysis import compute_slacks

    with pytest.raises(ValueError, match="positive"):
        compute_slacks(c17_engine, 0.0)


# ---------------------------------------------------------------------------
# Distribution diagnostics.
# ---------------------------------------------------------------------------
def test_distribution_summary_gaussian_sample(rng):
    from repro.timing.analysis import distribution_summary

    sample = 100.0 + 5.0 * rng.standard_normal(50000)
    summary = distribution_summary(sample)
    assert summary.mean_ps == pytest.approx(100.0, abs=0.1)
    assert summary.std_ps == pytest.approx(5.0, abs=0.1)
    assert abs(summary.skewness) < 0.05
    assert abs(summary.excess_kurtosis) < 0.1
    assert abs(summary.gaussian_q997_gap_ps) < 0.5


def test_worst_delay_is_right_skewed(c880_mc):
    """Max over correlated path delays skews right; the Gaussian q99.7
    prediction underestimates the empirical tail."""
    from repro.timing.analysis import distribution_summary

    summary = distribution_summary(c880_mc.worst_delay)
    assert summary.skewness > 0.0


def test_distribution_summary_validation():
    from repro.timing.analysis import distribution_summary

    with pytest.raises(ValueError, match="at least 8"):
        distribution_summary(np.ones(3))
    with pytest.raises(ValueError, match="zero-variance"):
        distribution_summary(np.ones(100))
