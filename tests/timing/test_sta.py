"""Tests for the vectorized STA engine."""

import numpy as np
import pytest

from repro.circuit.generate import generate_circuit
from repro.circuit.netlist import Gate, Netlist
from repro.place.placer import Placement, place_netlist
from repro.timing.library import STATISTICAL_PARAMETERS, CellLibrary
from repro.timing.sta import STAEngine

DIE = (-1.0, -1.0, 1.0, 1.0)


def chain_netlist(length=3):
    gates = [Gate("g1", "NOT", ("a",), "g1")]
    for i in range(2, length + 1):
        gates.append(Gate(f"g{i}", "NOT", (f"g{i-1}",), f"g{i}"))
    return Netlist("chain", ["a"], [f"g{length}"], gates)


def centered_placement(netlist):
    positions = {g.name: (0.0, 0.0) for g in netlist.gates}
    pads = {
        net: (-1.0, 0.0)
        for net in netlist.primary_inputs + netlist.primary_outputs
    }
    return Placement(netlist, DIE, positions, pads)


@pytest.fixture(scope="module")
def c17_engine(c17):
    placement = place_netlist(c17, DIE, seed=0)
    return STAEngine(c17, placement)


def test_nominal_run_shapes(c17_engine):
    result = c17_engine.nominal()
    assert result.num_samples == 1
    assert set(result.end_arrivals) == {"22", "23"}
    assert result.worst_delay.shape == (1,)
    assert result.worst_delay[0] > 0.0


def test_worst_is_max_over_ends(c17_engine):
    result = c17_engine.nominal()
    expected = max(float(v[0]) for v in result.end_arrivals.values())
    assert float(result.worst_delay[0]) == pytest.approx(expected)


def test_chain_delay_increases_with_length():
    delays = []
    for length in (2, 4, 8):
        netlist = chain_netlist(length)
        engine = STAEngine(netlist, centered_placement(netlist))
        delays.append(engine.nominal().mean_worst_delay())
    assert delays[0] < delays[1] < delays[2]


def test_arrival_monotone_along_path(c17_engine, c17):
    result = c17_engine.run(None, keep_all_arrivals=True)
    for gate in c17.gates:
        out_arrival = float(result.end_arrivals[gate.output][0])
        for net in gate.inputs:
            assert out_arrival > float(result.end_arrivals[net][0])


def test_statistical_run_shapes(c17_engine, c17):
    rng = np.random.default_rng(0)
    samples = {
        name: rng.standard_normal((40, c17.num_gates))
        for name in STATISTICAL_PARAMETERS
    }
    result = c17_engine.run(samples)
    assert result.num_samples == 40
    assert result.worst_delay.shape == (40,)
    assert result.std_worst_delay() > 0.0


def test_zero_samples_match_nominal(c17_engine, c17):
    """All-zero parameters must reproduce the nominal corner exactly."""
    samples = {
        name: np.zeros((3, c17.num_gates)) for name in STATISTICAL_PARAMETERS
    }
    stat = c17_engine.run(samples)
    nominal = c17_engine.nominal()
    assert np.allclose(stat.worst_delay, nominal.worst_delay[0])


def test_slow_corner_slower_than_fast_corner(c17_engine, c17):
    """u = wᵀp > 0 for p aligned with the sensitivity direction -> slower."""
    library = CellLibrary()
    direction = library.model_for("NAND", 2).direction
    slow = {
        name: np.full((1, c17.num_gates), 2.0 * direction[i])
        for i, name in enumerate(STATISTICAL_PARAMETERS)
    }
    fast = {
        name: np.full((1, c17.num_gates), -2.0 * direction[i])
        for i, name in enumerate(STATISTICAL_PARAMETERS)
    }
    nominal = c17_engine.nominal().mean_worst_delay()
    assert c17_engine.run(slow).mean_worst_delay() > nominal
    assert c17_engine.run(fast).mean_worst_delay() < nominal


def test_single_parameter_subset_allowed(c17_engine, c17):
    samples = {"L": np.random.default_rng(1).standard_normal((10, c17.num_gates))}
    result = c17_engine.run(samples)
    assert result.num_samples == 10


def test_sample_validation(c17_engine, c17):
    with pytest.raises(ValueError, match="unknown statistical parameter"):
        c17_engine.run({"Leff": np.zeros((5, c17.num_gates))})
    with pytest.raises(ValueError, match="must be"):
        c17_engine.run({"L": np.zeros((5, 3))})
    with pytest.raises(ValueError, match="share N"):
        c17_engine.run(
            {
                "L": np.zeros((5, c17.num_gates)),
                "W": np.zeros((6, c17.num_gates)),
            }
        )


def test_placement_netlist_mismatch_rejected(c17):
    other = generate_circuit("other", 10, 3, 2, seed=0)
    placement = place_netlist(other, DIE, seed=0)
    with pytest.raises(ValueError, match="does not belong"):
        STAEngine(c17, placement)


def test_memory_reclamation_equivalent_to_keep_all(c17_engine):
    lean = c17_engine.run(None)
    fat = c17_engine.run(None, keep_all_arrivals=True)
    for net in lean.end_arrivals:
        assert np.allclose(lean.end_arrivals[net], fat.end_arrivals[net])
    assert len(fat.end_arrivals) > len(lean.end_arrivals)


def test_input_slew_affects_delay(c17_engine):
    fast_in = c17_engine.run(None, input_slew_ps=10.0).mean_worst_delay()
    slow_in = c17_engine.run(None, input_slew_ps=200.0).mean_worst_delay()
    assert slow_in > fast_in


def test_sequential_circuit_dff_start_points():
    netlist = generate_circuit("seq", 120, 8, 5, num_dffs=20, seed=3)
    placement = place_netlist(netlist, DIE, seed=1)
    engine = STAEngine(netlist, placement)
    result = engine.nominal()
    # End points include the DFF data inputs.
    assert len(result.end_arrivals) >= 5
    assert result.mean_worst_delay() > 0.0


def test_output_sigma_and_mean_accessors(c17_engine, c17):
    rng = np.random.default_rng(2)
    samples = {
        name: rng.standard_normal((200, c17.num_gates))
        for name in STATISTICAL_PARAMETERS
    }
    result = c17_engine.run(samples)
    sigma = result.output_sigma()
    mean = result.output_mean()
    assert set(sigma) == set(result.end_arrivals)
    for net in sigma:
        assert sigma[net] > 0.0
        assert mean[net] > 0.0


def test_critical_end_net(c17_engine):
    critical = c17_engine.critical_end_net()
    result = c17_engine.nominal()
    assert float(result.end_arrivals[critical][0]) == pytest.approx(
        float(result.worst_delay[0])
    )


def test_spatially_correlated_samples_raise_delay_variance(c880, c880_placement):
    """Fully correlated intra-die variation widens the worst-delay
    distribution vs independent per-gate variation — the core reason SSTA
    must model spatial correlation."""
    engine = STAEngine(c880, c880_placement)
    rng = np.random.default_rng(4)
    n, g = 300, c880.num_gates
    shared = rng.standard_normal((n, 1))
    correlated = {"L": np.repeat(shared, g, axis=1)}
    independent = {"L": rng.standard_normal((n, g))}
    sigma_corr = engine.run(correlated).std_worst_delay()
    sigma_ind = engine.run(independent).std_worst_delay()
    assert sigma_corr > 2.0 * sigma_ind


def test_pi_directly_as_po():
    """A primary input declared as a primary output times at arrival 0."""
    netlist = Netlist(
        "wirecircuit", ["a"], ["a", "g1"],
        [Gate("g1", "NOT", ("a",), "g1")],
    )
    engine = STAEngine(netlist, centered_placement(netlist))
    result = engine.nominal()
    assert float(result.end_arrivals["a"][0]) == 0.0
    assert float(result.worst_delay[0]) > 0.0


def test_gate_reading_same_net_twice():
    """Duplicate input nets get distinct pin slots and wire delays."""
    netlist = Netlist(
        "dup", ["a"], ["g2"],
        [
            Gate("g1", "NOT", ("a",), "g1"),
            Gate("g2", "XOR", ("g1", "g1"), "g2"),
        ],
    )
    engine = STAEngine(netlist, centered_placement(netlist))
    result = engine.nominal()
    assert float(result.worst_delay[0]) > 0.0
    # Both pins were registered independently.
    assert ("g1", "g2", 0) in engine._sink_slot
    assert ("g1", "g2", 1) in engine._sink_slot


def test_large_sample_fallback_path_matches_fast_path(c17):
    """The lazy per-gate u evaluation must equal the precomputed matrix."""
    placement = place_netlist(c17, DIE, seed=0)
    engine = STAEngine(c17, placement)
    rng = np.random.default_rng(8)
    samples = {
        name: rng.standard_normal((16, c17.num_gates))
        for name in STATISTICAL_PARAMETERS
    }
    fast = engine.run(samples)
    # Force the fallback by shrinking the fast-path memory budget.
    import repro.timing.sta as sta_module

    num_samples, u_by_gate = engine._statistical_projection(samples)
    del num_samples
    original = sta_module.STAEngine._statistical_projection

    def tiny_budget(self, parameter_samples):
        if not parameter_samples:
            return original(self, parameter_samples)
        # Re-implement with the lazy branch only.
        names = list(parameter_samples)
        matrices = [np.asarray(parameter_samples[n], float) for n in names]
        n = matrices[0].shape[0]
        param_pos = {
            name: STATISTICAL_PARAMETERS.index(name) for name in names
        }
        models = self._models
        gates = self.netlist.gates

        def lazy(gate_index):
            direction = models[gates[gate_index].name].direction
            u = np.zeros(n)
            for name, matrix in zip(names, matrices):
                u += direction[param_pos[name]] * matrix[:, gate_index]
            return u

        return n, lazy

    sta_module.STAEngine._statistical_projection = tiny_budget
    try:
        lazy_result = engine.run(samples)
    finally:
        sta_module.STAEngine._statistical_projection = original
    assert np.allclose(fast.worst_delay, lazy_result.worst_delay)


# ---------------------------------------------------------------------------
# Interconnect-variation extension (wire R/C scale fields).
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def c17_nets(c17):
    return len(c17.nets)


def test_wire_scales_at_nominal_match_baseline(c17_engine, c17_nets):
    ones = np.ones((4, c17_nets))
    baseline = c17_engine.nominal()
    scaled = c17_engine.run(None, wire_scales={"R": ones, "C": ones})
    assert scaled.num_samples == 4
    assert np.allclose(scaled.worst_delay, baseline.worst_delay[0])


def test_wire_cap_increase_slows_circuit(c17_engine, c17_nets):
    baseline = c17_engine.nominal().mean_worst_delay()
    heavy = c17_engine.run(
        None, wire_scales={"C": np.full((1, c17_nets), 1.5)}
    ).mean_worst_delay()
    light = c17_engine.run(
        None, wire_scales={"C": np.full((1, c17_nets), 0.5)}
    ).mean_worst_delay()
    assert light < baseline < heavy


def test_wire_res_increase_slows_wires_only(c17_engine, c17_nets):
    """R scaling changes wire delay but not gate loads: smaller effect
    than C scaling, still monotone."""
    baseline = c17_engine.nominal().mean_worst_delay()
    resistive = c17_engine.run(
        None, wire_scales={"R": np.full((1, c17_nets), 2.0)}
    ).mean_worst_delay()
    assert resistive > baseline
    capacitive = c17_engine.run(
        None, wire_scales={"C": np.full((1, c17_nets), 2.0)}
    ).mean_worst_delay()
    assert capacitive - baseline > resistive - baseline


def test_wire_variation_adds_delay_variance(c880, c880_placement):
    """Spatially correlated wire-C variation widens the delay distribution
    on top of gate variation."""
    from repro.core.kernels import GaussianKernel
    from repro.field.random_field import RandomField

    engine = STAEngine(c880, c880_placement)
    rng = np.random.default_rng(9)
    gate_samples = {
        "L": rng.standard_normal((400, c880.num_gates))
    }
    gates_only = engine.run(gate_samples)
    field = RandomField(GaussianKernel(2.7))
    net_fields = field.sample(
        engine.net_driver_locations(), 400, seed=10
    )
    wire_scales = {"C": np.clip(1.0 + 0.15 * net_fields, 0.2, None)}
    combined = engine.run(gate_samples, wire_scales=wire_scales)
    assert combined.std_worst_delay() > gates_only.std_worst_delay()


def test_wire_scales_validation(c17_engine, c17_nets):
    with pytest.raises(ValueError, match="keys must be"):
        c17_engine.run(None, wire_scales={"Rw": np.ones((1, c17_nets))})
    with pytest.raises(ValueError, match="must be \\(N,"):
        c17_engine.run(None, wire_scales={"R": np.ones((1, 3))})
    with pytest.raises(ValueError, match="strictly positive"):
        c17_engine.run(None, wire_scales={"R": np.zeros((1, c17_nets))})
    with pytest.raises(ValueError, match="share N"):
        c17_engine.run(None, wire_scales={
            "R": np.ones((2, c17_nets)), "C": np.ones((3, c17_nets))
        })
    with pytest.raises(ValueError, match="must match parameter sample"):
        c17_engine.run(
            {"L": np.zeros((5, c17_engine.netlist.num_gates))},
            wire_scales={"R": np.ones((4, c17_nets))},
        )


def test_net_order_and_driver_locations(c17_engine, c17):
    order = c17_engine.net_order()
    assert set(order) == set(c17.nets)
    locations = c17_engine.net_driver_locations()
    assert locations.shape == (len(order), 2)
