"""Tests for Elmore delay, PERI/Bakoglu slew, and the star wire model."""

import math

import numpy as np
import pytest

from repro.timing.library import Technology
from repro.timing.wire import (
    LN9,
    RCTree,
    bakoglu_slew,
    peri_slew,
    star_wire_model,
)


# ---------------------------------------------------------------------------
# RCTree / Elmore.
# ---------------------------------------------------------------------------
def test_elmore_single_segment():
    tree = RCTree()
    tree.add_node("sink", "root", resistance_kohm=2.0, capacitance_ff=5.0)
    assert tree.elmore_delay_to("sink") == pytest.approx(10.0)


def test_elmore_ladder_textbook():
    """Classic 2-segment ladder: t = R1(C1+C2) + R2 C2."""
    tree = RCTree()
    tree.add_node("n1", "root", 1.0, 3.0)
    tree.add_node("n2", "n1", 2.0, 4.0)
    delays = tree.elmore_delays()
    assert delays["n1"] == pytest.approx(1.0 * (3.0 + 4.0))
    assert delays["n2"] == pytest.approx(1.0 * 7.0 + 2.0 * 4.0)


def test_elmore_branching_tree():
    """A fork: each branch sees the shared trunk delay plus its own."""
    tree = RCTree()
    tree.add_node("trunk", "root", 1.0, 2.0)
    tree.add_node("left", "trunk", 1.0, 3.0)
    tree.add_node("right", "trunk", 2.0, 5.0)
    delays = tree.elmore_delays()
    trunk = 1.0 * (2.0 + 3.0 + 5.0)
    assert delays["trunk"] == pytest.approx(trunk)
    assert delays["left"] == pytest.approx(trunk + 1.0 * 3.0)
    assert delays["right"] == pytest.approx(trunk + 2.0 * 5.0)


def test_elmore_root_zero():
    tree = RCTree()
    tree.add_node("n1", "root", 1.0, 1.0)
    assert tree.elmore_delays()["root"] == 0.0


def test_add_cap_increases_upstream_delay():
    tree = RCTree()
    tree.add_node("n1", "root", 1.0, 1.0)
    before = tree.elmore_delay_to("n1")
    tree.add_cap("n1", 4.0)
    assert tree.elmore_delay_to("n1") == pytest.approx(before + 4.0)


def test_total_capacitance():
    tree = RCTree()
    tree.add_node("n1", "root", 1.0, 2.5)
    tree.add_node("n2", "n1", 1.0, 1.5)
    assert tree.total_capacitance() == pytest.approx(4.0)


def test_rctree_validation():
    tree = RCTree()
    tree.add_node("n1", "root", 1.0, 1.0)
    with pytest.raises(ValueError, match="duplicate"):
        tree.add_node("n1", "root", 1.0, 1.0)
    with pytest.raises(ValueError, match="unknown parent"):
        tree.add_node("n2", "ghost", 1.0, 1.0)
    with pytest.raises(ValueError, match=">= 0"):
        tree.add_node("n3", "root", -1.0, 1.0)
    with pytest.raises(KeyError, match="no RC node"):
        tree.elmore_delay_to("ghost")


# ---------------------------------------------------------------------------
# Slew metrics.
# ---------------------------------------------------------------------------
def test_bakoglu_slew_is_ln9_times_elmore():
    assert bakoglu_slew(10.0) == pytest.approx(math.log(9.0) * 10.0)
    assert LN9 == pytest.approx(math.log(9.0))
    with pytest.raises(ValueError):
        bakoglu_slew(-1.0)


def test_peri_slew_root_sum_square():
    out = peri_slew(30.0, 10.0)
    assert out == pytest.approx(math.hypot(30.0, LN9 * 10.0))


def test_peri_slew_zero_wire_passthrough():
    assert peri_slew(42.0, 0.0) == pytest.approx(42.0)


def test_peri_slew_monotone_in_both_arguments():
    assert peri_slew(30.0, 10.0) < peri_slew(40.0, 10.0)
    assert peri_slew(30.0, 10.0) < peri_slew(30.0, 20.0)


def test_peri_slew_vectorized():
    slews = np.array([10.0, 20.0, 30.0])
    out = peri_slew(slews, 5.0)
    assert out.shape == (3,)
    assert np.all(np.diff(out) > 0)


# ---------------------------------------------------------------------------
# Star wire model.
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def tech():
    return Technology(
        die_side_um=1000.0,
        wire_res_kohm_per_um=3.0e-4,
        wire_cap_ff_per_um=0.1,
    )


def test_star_model_total_cap(tech):
    model = star_wire_model(
        (0.0, 0.0), [(0.2, 0.0)], [2.0], tech
    )
    # HPWL 0.2 normalized = 100 um -> wire cap 10 fF + 2 fF pin.
    assert model.total_cap_ff == pytest.approx(12.0)


def test_star_model_sink_delay_scales_with_distance(tech):
    model = star_wire_model(
        (0.0, 0.0), [(0.1, 0.0), (0.8, 0.0)], [2.0, 2.0], tech
    )
    assert model.sink_delay_ps[1] > model.sink_delay_ps[0]
    assert np.allclose(model.sink_slew_step_ps, LN9 * model.sink_delay_ps)


def test_star_model_no_sinks(tech):
    model = star_wire_model((0.0, 0.0), [], [], tech)
    assert model.total_cap_ff == 0.0
    assert model.sink_delay_ps.shape == (0,)


def test_star_model_explicit_hpwl_overrides(tech):
    implicit = star_wire_model((0.0, 0.0), [(0.5, 0.5)], [1.0], tech)
    explicit = star_wire_model(
        (0.0, 0.0), [(0.5, 0.5)], [1.0], tech, hpwl_normalized=2.0
    )
    assert explicit.total_cap_ff > implicit.total_cap_ff


def test_star_model_validation(tech):
    with pytest.raises(ValueError, match="one pin cap per sink"):
        star_wire_model((0, 0), [(0.1, 0.1)], [], tech)


def test_star_model_elmore_consistent_with_rctree(tech):
    """The star formula equals an explicit one-branch RC tree."""
    sink = (0.4, 0.0)
    pin_cap = 3.0
    model = star_wire_model((0.0, 0.0), [sink], [pin_cap], tech)
    length_um = tech.normalized_to_um(0.4)
    tree = RCTree()
    # Distributed RC modeled as R with C/2 at each end (pi-model): Elmore
    # through R sees far-end C/2 + pin.
    wire_c = length_um * tech.wire_cap_ff_per_um
    tree.add_node("sink", "root", length_um * tech.wire_res_kohm_per_um,
                  wire_c / 2.0 + pin_cap)
    assert model.sink_delay_ps[0] == pytest.approx(
        tree.elmore_delay_to("sink")
    )
