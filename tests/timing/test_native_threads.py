"""The multithreaded native kernel: env contract, fallbacks, determinism.

Three layers are pinned here.  The *environment contract*:
``REPRO_NATIVE_THREADS`` parses as documented (unset → serial, ``auto``
→ all cores, garbage → a typed error rather than a silent serial run).
The *capability probe*: ``REPRO_NATIVE_THREAD_BACKEND`` pins each
backend, and the ``none`` backend still exports a working ``_mt`` entry
point (sequential lane sweep).  The *determinism gate*: the tentpole
claim that thread count never changes a single bit of output — compiled
runs at 1, 2 and 3 workers over an odd sample count must be
``np.array_equal``, not merely close.
"""

import ctypes

import numpy as np
import pytest

from repro.circuit.benchmarks import load_circuit
from repro.place.placer import place_netlist
from repro.timing import native
from repro.timing.library import STATISTICAL_PARAMETERS
from repro.timing.sta import STAEngine

DIE = (-1.0, -1.0, 1.0, 1.0)


@pytest.fixture(scope="module")
def engine():
    netlist = load_circuit("c880")
    placement = place_netlist(netlist, DIE, seed=7)
    return STAEngine(netlist, placement)


def _samples(engine, num_samples, seed=3):
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal((num_samples, engine.netlist.num_gates))
        * 0.1
        for name in STATISTICAL_PARAMETERS
    }


# ----------------------------------------------------------------------
# REPRO_NATIVE_THREADS parsing.
# ----------------------------------------------------------------------
class TestThreadCountEnv:
    def test_unset_means_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_THREADS", raising=False)
        assert native.native_thread_count() == 1

    def test_blank_means_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "   ")
        assert native.native_thread_count() == 1

    @pytest.mark.parametrize("raw", ["1", "2", "7"])
    def test_positive_integer_is_taken_literally(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", raw)
        assert native.native_thread_count() == int(raw)

    @pytest.mark.parametrize("raw", ["auto", "AUTO", "0"])
    def test_auto_means_all_cores(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", raw)
        count = native.native_thread_count()
        assert count >= 1

    @pytest.mark.parametrize("raw", ["garbage", "2.5", "-3", "1e2"])
    def test_garbage_raises_typed_error(self, monkeypatch, raw):
        # A typo silently running serial would invalidate any
        # thread-scaling measurement, so the contract is a loud error.
        monkeypatch.setenv("REPRO_NATIVE_THREADS", raw)
        with pytest.raises(ValueError, match="invalid REPRO_NATIVE_THREADS"):
            native.native_thread_count()

    def test_resolve_prefers_explicit_over_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "7")
        assert native.resolve_thread_count(3) == 3
        assert native.resolve_thread_count(None) == 7

    def test_resolve_rejects_nonpositive_explicit(self):
        with pytest.raises(ValueError, match="native_threads must be >= 1"):
            native.resolve_thread_count(0)

    def test_engine_constructor_rejects_nonpositive(self, engine):
        with pytest.raises(ValueError):
            STAEngine(
                engine.netlist, engine.placement, native_threads=0
            )


# ----------------------------------------------------------------------
# Backend probe and pinning.
# ----------------------------------------------------------------------
class TestThreadBackend:
    def test_probed_backend_is_a_known_name(self):
        assert native.thread_backend() in ("openmp", "pthreads", "none")

    @pytest.mark.parametrize("backend", ["openmp", "pthreads", "none"])
    def test_pin_overrides_probe(self, monkeypatch, backend):
        monkeypatch.setenv("REPRO_NATIVE_THREAD_BACKEND", backend)
        assert native.thread_backend() == backend

    def test_unknown_pin_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREAD_BACKEND", "cuda")
        with pytest.raises(
            ValueError, match="unknown REPRO_NATIVE_THREAD_BACKEND"
        ):
            native.thread_backend()

    def test_backend_flags_match_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_THREAD_BACKEND", "none")
        assert native.thread_backend_flags() == []
        monkeypatch.setenv("REPRO_NATIVE_THREAD_BACKEND", "openmp")
        assert native.thread_backend_flags() == ["-fopenmp"]

    def test_build_info_reports_threading(self):
        info = native.kernel_build_info()
        assert info["thread_backend"] in ("openmp", "pthreads", "none")
        assert info["threads"] >= 1

    def test_mt_abi_registry(self):
        registry = native.kernel_abi()
        argtypes, restype = registry[native.KERNEL_FUNCTION_MT]
        assert argtypes == native.kernel_argtypes_mt()
        assert argtypes[-1] is ctypes.c_int64
        assert restype is None


# ----------------------------------------------------------------------
# Bitwise determinism across thread counts.
# ----------------------------------------------------------------------
class TestBitwiseDeterminism:
    # 257 is odd and prime: every multi-thread partition of the lanes is
    # uneven, which is exactly the case a reduction-order bug would show
    # up in.
    NUM_SAMPLES = 257

    def _run(self, engine, samples, threads, **kwargs):
        return engine.run(
            samples, engine="compiled", native_threads=threads, **kwargs
        )

    def test_threads_never_change_a_bit(self, engine):
        if native.load_kernel_mt() is None:
            pytest.skip("native kernel unavailable")
        samples = _samples(engine, self.NUM_SAMPLES)
        base = self._run(engine, samples, 1)
        for threads in (2, 3):
            run = self._run(engine, samples, threads)
            assert np.array_equal(base.worst_delay, run.worst_delay)
            assert set(run.end_arrivals) == set(base.end_arrivals)
            for net, values in base.end_arrivals.items():
                assert np.array_equal(run.end_arrivals[net], values)

    def test_more_threads_than_lanes_is_bitwise_too(self, engine):
        if native.load_kernel_mt() is None:
            pytest.skip("native kernel unavailable")
        samples = _samples(engine, 3)
        base = self._run(engine, samples, 1)
        wide = self._run(engine, samples, 8)
        assert np.array_equal(base.worst_delay, wide.worst_delay)

    def test_none_backend_mt_entry_is_bitwise(self, engine, monkeypatch):
        # Toolchains without OpenMP or pthreads still get a working _mt
        # entry point: the sequential lane-range sweep.
        monkeypatch.setenv("REPRO_NATIVE_THREAD_BACKEND", "none")
        monkeypatch.setattr(native, "_cached", None)
        monkeypatch.setattr(native, "_cached_key", None)
        if native.load_kernel_mt() is None:
            pytest.skip("native kernel unavailable")
        samples = _samples(engine, 65)
        base = self._run(engine, samples, 1)
        run = self._run(engine, samples, 3)
        assert np.array_equal(base.worst_delay, run.worst_delay)

    def test_env_and_api_paths_agree(self, engine, monkeypatch):
        if native.load_kernel_mt() is None:
            pytest.skip("native kernel unavailable")
        samples = _samples(engine, 65)
        explicit = self._run(engine, samples, 2)
        monkeypatch.setenv("REPRO_NATIVE_THREADS", "2")
        via_env = engine.run(samples, engine="compiled")
        assert np.array_equal(explicit.worst_delay, via_env.worst_delay)

    def test_chunked_threaded_run_is_bitwise(self, engine):
        if native.load_kernel_mt() is None:
            pytest.skip("native kernel unavailable")
        samples = _samples(engine, 101)
        base = self._run(engine, samples, 1)
        chunked = self._run(engine, samples, 3, chunk_size=17)
        assert np.array_equal(base.worst_delay, chunked.worst_delay)

    def test_no_native_falls_back_cleanly(self, engine, monkeypatch):
        # REPRO_NO_NATIVE disables the kernel entirely; a threaded
        # request must still produce the same numbers via NumPy.
        samples = _samples(engine, 33)
        base = self._run(engine, samples, 1)
        monkeypatch.setenv("REPRO_NO_NATIVE", "1")
        monkeypatch.setattr(native, "_cached", None)
        monkeypatch.setattr(native, "_cached_key", None)
        fallback = self._run(engine, samples, 4)
        np.testing.assert_allclose(
            fallback.worst_delay, base.worst_delay, rtol=1e-12, atol=1e-9
        )


# ----------------------------------------------------------------------
# Block-size heuristic.
# ----------------------------------------------------------------------
class TestBlockSizing:
    def test_budget_is_divided_by_thread_count(self, engine):
        program = engine.program
        width = program.num_slots
        serial = program._native_block_size(10**9, width, 1)
        halved = program._native_block_size(10**9, width, 2)
        assert halved < serial
        assert program._native_block_size(10**9, width, 4) < halved

    def test_block_size_is_pinned_for_known_inputs(self, engine):
        # Regression pin: the exact heuristic output for c880's packed
        # models.  A budget or per-sample accounting change must show up
        # here as a deliberate diff, not drift silently.
        program = engine.program
        num_gates = program._packed_models.num_gates
        width = program.num_slots
        for threads in (1, 2, 3):
            per_sample = 8 * (2 * num_gates + 2 * width + 4 * threads + 4)
            budget = (12 * 1024 * 1024) // threads
            expected = max(32, min(10**9, budget // per_sample))
            assert (
                program._native_block_size(10**9, width, threads) == expected
            )

    def test_small_sample_counts_are_not_padded(self, engine):
        program = engine.program
        assert program._native_block_size(40, program.num_slots, 2) == 40

    def test_floor_is_32_lanes(self, engine):
        program = engine.program
        # Even an absurd thread count cannot starve a block below the
        # vectorization floor.
        assert program._native_block_size(10**9, program.num_slots, 10**6) == 32

    def test_scratch_bytes_grow_with_per_thread_blocks(self, engine):
        program = engine.program
        for threads in (1, 2, 4):
            expected_block = program._native_block_size(
                12 * 1024 * 1024, program.num_slots, threads
            )
            per_block = (
                2 * program.num_slots
                + 4 * threads
                + 2 * program._packed_models.num_gates
            )
            assert (
                program.native_scratch_bytes(threads)
                == 8 * expected_block * per_block
            )
