"""Differential tests: compiled STA engine vs the per-gate reference.

The compiled engine (and its optional native kernel) must reproduce the
reference engine to floating-point reassociation error — ``rtol=1e-12``
— across circuits, analysis modes (nominal, statistical, wire R/C,
``keep_all_arrivals``, DFF-sourced nets) and sample chunkings, and
chunked compiled runs must be *bitwise* identical to unchunked ones.
"""

import os
import tracemalloc

import numpy as np
import pytest

from repro.circuit.benchmarks import load_circuit
from repro.experiments.table1 import default_table1_circuits
from repro.place.placer import place_netlist
from repro.timing import native
from repro.timing.library import STATISTICAL_PARAMETERS
from repro.timing.sta import STAEngine

DIE = (-1.0, -1.0, 1.0, 1.0)


def _samples(netlist, num_samples, seed=3):
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal((num_samples, netlist.num_gates)) * 0.1
        for name in STATISTICAL_PARAMETERS
    }


def _wire_scales(engine, num_samples, keys, seed=4):
    rng = np.random.default_rng(seed)
    num_nets = len(engine.net_order())
    return {
        key: np.clip(
            1.0 + 0.1 * rng.standard_normal((num_samples, num_nets)),
            0.05,
            None,
        )
        for key in keys
    }


def _assert_matches(compiled, reference):
    np.testing.assert_allclose(
        compiled.worst_delay, reference.worst_delay, rtol=1e-12, atol=1e-9
    )
    assert set(compiled.end_arrivals) == set(reference.end_arrivals)
    for net, values in reference.end_arrivals.items():
        np.testing.assert_allclose(
            compiled.end_arrivals[net], values, rtol=1e-12, atol=1e-9
        )


@pytest.fixture(scope="module")
def engines():
    cache = {}

    def get(name):
        if name not in cache:
            netlist = load_circuit(name)
            placement = place_netlist(netlist, DIE, seed=7)
            cache[name] = STAEngine(netlist, placement)
        return cache[name]

    return get


@pytest.mark.parametrize("circuit", default_table1_circuits())
def test_compiled_matches_reference_all_circuits(engines, circuit):
    """Statistical differential across every default benchmark circuit."""
    engine = engines(circuit)
    samples = _samples(engine.netlist, 8)
    reference = engine.run(samples, engine="reference")
    compiled = engine.run(samples, engine="compiled")
    _assert_matches(compiled, reference)


# s5378 has DFF-sourced nets (sequential start points); c880 is purely
# combinational — together they cover both arena initialization paths.
@pytest.mark.parametrize("circuit", ["c880", "s5378"])
@pytest.mark.parametrize(
    "mode",
    ["nominal", "statistical", "keep_all", "wire_r", "wire_c", "wire_rc"],
)
def test_compiled_matches_reference_modes(engines, circuit, mode):
    engine = engines(circuit)
    num_samples = 32
    kwargs = {}
    samples = None
    if mode == "nominal":
        num_samples = 1
    else:
        samples = _samples(engine.netlist, num_samples)
    if mode == "keep_all":
        kwargs["keep_all_arrivals"] = True
    if mode.startswith("wire_"):
        keys = {"wire_r": ("R",), "wire_c": ("C",), "wire_rc": ("R", "C")}
        kwargs["wire_scales"] = _wire_scales(
            engine, num_samples, keys[mode]
        )
    reference = engine.run(samples, engine="reference", **kwargs)
    compiled = engine.run(samples, engine="compiled", **kwargs)
    _assert_matches(compiled, reference)
    if mode == "keep_all":
        # Every net must survive, not just the end points.
        assert set(compiled.end_arrivals) == set(engine.net_order())


@pytest.mark.parametrize("wire", [False, True])
def test_chunked_is_bitwise_identical(engines, wire):
    engine = engines("s5378")
    samples = _samples(engine.netlist, 100)
    kwargs = {}
    if wire:
        kwargs["wire_scales"] = _wire_scales(engine, 100, ("R", "C"))
    full = engine.run(samples, engine="compiled", **kwargs)
    chunked = engine.run(
        samples, engine="compiled", chunk_size=33, **kwargs
    )
    assert np.array_equal(full.worst_delay, chunked.worst_delay)
    for net, values in full.end_arrivals.items():
        assert np.array_equal(values, chunked.end_arrivals[net])


def test_chunked_reference_matches(engines):
    """chunk_size composes with the reference engine too."""
    engine = engines("c880")
    samples = _samples(engine.netlist, 60)
    full = engine.run(samples, engine="reference")
    chunked = engine.run(samples, engine="reference", chunk_size=25)
    assert np.array_equal(full.worst_delay, chunked.worst_delay)


def test_native_matches_numpy_path(engines, monkeypatch):
    """The C kernel and the numpy array path agree to reassociation error."""
    if native.load_kernel() is None:
        pytest.skip("native kernel unavailable")
    engine = engines("s5378")
    samples = _samples(engine.netlist, 32)
    with_native = engine.run(samples, engine="compiled")
    assert engine.program.last_run_native is True
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    without = engine.run(samples, engine="compiled")
    assert engine.program.last_run_native is False
    _assert_matches(without, with_native)


def test_chunk_size_bounds_peak_memory(engines, monkeypatch):
    """Streaming chunks must bound the per-run working set.

    Forces the numpy path (whose buffers tracemalloc sees — the native
    path's arenas are deliberately small already) and compares the traced
    allocation peak of a chunked run against the unchunked one on the
    same inputs.
    """
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    engine = engines("c7552")
    num_samples = 3000
    samples = _samples(engine.netlist, num_samples)

    def peak_of(**kwargs):
        tracemalloc.start()
        result = engine.run(samples, engine="compiled", **kwargs)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return result, peak

    full, full_peak = peak_of()
    chunked, chunked_peak = peak_of(chunk_size=100)
    assert np.array_equal(full.worst_delay, chunked.worst_delay)
    assert chunked_peak < full_peak / 2, (
        f"chunked peak {chunked_peak / 1e6:.1f} MB not well below "
        f"unchunked {full_peak / 1e6:.1f} MB"
    )


def test_last_run_native_reflects_env(engines, monkeypatch):
    if native.load_kernel() is None:
        pytest.skip("native kernel unavailable")
    engine = engines("c880")
    engine.run(None, engine="compiled")
    assert engine.program.last_run_native is True
    monkeypatch.setenv("REPRO_NO_NATIVE", "1")
    engine.run(None, engine="compiled")
    assert engine.program.last_run_native is False
